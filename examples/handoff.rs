//! The Section 2 flag-handoff program: correctly synchronized through a
//! shared flag, no locks. The Atomizer (lockset-based) false-alarms on it;
//! Velodrome, being complete, stays silent.
//!
//! Run: `cargo run -p velodrome-examples --bin handoff`

use velodrome::check_trace;
use velodrome_atomizer::Atomizer;
use velodrome_events::{oracle, Trace, TraceBuilder};
use velodrome_lockset::Eraser;
use velodrome_monitor::run_tool;

/// Builds one observed execution of the handoff protocol: ownership of `x`
/// alternates between the threads via the flag `b`, with the waiting thread
/// spinning on the flag.
fn handoff_trace(rounds: usize) -> Trace {
    let mut b = TraceBuilder::new();
    for _ in 0..rounds {
        b.read("T1", "flag"); // T1 sees it owns x
        b.begin("T1", "Worker1.critical");
        b.read("T1", "x").write("T1", "x");
        b.read("T2", "flag"); // T2 spins meanwhile
        b.write("T1", "flag"); // hand off to T2
        b.end("T1");
        b.read("T2", "flag"); // T2 sees the handoff
        b.begin("T2", "Worker2.critical");
        b.read("T2", "x").write("T2", "x");
        b.read("T1", "flag"); // T1 spins meanwhile
        b.write("T2", "flag"); // hand back
        b.end("T2");
    }
    b.finish()
}

fn main() {
    let trace = handoff_trace(3);
    println!("flag-handoff trace: {} events over 3 rounds", trace.len());

    let verdict = oracle::check(&trace);
    println!("offline oracle: serializable = {}", verdict.serializable);
    assert!(verdict.serializable);

    let velodrome = check_trace(&trace);
    println!("\nVelodrome warnings: {}", velodrome.len());
    for w in &velodrome {
        println!("  {w}");
    }

    let atomizer = run_tool(&mut Atomizer::new(), &trace);
    println!("Atomizer warnings:  {} (all false alarms)", atomizer.len());
    for w in &atomizer {
        println!("  {w}");
    }

    let eraser = run_tool(&mut Eraser::new(), &trace);
    println!(
        "Eraser warnings:    {} (flag-based sync looks racy to a lockset)",
        eraser.len()
    );

    assert!(
        velodrome.is_empty(),
        "Velodrome is complete: no false alarms"
    );
    assert!(
        !atomizer.is_empty(),
        "the Atomizer cannot understand the handoff"
    );
    println!("\n=> the trace is serializable; only Velodrome gets it right.");
}
