//! Example binaries for the Velodrome atomicity checker.
//!
//! * `quickstart` — the paper's `Set.add` bug, end to end, with the dot
//!   error graph;
//! * `handoff` — the flag-handoff program where the Atomizer false-alarms
//!   and Velodrome stays silent;
//! * `bank` — a non-atomic bank transfer found and blamed, then the fixed
//!   version passing;
//! * `live_threads` — real Rust threads monitored online through the shims;
//! * `adversarial` — defect injection plus Atomizer-guided adversarial
//!   scheduling;
//! * `spec_workflow` — the paper's two-phase workflow: refute methods under
//!   the all-atomic assumption, then check only the surviving spec.
//!
//! Run with `cargo run -p velodrome-examples --bin <name>`.
