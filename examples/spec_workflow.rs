//! The paper's two-phase workflow (Section 6, Table 1 configuration):
//!
//! 1. run Velodrome assuming *every* method is atomic and collect the
//!    methods it refutes;
//! 2. re-run checking only the remaining methods — the realistic
//!    steady-state configuration, in which traces contain many small
//!    transactions rather than a few monolithic ones.
//!
//! Run: `cargo run -p velodrome-examples --bin spec_workflow`

use std::collections::HashSet;
use velodrome::{check_trace_with, Velodrome, VelodromeConfig};
use velodrome_events::Op;
use velodrome_monitor::{run_tool, AtomicitySpec, SpecFilter};

fn main() {
    let workload = velodrome_workloads::build("elevator", 1).expect("elevator model");

    // Phase 1: all methods assumed atomic.
    let mut refuted = HashSet::new();
    for seed in 0..5 {
        let trace = workload.run(seed);
        let cfg = VelodromeConfig {
            names: trace.names().clone(),
            ..VelodromeConfig::default()
        };
        let (warnings, _) = check_trace_with(&trace, cfg);
        for w in &warnings {
            let label = w.label.expect("atomicity warnings carry labels");
            println!("phase 1 (seed {seed}): {}", w.message);
            refuted.insert(label);
        }
    }
    println!(
        "\nphase 1 refuted {} methods; they no longer satisfy their atomicity spec",
        refuted.len()
    );

    // Phase 2: exclude the refuted methods and re-check the rest.
    let trace = workload.run(7);
    let spec = AtomicitySpec::excluding(refuted.iter().copied());
    let cfg = VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    };
    let mut tool = SpecFilter::new(spec, Velodrome::with_config(cfg));
    let warnings = run_tool(&mut tool, &trace);
    let stats = tool.inner().stats();

    let checked_blocks = trace
        .ops()
        .iter()
        .filter(|op| matches!(op, Op::Begin { l, .. } if !refuted.contains(l)))
        .count();
    println!(
        "phase 2: checked {checked_blocks} atomic-block executions of the remaining \
         methods; {} warnings",
        warnings.len()
    );
    println!("engine: {stats}");
    assert!(
        warnings.is_empty(),
        "the remaining methods satisfy their specification"
    );
    println!("\n=> the surviving specification is violation-free under this trace.");
}
