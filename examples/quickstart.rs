//! Quickstart: the paper's `Set.add` example.
//!
//! `Set.add` is free of data races — every access to the underlying vector
//! holds its monitor — yet it is not atomic: another thread can add the
//! same element between the `contains` check and the `add`. Velodrome
//! observes one interleaved execution and reports the violation with a
//! blame-assigned error graph.
//!
//! Run: `cargo run -p velodrome-examples --bin quickstart`

use velodrome::{check_trace_with, VelodromeConfig};
use velodrome_events::{oracle, TraceBuilder};

fn main() {
    // Build the observed trace: two threads concurrently run
    //   atomic void add(x) { if (!elems.contains(x)) elems.add(x); }
    // where contains/add are individually synchronized on the vector.
    let mut b = TraceBuilder::new();

    // Thread 1 checks membership...
    b.begin("T1", "Set.add");
    b.acquire("T1", "this")
        .read("T1", "elems")
        .release("T1", "this");

    // ...thread 2 performs its whole add in between...
    b.begin("T2", "Set.add");
    b.acquire("T2", "this")
        .read("T2", "elems")
        .release("T2", "this");
    b.acquire("T2", "this")
        .read("T2", "elems")
        .write("T2", "elems");
    b.release("T2", "this").end("T2");

    // ...and thread 1 adds based on its stale check.
    b.acquire("T1", "this")
        .read("T1", "elems")
        .write("T1", "elems");
    b.release("T1", "this").end("T1");

    let trace = b.finish();
    println!("Observed trace ({} events):\n{trace}", trace.len());

    // The offline oracle agrees the trace is not conflict-serializable.
    let verdict = oracle::check(&trace);
    println!("offline oracle: serializable = {}", verdict.serializable);

    // Run the online Velodrome analysis.
    let cfg = VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    };
    let (warnings, engine) = check_trace_with(&trace, cfg);
    for w in &warnings {
        println!("\nWarning: {}", w.message);
        if let Some(dot) = &w.details {
            println!("\nError graph (render with `dot -Tpng`):\n{dot}");
        }
    }
    let stats = engine.stats();
    println!(
        "engine stats: {} ops, {} nodes allocated, {} max alive, {} cycles detected",
        stats.ops, stats.nodes_allocated, stats.max_alive, stats.cycles_detected
    );
    assert_eq!(
        warnings.len(),
        1,
        "exactly one atomicity violation expected"
    );
}
