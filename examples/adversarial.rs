//! Defect injection and adversarial scheduling (Section 6).
//!
//! Takes the elevator model, removes one contended `synchronized` statement
//! (injecting a real atomicity defect), and compares how often a single
//! Velodrome run witnesses the defect under plain random scheduling versus
//! Atomizer-guided adversarial scheduling.
//!
//! Run: `cargo run -p velodrome-examples --bin adversarial`

use std::collections::HashSet;
use velodrome::check_trace;
use velodrome_sim::{mutate, run_program, RandomScheduler};
use velodrome_workloads::adversarial::adversarial_scheduler;

fn velodrome_labels(trace: &velodrome_events::Trace) -> HashSet<String> {
    check_trace(trace)
        .into_iter()
        .filter_map(|w| w.label.map(|l| trace.names().label(l)))
        .collect()
}

fn main() {
    let workload = velodrome_workloads::build("elevator", 1).expect("elevator model");
    let seeds: u64 = 10;

    // Baseline: what the unmutated program already reports.
    let mut baseline = HashSet::new();
    for seed in 0..seeds {
        baseline.extend(velodrome_labels(&workload.run(seed)));
    }
    println!("baseline non-atomic methods: {baseline:?}");

    // Find a contended sync site inside a correct method: eliding the lock
    // around Elevator.openDoor's critical section injects a fresh defect.
    let sites = mutate::sync_sites(&workload.program);
    println!("the elevator model has {sites} synchronized statements");

    let mut demonstrated = false;
    for site in 0..sites {
        let Some(mutant) = mutate::elide_sync(&workload.program, site) else {
            continue;
        };
        let (mut plain_hits, mut adv_hits) = (0, 0);
        for seed in 0..seeds {
            let plain = run_program(&mutant, RandomScheduler::new(seed));
            if velodrome_labels(&plain.trace)
                .difference(&baseline)
                .next()
                .is_some()
            {
                plain_hits += 1;
            }
            let adv = run_program(&mutant, adversarial_scheduler(seed, 400));
            if velodrome_labels(&adv.trace)
                .difference(&baseline)
                .next()
                .is_some()
            {
                adv_hits += 1;
            }
        }
        if adv_hits > 0 && adv_hits > plain_hits {
            println!(
                "site {site:>2}: plain {plain_hits}/{seeds} runs, \
                 adversarial {adv_hits}/{seeds} runs"
            );
            demonstrated = true;
        }
    }
    assert!(
        demonstrated,
        "adversarial scheduling should beat plain on some site"
    );
    println!(
        "\n=> pausing a thread at an Atomizer-suspected commit point lets other \
         threads supply the conflicting writes Velodrome needs as a witness."
    );
}
