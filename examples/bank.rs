//! A bank-transfer scenario on the simulator: the buggy `transfer` reads
//! both balances, then updates them in a second critical section — classic
//! check-then-act. Velodrome blames `Account.transfer`; the fixed version
//! (one critical section) passes under every schedule.
//!
//! Run: `cargo run -p velodrome-examples --bin bank`

use velodrome::check_trace;
use velodrome_sim::{run_program, Program, ProgramBuilder, RandomScheduler, Stmt};

fn bank_program(fixed: bool) -> Program {
    let mut b = ProgramBuilder::new();
    let from = b.var("account.from");
    let to = b.var("account.to");
    let audit = b.var("auditLog");
    let m = b.lock("bankLock");
    let transfer = b.label(if fixed {
        "Account.transfer_fixed"
    } else {
        "Account.transfer"
    });
    let audit_l = b.label("Bank.audit");

    let body = if fixed {
        // One critical section covering check and update: atomic.
        vec![Stmt::Atomic(
            transfer,
            vec![Stmt::Sync(
                m,
                vec![
                    Stmt::Read(from),
                    Stmt::Read(to),
                    Stmt::Write(from),
                    Stmt::Write(to),
                ],
            )],
        )]
    } else {
        // Check in one critical section, update in another: not atomic.
        vec![Stmt::Atomic(
            transfer,
            vec![
                Stmt::Sync(m, vec![Stmt::Read(from), Stmt::Read(to)]),
                Stmt::Compute(2), // compute the new balances
                Stmt::Sync(m, vec![Stmt::Write(from), Stmt::Write(to)]),
            ],
        )]
    };
    let audit_stmt = Stmt::Atomic(
        audit_l,
        vec![Stmt::Sync(
            m,
            vec![Stmt::Read(from), Stmt::Read(to), Stmt::Write(audit)],
        )],
    );
    for _ in 0..2 {
        let mut stmts = Vec::new();
        for _ in 0..4 {
            stmts.push(body[0].clone());
            stmts.push(audit_stmt.clone());
        }
        b.worker(stmts);
    }
    b.setup(vec![Stmt::Write(from), Stmt::Write(to)]);
    b.finish()
}

fn main() {
    println!("=== buggy transfer (two critical sections) ===");
    let buggy = bank_program(false);
    let mut found = 0;
    for seed in 0..5 {
        let result = run_program(&buggy, RandomScheduler::new(seed));
        let warnings = check_trace(&result.trace);
        if !warnings.is_empty() {
            found += 1;
            if found == 1 {
                for w in &warnings {
                    println!("seed {seed}: {}", w.message);
                }
            }
        }
    }
    println!("violations observed in {found}/5 seeded executions");
    assert!(found > 0, "the buggy transfer must be caught");

    println!("\n=== fixed transfer (single critical section) ===");
    let fixed = bank_program(true);
    for seed in 0..5 {
        let result = run_program(&fixed, RandomScheduler::new(seed));
        let warnings = check_trace(&result.trace);
        assert!(
            warnings.is_empty(),
            "fixed version must be atomic (seed {seed})"
        );
    }
    println!("no warnings in 5/5 seeded executions — transfer is atomic");
}
