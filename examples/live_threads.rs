//! Online checking of *real* Rust threads through the monitor shims —
//! the reproduction's stand-in for RoadRunner's bytecode instrumentation.
//!
//! Two OS threads hammer a shared counter. The `deposit` section uses the
//! lock correctly; `audit_and_adjust` reads the counter in one critical
//! section and writes it in another, so Velodrome flags it online while
//! the threads are still running. OS scheduling is nondeterministic, so
//! like a real testing session the example re-runs the program until a
//! violating interleaving is observed.
//!
//! Run: `cargo run -p velodrome-examples --bin live_threads`

use velodrome::{Velodrome, VelodromeConfig};
use velodrome_events::Trace;
use velodrome_monitor::shim::Runtime;
use velodrome_monitor::Warning;

fn run_once() -> (Trace, Vec<Warning>) {
    let rt = Runtime::online(Velodrome::with_config(VelodromeConfig::default()));
    let counter = rt.shared("counter", 0i64);
    let lock = rt.lock("counterLock", ());
    rt.name_current_thread("main");

    let tok = rt.fork();
    let handle = {
        let rt = rt.clone();
        let counter = counter.clone();
        let lock = lock.clone();
        std::thread::Builder::new()
            .name("worker".into())
            .spawn(move || {
                rt.adopt(tok);
                for _ in 0..50 {
                    // Correct: one critical section.
                    rt.atomic("deposit", || {
                        let _g = lock.lock();
                        let v = counter.get();
                        counter.set(v + 10);
                    });
                }
            })
            .expect("spawn worker")
    };

    for _ in 0..50 {
        // Buggy: check and adjust in separate critical sections.
        rt.atomic("audit_and_adjust", || {
            let v = {
                let _g = lock.lock();
                counter.get()
            };
            std::thread::yield_now(); // widen the window, as real code would
            let _g = lock.lock();
            counter.set(v - 1);
        });
    }

    handle.join().expect("worker finished");
    rt.join(tok);
    rt.finish()
}

fn main() {
    let attempts = 20;
    for attempt in 1..=attempts {
        let (trace, warnings) = run_once();
        // Online warnings carry label ids; resolve names via the trace.
        let method = |w: &Warning| w.label.map(|l| trace.names().label(l)).unwrap_or_default();
        assert!(
            warnings.iter().all(|w| method(w) != "deposit"),
            "the correctly locked deposit must never be blamed"
        );
        if let Some(w) = warnings.iter().find(|w| method(w) == "audit_and_adjust") {
            println!(
                "attempt {attempt}: monitored {} events; caught online at op {}:",
                trace.len(),
                w.op_index
            );
            println!("  audit_and_adjust is not atomic (check-then-act across two lock regions)");
            return;
        }
        println!(
            "attempt {attempt}: {} events, interleaving was serializable",
            trace.len()
        );
    }
    println!("no violating interleaving in {attempts} attempts (unusually lucky scheduling)");
}
