//! Offline vendored stand-in for `serde`.
//!
//! The real crates.io `serde` is unreachable in this build environment, so
//! this crate supplies the same *surface* the workspace uses — the
//! `Serialize`/`Deserialize` traits plus `#[derive(Serialize, Deserialize)]`
//! — over a much simpler data model: every serializable type converts to a
//! JSON-like [`Value`] tree, and deserialization reads one back. The
//! companion `serde_json` stand-in turns [`Value`]s into JSON text.
//!
//! Fidelity notes: externally tagged enums, `#[serde(transparent)]`
//! newtypes, `#[serde(rename_all = "snake_case")]`, string-keyed maps, and
//! integer-keyed maps (rendered as string keys) all match real serde_json
//! output for the shapes this workspace serializes.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// Error produced when a [`Value`] cannot be converted into the requested
/// type (also re-exported as `serde_json::Error`).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a [`Value`] tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom("expected a boolean"))
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Num(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom("expected an unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Num(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom("expected an integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Num(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Num(Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected a number"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected a string"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(Error::custom("expected an array")),
        }
    }
}

/// Map keys: JSON object keys are strings, so non-string keys round-trip
/// through their decimal/string form, matching serde_json's behavior for
/// integer-keyed maps.
pub trait JsonKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! int_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom("invalid integer map key"))
            }
        }
    )*};
}
int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(Map::from_entries(entries))
    }
}

impl<K: JsonKey + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected an object"))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(Map::from_entries(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize_value()))
                .collect(),
        ))
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected an object"))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
