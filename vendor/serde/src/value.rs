//! The JSON-like value tree shared by the vendored `serde` and
//! `serde_json` stand-ins.

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// Wraps an unsigned integer.
    pub fn from_u64(n: u64) -> Self {
        Number::PosInt(n)
    }

    /// Wraps a signed integer (normalizing non-negative values).
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// Wraps a float.
    pub fn from_f64(n: f64) -> Self {
        Number::Float(n)
    }

    /// The value as `u64`, if representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            // JSON has no NaN/Inf; real serde_json errors here. Rendering
            // null keeps emission total for diagnostics output.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

/// An insertion-ordered string-keyed map of values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a map from pre-collected entries.
    pub fn from_entries(entries: Vec<(String, Value)>) -> Self {
        Self { entries }
    }

    /// Inserts (or replaces) a key.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A JSON-like value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is a representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Non-panicking indexing: `null` for missing keys/out-of-range.
    pub fn get_index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Non-panicking key lookup: `null` for missing keys.
    pub fn get_key(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.get_index(i)
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get_key(key)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}
