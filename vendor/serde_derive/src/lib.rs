//! Vendored stand-in for `serde_derive`, written against the vendored
//! `serde` crate's value-based data model (no `syn`/`quote`: the container
//! registry is unreachable in this build environment, so the derive parses
//! the item token stream by hand).
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * non-generic structs with named fields;
//! * non-generic tuple structs with a single field (newtypes), with or
//!   without `#[serde(transparent)]`;
//! * non-generic enums with unit and struct variants, externally tagged,
//!   honoring `#[serde(rename_all = "snake_case")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item)
        .parse()
        .expect("derive(Serialize) emitted invalid Rust")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item)
        .parse()
        .expect("derive(Deserialize) emitted invalid Rust")
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RenameAll {
    None,
    SnakeCase,
    Lowercase,
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<String>>,
}

enum Shape {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with this many fields (only 1 is supported).
    Newtype,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
    rename_all: RenameAll,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut rename_all = RenameAll::None;
    let mut i = 0;

    // Scan container attributes and locate the `struct`/`enum` keyword.
    let mut kind = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    scan_serde_attr(&g.stream(), &mut rename_all);
                    i += 2;
                    continue;
                }
                i += 1;
            }
            TokenTree::Ident(id)
                if {
                    let id = id.to_string();
                    id == "struct" || id == "enum"
                } =>
            {
                kind = Some(id.to_string());
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let kind = kind.expect("derive input has no struct/enum keyword");
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name after `{kind}`, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize) stand-in does not support generics on `{name}`");
    }

    // Find the body group (skipping `where` clauses, which we don't emit).
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                Some(g.clone())
            }
            _ => None,
        })
        .expect("derive input has no body");

    let shape = if kind == "struct" {
        match body.delimiter() {
            Delimiter::Parenthesis => {
                let fields = split_top_level(body.stream());
                assert!(
                    fields.len() == 1,
                    "tuple struct `{name}` has {} fields; only newtypes are supported",
                    fields.len()
                );
                Shape::Newtype
            }
            _ => Shape::Struct(parse_named_fields(body.stream())),
        }
    } else {
        Shape::Enum(parse_variants(body.stream()))
    };
    Item {
        name,
        shape,
        rename_all,
    }
}

/// Inspects one outer attribute's bracket group for `serde(...)` options.
fn scan_serde_attr(stream: &TokenStream, rename_all: &mut RenameAll) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let [TokenTree::Ident(id), TokenTree::Group(args)] = &tokens[..] else {
        return;
    };
    if id.to_string() != "serde" {
        return;
    }
    let text = args.stream().to_string();
    if text.contains("snake_case") {
        *rename_all = RenameAll::SnakeCase;
    } else if text.contains("lowercase") {
        *rename_all = RenameAll::Lowercase;
    }
    // `transparent` needs no action: newtypes already serialize as their
    // inner value in this data model.
}

/// Splits a token stream on top-level commas (groups nest automatically;
/// `<`/`>` depth is tracked for generic argument lists in field types).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle = 0i32;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(t);
    }
    if parts.last().is_some_and(Vec::is_empty) {
        parts.pop();
    }
    parts
}

/// Extracts field names from a named-field body: for each comma-separated
/// field, the identifier immediately before the first top-level `:`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|field| {
            let mut name = None;
            for (k, t) in field.iter().enumerate() {
                if let TokenTree::Punct(p) = t {
                    if p.as_char() == ':' {
                        if let Some(TokenTree::Ident(id)) = field.get(k.wrapping_sub(1)) {
                            name = Some(id.to_string());
                        }
                        break;
                    }
                }
            }
            name.expect("field without a name")
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|var| {
            let mut name = None;
            let mut fields = None;
            let mut iter = var.into_iter().peekable();
            while let Some(t) = iter.next() {
                match t {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        iter.next(); // skip the attribute group
                    }
                    TokenTree::Ident(id) => {
                        name = Some(id.to_string());
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            match g.delimiter() {
                                Delimiter::Brace => {
                                    fields = Some(parse_named_fields(g.stream()));
                                }
                                Delimiter::Parenthesis => {
                                    panic!("tuple enum variants are not supported");
                                }
                                _ => {}
                            }
                        }
                        break;
                    }
                    _ => {}
                }
            }
            Variant {
                name: name.expect("variant without a name"),
                fields,
            }
        })
        .collect()
}

fn rename(name: &str, rule: RenameAll) -> String {
    match rule {
        RenameAll::None => name.to_owned(),
        RenameAll::Lowercase => name.to_lowercase(),
        RenameAll::SnakeCase => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
    }
}

fn render_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Newtype => "::serde::Serialize::serialize_value(&self.0)".to_owned(),
        Shape::Struct(fields) => {
            let mut s = String::from("{ let mut __m = ::serde::value::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(\"{f}\".to_owned(), ::serde::Serialize::serialize_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__m) }");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag = rename(&v.name, item.rename_all);
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{tag}\".to_owned()),\n",
                        v = v.name
                    )),
                    Some(fields) => {
                        let pats = fields.join(", ");
                        let mut inner =
                            String::from("{ let mut __f = ::serde::value::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__f.insert(\"{f}\".to_owned(), ::serde::Serialize::serialize_value({f}));\n"
                            ));
                        }
                        inner.push_str(&format!(
                            "let mut __m = ::serde::value::Map::new();\n\
                             __m.insert(\"{tag}\".to_owned(), ::serde::Value::Object(__f));\n\
                             ::serde::Value::Object(__m) }}"
                        ));
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pats} }} => {inner},\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn render_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Newtype => format!("Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"),
        Shape::Struct(fields) => {
            let mut s = format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected an object for `{name}`\"))?;\n"
            );
            s.push_str(&format!("Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize_value(\
                     __obj.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let tag = rename(&v.name, item.rename_all);
                match &v.fields {
                    None => unit_arms.push_str(&format!(
                        "\"{tag}\" => return Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    Some(fields) => {
                        let mut inner = String::new();
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: ::serde::Deserialize::deserialize_value(\
                                 __f.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{tag}\" => {{\n\
                                 let __f = __inner.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected variant fields object\"))?;\n\
                                 return Ok({name}::{v} {{ {inner} }});\n\
                             }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                     match __s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let Some(__obj) = __v.as_object() {{\n\
                     if let Some((__tag, __inner)) = __obj.iter().next() {{\n\
                         match __tag.as_str() {{ {tagged_arms} _ => {{}} }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::Error::custom(\"unknown `{name}` variant\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
