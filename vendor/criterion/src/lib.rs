//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, group configuration
//! chains, `bench_with_input`, and `Bencher::iter` — backed by a simple
//! wall-clock harness: warm-up, then `sample_size` timed samples whose
//! mean/min/max are printed per benchmark. No statistics beyond that, no
//! HTML reports, no baseline persistence.

use std::fmt;
use std::time::{Duration, Instant};

/// Returns its argument, opaque to the optimizer.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifier for one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it for the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

/// A group of benchmarks sharing configuration; prints results on the fly.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        // Warm-up: run single iterations until the warm-up budget is spent,
        // using the observed cost to size the measured samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut one = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            f(&mut one, input);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);

        let mut means = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher, input);
            means.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        means.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        let (min, max) = (means[0], means[means.len() - 1]);

        let mut line = format!(
            "{}/{}: mean {} [min {}, max {}] ({} samples x {} iters)",
            self.name,
            id,
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
            means.len(),
            iters_per_sample,
        );
        if let Some(throughput) = self.throughput {
            let (count, unit) = match throughput {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = count as f64 / mean.max(1e-12);
            line.push_str(&format!(", {:.3} M{}/s", rate / 1e6, unit));
        }
        println!("{line}");
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark function registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group
            .throughput(Throughput::Elements(4))
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_with_input(
            BenchmarkId::from_parameter("sum"),
            &[1u64, 2, 3, 4],
            |b, xs| b.iter(|| xs.iter().sum::<u64>()),
        );
        group.finish();
    }

    criterion_group!(smoke_group, sample_bench);

    #[test]
    fn harness_runs() {
        smoke_group();
    }
}
