//! Offline vendored stand-in for `parking_lot`: the same lock API shape
//! backed by `std::sync` primitives, with poisoning swallowed (parking_lot
//! locks do not poison).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(
            self.0
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(
            self.0
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

/// RAII shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
