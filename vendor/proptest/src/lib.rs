//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace uses: the
//! [`Strategy`] trait with `prop_map`, range/tuple/collection strategies,
//! `any::<T>()`, `prop_oneof!`, and the `proptest!` test macro with
//! `ProptestConfig::with_cases` and `prop_assume!`/`prop_assert*!`.
//!
//! Differences from crates.io proptest: no shrinking (failures report the
//! generated inputs via panic messages from `prop_assert*!`), and the RNG is
//! seeded deterministically from the test's module path + name, so runs are
//! reproducible without a persistence file.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore as _, SeedableRng as _};

/// Deterministic RNG handed to strategies by the `proptest!` runner.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates an RNG seeded from an arbitrary string (test name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Returns 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Returns a uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(0..n)
    }
}

/// Marker returned by `prop_assume!` when an input is rejected.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) inputs each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike crates.io proptest there is no value tree or shrinking: a strategy
/// simply draws a value from the RNG.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F, T>
    where
        Self: Sized,
    {
        Map {
            source: self,
            func: f,
            _marker: PhantomData,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F, T> {
    source: S,
    func: F,
    _marker: PhantomData<fn() -> T>,
}

impl<S: Clone, F: Clone, T> Clone for Map<S, F, T> {
    fn clone(&self) -> Self {
        Map {
            source: self.source.clone(),
            func: self.func.clone(),
            _marker: PhantomData,
        }
    }
}

impl<S: Strategy, F: Fn(S::Value) -> T, T> Strategy for Map<S, F, T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.func)(self.source.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Boxes a strategy as a trait object (helper for `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over all values of an [`Arbitrary`] type.
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with `len` in the given range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves via the prelude.
pub mod prop {
    pub use crate::collection;
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($body:tt)*) => {
        $crate::__proptest_items!($cfg; $($body)*);
    };
    ($($body:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($body)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __rejected: u64 = 0;
            while __accepted < __config.cases {
                if __rejected > u64::from(__config.cases) * 64 + 4096 {
                    panic!(
                        "proptest '{}': too many inputs rejected by prop_assume! \
                         ({} accepted, {} rejected)",
                        stringify!($name), __accepted, __rejected,
                    );
                }
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::Rejected> = (move || {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match __outcome {
                    Ok(()) => __accepted += 1,
                    Err($crate::Rejected) => __rejected += 1,
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

/// Rejects the current input unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

/// Like `assert!`, inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*); };
}

/// Like `assert_eq!`, inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*); };
}

/// Like `assert_ne!`, inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*); };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        (0u32..10).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn mapped_values_are_even(v in small()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn assume_filters(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }

        #[test]
        fn oneof_and_vec(items in prop::collection::vec(
            prop_oneof![(0u32..3).prop_map(|v| v), (10u32..13).prop_map(|v| v)],
            0..8,
        )) {
            for item in items {
                prop_assert!(item < 3 || (10..13).contains(&item));
            }
        }

        #[test]
        fn tuples_and_any(pair in ((0u64..5), any::<bool>())) {
            let (n, _b) = pair;
            prop_assert!(n < 5);
        }
    }
}
