//! Offline vendored stand-in for `serde_json`: renders the vendored
//! `serde`'s [`Value`] tree as JSON text and parses JSON text back.
//!
//! Supports exactly what the workspace needs: `to_string`,
//! `to_string_pretty`, `from_str`, and a [`Value`] with indexing. Output is
//! byte-compatible with real serde_json for the value shapes the workspace
//! produces (compact `{"k":v}`, pretty with two-space indent).

pub use serde::value::{Map, Number, Value};
pub use serde::Error;
use serde::{Deserialize, Serialize};

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    }
    .parse_document()?;
    T::deserialize_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => out.push_str(&n.to_string()),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::custom(format!("trailing data at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| {
            Error::custom(format!("unexpected end of JSON input at byte {}", self.pos))
        })
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.parse_lit("true", Value::Bool(true)),
            b'f' => self.parse_lit("false", Value::Bool(false)),
            b'n' => self.parse_lit("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.peek()? != b'"' {
            return Err(Error::custom(format!(
                "expected a string at byte {}",
                self.pos
            )));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::custom(format!(
                    "unterminated string at byte {}",
                    self.pos
                )));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::custom(format!(
                            "unterminated escape at byte {}",
                            self.pos
                        )));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "invalid escape character at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        Error::custom(format!("invalid UTF-8 in string at byte {}", self.pos))
                    })?;
                    let c = s.chars().next().ok_or_else(|| {
                        Error::custom(format!("unterminated string at byte {}", self.pos))
                    })?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::custom("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("expected a value at byte {start}")));
        }
        let num = if float {
            Number::from_f64(text.parse().map_err(|_| Error::custom("invalid number"))?)
        } else if let Some(stripped) = text.strip_prefix('-') {
            let _ = stripped;
            Number::from_i64(text.parse().map_err(|_| Error::custom("invalid number"))?)
        } else {
            Number::from_u64(text.parse().map_err(|_| Error::custom("invalid number"))?)
        };
        Ok(Value::Num(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v: Value = from_str(r#"{"a":[1,2.5,-3],"b":"x\ny","c":null,"d":true}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_i64(), Some(-3));
        assert_eq!(v["b"], "x\ny");
        assert!(v["c"].is_null());
        assert_eq!(v["d"].as_bool(), Some(true));
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v: Value = from_str(r#"{"a":[1]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1\n  ]"), "{pretty}");
    }
}
