//! Offline vendored stand-in for `rand` 0.8.
//!
//! Provides the subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}`.
//! The generator is xoshiro256++ seeded via splitmix64 — deterministic per
//! seed (the only property the workspace relies on), but *not* bit-for-bit
//! compatible with crates.io rand's StdRng stream.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform value in `[0, span)` via rejection sampling (unbiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator (xoshiro256++ here; crates.io rand
    /// uses ChaCha12 — streams differ, determinism per seed matches).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1i32..=3);
            assert!((1..=3).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
    }
}
