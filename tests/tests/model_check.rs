//! Exhaustive (model-checking style) validation over *every* schedule of
//! small programs — the strongest form of the ground-truth and
//! soundness/completeness claims:
//!
//! * patterns the workload models declare atomic have **no** violating
//!   interleaving at all;
//! * patterns declared non-atomic have at least one;
//! * Velodrome agrees with the offline oracle on **every** explored trace,
//!   not just sampled ones.

use velodrome::{check_trace_with, VelodromeConfig};
use velodrome_events::oracle;
use velodrome_sim::{explore, ExploreLimits, Program, ProgramBuilder, Stmt};
use velodrome_workloads::patterns::{
    bare_rmw_method, double_cs_method, locked_method, ordered_racy_reader, shared_modified_setup,
};

fn contended(build: impl Fn(&mut ProgramBuilder) -> Stmt) -> Program {
    let mut b = ProgramBuilder::new();
    let s1 = build(&mut b);
    let s2 = build(&mut b);
    b.worker(vec![s1]);
    b.worker(vec![s2]);
    b.finish()
}

fn violating_schedules(program: &Program) -> (usize, usize) {
    let result = explore(program, ExploreLimits::default());
    assert!(!result.truncated, "schedule space must be fully covered");
    let violating = result
        .traces
        .iter()
        .filter(|t| !oracle::is_serializable(t))
        .count();
    (violating, result.traces.len())
}

#[test]
fn locked_method_has_no_violating_schedule() {
    let p = contended(|b| locked_method(b, "inc", "m", "x"));
    let (violating, total) = violating_schedules(&p);
    assert_eq!(violating, 0, "atomic in all {total} schedules");
    assert!(total > 10);
}

#[test]
fn double_cs_method_has_violating_schedules() {
    let p = contended(|b| double_cs_method(b, "Set.add", "m", "elems"));
    let (violating, total) = violating_schedules(&p);
    assert!(violating > 0, "non-atomic: {violating}/{total}");
    assert!(violating < total, "but not in every schedule");
}

#[test]
fn bare_rmw_method_has_violating_schedules() {
    let p = contended(|b| bare_rmw_method(b, "inc", "x", 0));
    let (violating, total) = violating_schedules(&p);
    assert!(violating > 0, "{violating}/{total}");
}

/// The jbb/mtrt false-alarm pattern is atomic under *every* schedule —
/// the exhaustive form of "the Atomizer's warning is false".
#[test]
fn ordered_racy_reader_has_no_violating_schedule() {
    let mut b = ProgramBuilder::new();
    shared_modified_setup(&mut b, &["cfg"]);
    let r1 = ordered_racy_reader(&mut b, "get", "cfg", "mstats", "stats");
    let r2 = ordered_racy_reader(&mut b, "get", "cfg", "mstats", "stats");
    b.worker(vec![r1]);
    b.worker(vec![r2]);
    let p = b.finish();
    let (violating, total) = violating_schedules(&p);
    assert_eq!(
        violating, 0,
        "genuinely atomic across all {total} schedules"
    );
    assert!(total > 20);
}

/// Exhaustive differential: the engine equals the oracle on every schedule
/// of several small programs with mixed disciplines.
#[test]
fn engine_matches_oracle_on_every_schedule() {
    let programs: Vec<Program> = vec![
        contended(|b| double_cs_method(b, "m", "l", "x")),
        contended(|b| bare_rmw_method(b, "m", "x", 1)),
        {
            let mut b = ProgramBuilder::new();
            let x = b.var("x");
            let y = b.var("y");
            let l1 = b.label("writer");
            let l2 = b.label("reader");
            b.worker(vec![Stmt::Atomic(l1, vec![Stmt::Write(x), Stmt::Write(y)])]);
            b.worker(vec![Stmt::Atomic(l2, vec![Stmt::Read(y), Stmt::Read(x)])]);
            b.finish()
        },
    ];
    let mut checked = 0;
    for program in &programs {
        let result = explore(program, ExploreLimits::default());
        assert!(!result.truncated);
        for trace in &result.traces {
            let expected = !oracle::is_serializable(trace);
            let (_, engine) = check_trace_with(trace, VelodromeConfig::default());
            assert_eq!(
                engine.stats().cycles_detected > 0,
                expected,
                "engine/oracle disagreement on schedule:\n{trace}"
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "covered {checked} schedules");
}
