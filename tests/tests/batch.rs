//! Integration tests for the VBT trace format and the batch runner.
//!
//! Three layers of assurance:
//!
//! * every corpus trace has a `.trace.vbt` twin that is *semantically
//!   byte-identical* — same [`Trace::to_json`] bytes, and byte-identical
//!   warnings from the checker on both twins;
//! * `velodrome check-batch` over the whole corpus reports, per trace,
//!   exactly the warnings a serial `velodrome trace` run produces;
//! * a property test drives json → vbt → json over the simulator's
//!   generator space and demands byte equality.
//!
//! Regenerate the twins after changing a corpus program or the wire
//! format (bump [`vbt::VERSION`] for the latter):
//!
//! ```text
//! cargo test -p velodrome-integration --test corpus_conformance \
//!     regenerate_corpus -- --ignored
//! ```

use proptest::prelude::*;
use std::io::Cursor;
use std::path::PathBuf;
use velodrome_cli::execute;
use velodrome_events::{vbt, Trace};
use velodrome_sim::{random_program, run_program, GenConfig, RandomScheduler};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Sorted corpus trace stems (paths without the `.trace.json` suffix).
fn corpus_stems() -> Vec<PathBuf> {
    let mut stems: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir exists")
        .map(|e| e.unwrap().path())
        .filter_map(|p| {
            let name = p.file_name()?.to_str()?;
            let stem = name.strip_suffix(".trace.json")?;
            Some(p.with_file_name(stem))
        })
        .collect();
    stems.sort();
    assert!(stems.len() >= 20, "corpus shrank to {}", stems.len());
    stems
}

fn run(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
    execute(&args).unwrap_or_else(|e| panic!("{args:?} failed: {e}"))
}

/// Every `.trace.json` has a `.trace.vbt` twin decoding to the identical
/// trace, and the checker's warnings are byte-identical across the twins
/// for both the graph engine and the hybrid backend.
#[test]
fn corpus_vbt_twins_are_verdict_identical() {
    for stem in corpus_stems() {
        let json_path = format!("{}.trace.json", stem.display());
        let vbt_path = format!("{}.trace.vbt", stem.display());
        let json = std::fs::read_to_string(&json_path).expect("json twin reads");
        let bytes = std::fs::read(&vbt_path)
            .unwrap_or_else(|_| panic!("{vbt_path} missing; regenerate_corpus -- --ignored"));

        let from_json = Trace::from_json(&json).expect("json twin parses");
        let from_vbt = vbt::read_vbt(Cursor::new(&bytes)).expect("vbt twin parses");
        assert_eq!(
            from_vbt.to_json(),
            from_json.to_json(),
            "{vbt_path}: twin decodes to a different trace"
        );
        assert_eq!(
            vbt::trace_to_vbt(&from_json),
            bytes,
            "{vbt_path}: stale twin; regenerate_corpus -- --ignored"
        );

        for backend in ["velodrome", "velodrome-hybrid"] {
            let serial = run(&[
                "trace",
                &json_path,
                "--json",
                &format!("--backend={backend}"),
            ]);
            let twin = run(&[
                "trace",
                &vbt_path,
                "--json",
                &format!("--backend={backend}"),
            ]);
            assert_eq!(serial, twin, "{vbt_path}: {backend} verdict diverges");
        }
    }
}

/// `check-batch` over the whole corpus (both formats at once) reports
/// per-trace warnings byte-identical to serial single-trace runs, in
/// deterministic input order.
#[test]
fn check_batch_agrees_with_serial_runs_over_the_corpus() {
    let dir = corpus_dir();
    let out = run(&[
        "check-batch",
        dir.to_str().unwrap(),
        "--jobs=4",
        "--backend=velodrome-hybrid",
    ]);
    let lines: Vec<&str> = out.lines().collect();
    // One line per .json + .vbt trace file plus the summary line.
    let expected_traces = 2 * corpus_stems().len();
    assert_eq!(lines.len(), expected_traces + 1, "{out}");

    for line in &lines[..expected_traces] {
        let entry: serde_json::Value = serde_json::from_str(line).expect("JSONL line parses");
        let path = entry["path"].as_str().expect("path field").to_owned();
        assert_eq!(entry["status"].as_str(), Some("ok"), "{path}");
        let serial = run(&["trace", &path, "--json", "--backend=velodrome-hybrid"]);
        let serial: serde_json::Value = serde_json::from_str(&serial).expect("serial parses");
        assert_eq!(
            serde_json::to_string(&entry["warnings"]).unwrap(),
            serde_json::to_string(&serial).unwrap(),
            "{path}: batch warnings diverge from the serial run"
        );
    }

    let summary: serde_json::Value = serde_json::from_str(lines[expected_traces]).unwrap();
    assert_eq!(
        summary["summary"]["ok"].as_u64(),
        Some(expected_traces as u64),
        "{out}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// json → vbt → json is the identity (byte equality of the JSON
    /// encoding) over the simulator's generator space, including traces
    /// with synthesized close-out events.
    #[test]
    fn prop_vbt_roundtrip_is_identity(
        gen_seed in 0u64..10_000,
        sched_seed in 0u64..10_000,
        threads in 1usize..4,
        vars in 1usize..4,
        locks in 0usize..3,
        stmts in 2usize..10,
    ) {
        let cfg = GenConfig {
            threads,
            vars,
            locks,
            stmts_per_thread: stmts,
            ..GenConfig::default()
        };
        let program = random_program(&cfg, gen_seed);
        let trace = run_program(&program, RandomScheduler::new(sched_seed)).trace;
        let json = trace.to_json();

        let bytes = vbt::trace_to_vbt(&trace);
        let back = vbt::read_vbt(Cursor::new(&bytes)).expect("roundtrip decodes");
        prop_assert_eq!(back.to_json(), json);

        // And once more through the JSON twin, as `convert` would go.
        let reparsed = Trace::from_json(&json).expect("json reparses");
        prop_assert_eq!(vbt::trace_to_vbt(&reparsed), bytes);
    }
}
