//! Golden conformance corpus: ~20 recorded traces with expected verdicts,
//! replayed across every velodrome-family backend in one test.
//!
//! Each corpus entry is a trio of files in `tests/corpus/`:
//!
//! * `<name>.trace.json` — the recorded trace ([`Trace::to_json`]);
//! * `<name>.trace.vbt` — the same trace in the binary VBT format (the
//!   `batch` integration suite checks the twins verdict-identical);
//! * `<name>.expect.json` — the expected outcome: the oracle verdict, the
//!   warning count, the blamed transaction labels, and whether the hybrid
//!   checker's vector-clock screen escalated (pinning the screen's
//!   fast-path behavior, not just the verdict).
//!
//! The corpus is generated from the builder programs in
//! [`corpus_programs`] by the `#[ignore]`d `regenerate_corpus` test
//! (ground truth comes from the offline oracle, which shares no code with
//! the online checkers):
//!
//! ```text
//! cargo test -p velodrome-integration --test corpus_conformance \
//!     regenerate_corpus -- --ignored
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;
use velodrome::{check_trace_with, HybridConfig, HybridVelodrome, VelodromeConfig};
use velodrome_events::{oracle, semantics, Trace, TraceBuilder};
use velodrome_monitor::{run_tool, Warning};
use velodrome_sim::{run_program, RandomScheduler};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// The canonical corpus: `(name, trace)` pairs covering the engine's
/// structural cases — crossing conflicts, late dependencies, cycles
/// through finished and re-entered transactions, unary bridges, fork/join,
/// lock-edge cycles, nesting, open transactions at end of trace, and the
/// serializable fan-in pattern the hybrid screen must never escalate on.
fn corpus_programs() -> Vec<(&'static str, Trace)> {
    let mut out: Vec<(&'static str, Trace)> = Vec::new();

    // Figure 1: a read-modify-write transaction with an interleaved
    // foreign write. The canonical violation.
    let mut b = TraceBuilder::new();
    b.begin("T1", "inc").read("T1", "x");
    b.write("T2", "x");
    b.write("T1", "x").end("T1");
    out.push(("figure1_rmw_violation", b.finish()));

    // The same pattern with the foreign write after the transaction.
    let mut b = TraceBuilder::new();
    b.begin("T1", "inc")
        .read("T1", "x")
        .write("T1", "x")
        .end("T1");
    b.write("T2", "x");
    out.push(("figure1_serializable", b.finish()));

    // Two overlapping transactions with conflicts in both directions.
    let mut b = TraceBuilder::new();
    b.begin("T1", "left").read("T1", "x");
    b.begin("T2", "right").write("T2", "x").read("T2", "y");
    b.write("T1", "y").end("T1");
    b.end("T2");
    out.push(("two_txn_cycle", b.finish()));

    // A -> B -> C -> A: the dependency closing the cycle arrives only
    // after B and C committed — the late-edge case that defeats naive
    // vector-clock propagation.
    let mut b = TraceBuilder::new();
    b.begin("T1", "A").write("T1", "a");
    b.begin("T2", "B")
        .read("T2", "a")
        .write("T2", "b")
        .end("T2");
    b.begin("T3", "C")
        .read("T3", "b")
        .write("T3", "c")
        .end("T3");
    b.read("T1", "c").end("T1");
    out.push(("three_txn_late_edge", b.finish()));

    // The middle transaction of the cycle has already finished when the
    // closing edge lands on the still-active one.
    let mut b = TraceBuilder::new();
    b.begin("T1", "outer").write("T1", "x");
    b.begin("T2", "middle")
        .read("T2", "x")
        .write("T2", "y")
        .end("T2");
    b.read("T1", "y").end("T1");
    out.push(("finished_middle_txn", b.finish()));

    // The cycle runs through a thread's *own earlier* transaction: Q reads
    // from P's successor R, which read from Q — the self-entry case whose
    // closing edge can only be flagged from the other thread's side.
    let mut b = TraceBuilder::new();
    b.begin("T1", "P").write("T1", "x").end("T1");
    b.begin("T2", "Q").read("T2", "x").write("T2", "y");
    b.begin("T1", "R")
        .read("T1", "y")
        .write("T1", "z")
        .end("T1");
    b.read("T2", "z").end("T2");
    out.push(("self_entry_cycle", b.finish()));

    // Nested atomic blocks; the violation is against the outer block.
    let mut b = TraceBuilder::new();
    b.begin("T1", "outer").begin("T1", "inner").read("T1", "x");
    b.write("T2", "x");
    b.end("T1").write("T1", "x").end("T1");
    out.push(("nested_atomic_violation", b.finish()));

    // Nested atomic blocks with no interference.
    let mut b = TraceBuilder::new();
    b.begin("T1", "outer").begin("T1", "inner").read("T1", "x");
    b.end("T1").write("T1", "x").end("T1");
    b.write("T2", "x");
    out.push(("nested_atomic_clean", b.finish()));

    // The same label entered twice in a row by the same thread.
    let mut b = TraceBuilder::new();
    for _ in 0..2 {
        b.begin("T1", "work")
            .read("T1", "x")
            .write("T1", "x")
            .end("T1");
    }
    b.write("T2", "x");
    out.push(("reentrant_label_clean", b.finish()));

    // Non-transactional operations bridge the cycle: the unary accesses of
    // T2 sit between A's write and A's read.
    let mut b = TraceBuilder::new();
    b.begin("T1", "A").write("T1", "x");
    b.read("T2", "x");
    b.write("T2", "y");
    b.read("T1", "y").end("T1");
    out.push(("unary_bridge_cycle", b.finish()));

    // Fork and join inside a transaction: the child's conflicting accesses
    // are both after the fork and before the join, closing a cycle.
    let mut b = TraceBuilder::new();
    b.begin("T1", "spawn").write("T1", "x").fork("T1", "T2");
    b.read("T2", "x").write("T2", "y");
    b.join("T1", "T2").read("T1", "y").end("T1");
    out.push(("fork_join_cycle", b.finish()));

    // Fork/join used correctly: the transaction commits before the join.
    let mut b = TraceBuilder::new();
    b.begin("T1", "spawn").write("T1", "x").end("T1");
    b.fork("T1", "T2");
    b.read("T2", "x").write("T2", "y");
    b.join("T1", "T2");
    b.read("T1", "y");
    out.push(("fork_join_clean", b.finish()));

    // Lock edges close the cycle: T2 observes A's release, then A reads
    // T2's write.
    let mut b = TraceBuilder::new();
    b.begin("T1", "A").acquire("T1", "m").release("T1", "m");
    b.acquire("T2", "m").write("T2", "x").release("T2", "m");
    b.read("T1", "x").end("T1");
    out.push(("lock_release_acquire_cycle", b.finish()));

    // Lock-protected transactions: fully serialized by the lock.
    let mut b = TraceBuilder::new();
    for t in ["T1", "T2"] {
        b.begin(t, "guarded")
            .acquire(t, "m")
            .read(t, "x")
            .write(t, "x")
            .release(t, "m")
            .end(t);
    }
    out.push(("lock_protected_clean", b.finish()));

    // Many concurrent readers of a variable written once beforehand.
    let mut b = TraceBuilder::new();
    b.write("T1", "x");
    for t in ["T1", "T2", "T3"] {
        b.begin(t, "reader").read(t, "x").end(t);
    }
    out.push(("read_shared_clean", b.finish()));

    // Write skew: each transaction reads what the other writes.
    let mut b = TraceBuilder::new();
    b.begin("T1", "skew1").read("T1", "x");
    b.begin("T2", "skew2").read("T2", "y");
    b.write("T1", "y").end("T1");
    b.write("T2", "x").end("T2");
    out.push(("write_skew", b.finish()));

    // The trace ends with a transaction still open.
    let mut b = TraceBuilder::new();
    b.begin("T1", "open").read("T1", "x").write("T1", "x");
    b.write("T2", "y");
    out.push(("truncated_open_txn", b.finish()));

    // A chain of transactions each reading the previous one's write.
    let mut b = TraceBuilder::new();
    b.begin("T1", "c1").write("T1", "x").end("T1");
    b.begin("T2", "c2")
        .read("T2", "x")
        .write("T2", "y")
        .end("T2");
    b.begin("T3", "c3")
        .read("T3", "y")
        .write("T3", "z")
        .end("T3");
    out.push(("long_chain_clean", b.finish()));

    // Serializable fan-in stress wave: redundant orderings arrive already
    // implied, the redundant-edge worst case. The hybrid screen must hold
    // (its expect file pins `hybrid_escalated: false`).
    out.push((
        "fanin_wave",
        velodrome_bench::hotpath::fanin_stress_trace(2, 3, 2),
    ));

    // A small recorded run of the paper's multiset model.
    let w = velodrome_workloads::build("multiset", 1).expect("workload");
    let result = run_program(&w.program, RandomScheduler::new(1));
    assert!(!result.deadlocked, "multiset seed 1 must not deadlock");
    out.push(("multiset_small", result.trace));

    out
}

fn engine_config(trace: &Trace) -> VelodromeConfig {
    VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    }
}

fn blamed_labels(trace: &Trace, warnings: &[Warning]) -> BTreeSet<String> {
    warnings
        .iter()
        .filter_map(|w| w.label)
        .map(|l| trace.names().label(l))
        .collect()
}

/// Computes an entry's expected-outcome JSON from the oracle and the
/// checkers themselves (used by the regenerator; the conformance test
/// recomputes everything and compares against the stored file).
fn expectation(trace: &Trace) -> String {
    let serializable = oracle::is_serializable(trace);
    let (warnings, _) = check_trace_with(trace, engine_config(trace));
    let mut hybrid = HybridVelodrome::with_config(HybridConfig {
        engine: engine_config(trace),
        ..HybridConfig::default()
    });
    run_tool(&mut hybrid, trace);
    let blamed: Vec<String> = blamed_labels(trace, &warnings).into_iter().collect();
    format!(
        "{{\n  \"serializable\": {},\n  \"warnings\": {},\n  \"blamed\": {},\n  \"hybrid_escalated\": {}\n}}\n",
        serializable,
        warnings.len(),
        serde_json::to_string(&blamed).expect("labels serialize"),
        hybrid.escalated(),
    )
}

#[test]
fn corpus_replays_identically_across_backends() {
    let dir = corpus_dir();
    let programs = corpus_programs();
    for (name, original) in &programs {
        let trace_path = dir.join(format!("{name}.trace.json"));
        let expect_path = dir.join(format!("{name}.expect.json"));
        let trace_json = std::fs::read_to_string(&trace_path)
            .unwrap_or_else(|e| panic!("{}: {e} (run regenerate_corpus)", trace_path.display()));
        let trace = Trace::from_json(&trace_json).expect("corpus trace parses");
        assert_eq!(semantics::validate(&trace), Ok(()), "{name}: ill-formed");
        assert_eq!(
            trace.ops(),
            original.ops(),
            "{name}: stored trace diverges from its builder program \
             (run regenerate_corpus)"
        );
        let expect: serde_json::Value = serde_json::from_str(
            &std::fs::read_to_string(&expect_path)
                .unwrap_or_else(|e| panic!("{}: {e}", expect_path.display())),
        )
        .expect("expect file parses");

        let serializable = expect["serializable"].as_bool().expect(name);
        assert_eq!(
            oracle::is_serializable(&trace),
            serializable,
            "{name}: oracle verdict changed"
        );

        // Pure Velodrome: sound and complete, so warnings iff a violation;
        // blame matches the recorded labels.
        let (pure_warnings, engine) = check_trace_with(&trace, engine_config(&trace));
        assert_eq!(
            pure_warnings.len() as u64,
            expect["warnings"].as_u64().expect(name),
            "{name}: warning count changed"
        );
        assert_eq!(pure_warnings.is_empty(), serializable, "{name}: soundness");
        let expected_blamed: BTreeSet<String> = expect["blamed"]
            .as_array()
            .expect(name)
            .iter()
            .map(|v| v.as_str().expect(name).to_owned())
            .collect();
        assert_eq!(
            blamed_labels(&trace, &pure_warnings),
            expected_blamed,
            "{name}: blame changed"
        );

        // The no-merge variant agrees on the verdict.
        let (nomerge_warnings, _) = check_trace_with(
            &trace,
            VelodromeConfig {
                merge: false,
                ..engine_config(&trace)
            },
        );
        assert_eq!(
            nomerge_warnings.is_empty(),
            serializable,
            "{name}: no-merge verdict diverges"
        );

        // The hybrid checker: byte-identical warnings and reports, and the
        // recorded escalation behavior (e.g. fanin_wave must stay on the
        // screen's fast path).
        let mut hybrid = HybridVelodrome::with_config(HybridConfig {
            engine: engine_config(&trace),
            ..HybridConfig::default()
        });
        let hybrid_warnings = run_tool(&mut hybrid, &trace);
        assert_eq!(
            serde_json::to_string(&hybrid_warnings).unwrap(),
            serde_json::to_string(&pure_warnings).unwrap(),
            "{name}: hybrid warnings diverge"
        );
        assert_eq!(
            serde_json::to_string(hybrid.reports()).unwrap(),
            serde_json::to_string(engine.reports()).unwrap(),
            "{name}: hybrid reports diverge"
        );
        assert_eq!(
            hybrid.escalated(),
            expect["hybrid_escalated"].as_bool().expect(name),
            "{name}: screen escalation behavior changed"
        );

        // The verdict-only backend: same blame, details stripped.
        let mut aero = HybridVelodrome::with_config(HybridConfig {
            engine: engine_config(&trace),
            verdict_only: true,
            ..HybridConfig::default()
        });
        let aero_warnings = run_tool(&mut aero, &trace);
        assert_eq!(aero_warnings.len(), pure_warnings.len(), "{name}");
        assert_eq!(
            blamed_labels(&trace, &aero_warnings),
            expected_blamed,
            "{name}: aerodrome blame diverges"
        );
        assert!(
            aero_warnings
                .iter()
                .all(|w| w.tool == "aerodrome" && w.details.is_none()),
            "{name}: aerodrome warnings not relabeled"
        );
    }

    // No stray files: everything in the corpus directory belongs to a
    // known program (catches renamed entries whose old files linger).
    let known: BTreeSet<String> = programs
        .iter()
        .flat_map(|(name, _)| {
            [
                format!("{name}.trace.json"),
                format!("{name}.trace.vbt"),
                format!("{name}.expect.json"),
            ]
        })
        .collect();
    for entry in std::fs::read_dir(&dir).expect("corpus dir exists") {
        let file = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(known.contains(&file), "stray corpus file {file}");
    }
    assert!(programs.len() >= 20, "corpus shrank to {}", programs.len());
}

/// Rewrites the corpus from the builder programs. Run after intentionally
/// changing a program or the expected-output format:
///
/// ```text
/// cargo test -p velodrome-integration --test corpus_conformance \
///     regenerate_corpus -- --ignored
/// ```
#[test]
#[ignore = "writes tests/corpus; run explicitly to regenerate"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, trace) in corpus_programs() {
        assert_eq!(semantics::validate(&trace), Ok(()), "{name}: ill-formed");
        std::fs::write(dir.join(format!("{name}.trace.json")), trace.to_json())
            .expect("write trace");
        std::fs::write(
            dir.join(format!("{name}.trace.vbt")),
            velodrome_events::vbt::trace_to_vbt(&trace),
        )
        .expect("write vbt twin");
        std::fs::write(dir.join(format!("{name}.expect.json")), expectation(&trace))
            .expect("write expect");
    }
}
