//! End-to-end pipeline tests across crates: workloads → schedulers →
//! filters → chained back-ends → reports.

use std::collections::HashSet;
use velodrome::{check_trace, Velodrome, VelodromeConfig};
use velodrome_atomizer::Atomizer;
use velodrome_events::Trace;
use velodrome_lockset::Eraser;
use velodrome_monitor::{run_tool, AtomicitySpec, SpecFilter, ToolChain, WarningCategory};
use velodrome_sim::run_program;
use velodrome_workloads::adversarial::adversarial_scheduler;

fn velodrome_with_names(trace: &Trace) -> Vec<velodrome_monitor::Warning> {
    let cfg = VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    };
    let mut v = Velodrome::with_config(cfg);
    run_tool(&mut v, trace)
}

/// Completeness on every workload, under both plain and adversarial
/// scheduling: Velodrome never reports a method that is actually atomic.
#[test]
fn zero_false_alarms_across_all_workloads_and_schedulers() {
    for w in velodrome_workloads::all(1) {
        for seed in 0..4u64 {
            let plain = w.run(seed);
            let adv = run_program(&w.program, adversarial_scheduler(seed, 200));
            assert!(!adv.deadlocked);
            for trace in [&plain, &adv.trace] {
                for warning in velodrome_with_names(trace) {
                    let name = trace.names().label(warning.label.expect("label"));
                    assert!(
                        w.is_non_atomic(&name),
                        "false alarm on {}::{name} (seed {seed})",
                        w.name
                    );
                }
            }
        }
    }
}

/// Running tools chained over one stream equals running them separately.
#[test]
fn tool_chain_matches_individual_runs() {
    let w = velodrome_workloads::build("hedc", 1).unwrap();
    let trace = w.run(7);

    let solo_velodrome = check_trace(&trace);
    let solo_atomizer = run_tool(&mut Atomizer::new(), &trace);
    let solo_eraser = run_tool(&mut Eraser::new(), &trace);

    let mut chain = ToolChain::new()
        .with(Velodrome::new())
        .with(Atomizer::new())
        .with(Eraser::new());
    let chained = run_tool(&mut chain, &trace);

    let count = |tool: &str| chained.iter().filter(|w| w.tool == tool).count();
    assert_eq!(count("velodrome"), solo_velodrome.len());
    assert_eq!(count("atomizer"), solo_atomizer.len());
    assert_eq!(count("eraser"), solo_eraser.len());
}

/// Excluding every atomic block from the spec silences atomicity checking
/// entirely (everything becomes unary transactions, which are serializable).
#[test]
fn excluding_all_labels_silences_velodrome() {
    let w = velodrome_workloads::build("multiset", 1).unwrap();
    let trace = w.run(3);
    assert!(!check_trace(&trace).is_empty(), "baseline has violations");

    let labels: HashSet<_> = trace
        .ops()
        .iter()
        .filter_map(|op| match op {
            velodrome_events::Op::Begin { l, .. } => Some(*l),
            _ => None,
        })
        .collect();
    let mut filtered = SpecFilter::new(AtomicitySpec::excluding(labels), Velodrome::new());
    let warnings = run_tool(&mut filtered, &trace);
    assert!(warnings.is_empty(), "{warnings:?}");
}

/// Trace serialization roundtrips through JSON with identical analysis
/// results.
#[test]
fn serialized_traces_reanalyze_identically() {
    let w = velodrome_workloads::build("tsp", 1).unwrap();
    let trace = w.run(5);
    let reloaded = Trace::from_json(&trace.to_json()).expect("roundtrip");
    let a = velodrome_with_names(&trace);
    let b = velodrome_with_names(&reloaded);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.op_index, y.op_index);
        assert_eq!(x.message, y.message);
    }
}

/// Warnings from atomicity back-ends are categorized as atomicity, race
/// detectors as races.
#[test]
fn warning_categories_are_consistent() {
    let w = velodrome_workloads::build("tsp", 1).unwrap();
    let trace = w.run(2);
    for warning in check_trace(&trace) {
        assert_eq!(warning.category, WarningCategory::Atomicity);
        assert_eq!(warning.tool, "velodrome");
    }
    for warning in run_tool(&mut Eraser::new(), &trace) {
        assert_eq!(warning.category, WarningCategory::Race);
    }
}

/// The engine's documented Table 1 behavior holds on the biggest workload:
/// allocations stay proportional to transactions, alive counts stay tiny.
#[test]
fn jigsaw_scales_with_bounded_live_nodes() {
    let w = velodrome_workloads::build("jigsaw", 3).unwrap();
    let trace = w.run_round_robin();
    assert!(trace.len() > 5_000);
    let cfg = VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    };
    let mut engine = Velodrome::with_config(cfg);
    let _ = run_tool(&mut engine, &trace);
    let stats = engine.stats();
    assert!(stats.max_alive <= 64, "max alive {}", stats.max_alive);
    assert!(
        stats.nodes_allocated < trace.len() as u64,
        "allocations bounded by events"
    );
}

/// Velodrome's subsequence property (Section 6): warnings found on a trace
/// with uninstrumented (dropped) variables are still real violations of the
/// full trace.
#[test]
fn subsequence_warnings_remain_valid() {
    use velodrome_events::oracle;
    let w = velodrome_workloads::build("multiset", 1).unwrap();
    let full = w.run(1);
    // Drop all accesses to every other variable, as if those fields were in
    // an uninstrumented library.
    let mut partial = Trace::new();
    *partial.names_mut() = full.names().clone();
    for (_, op) in full.iter() {
        let keep = match op.var() {
            Some(x) => x.index() % 2 == 0,
            None => true,
        };
        if keep {
            partial.push(op);
        }
    }
    // If the subsequence is non-serializable, the full trace must be too.
    if !oracle::is_serializable(&partial) {
        assert!(
            !oracle::is_serializable(&full),
            "subsequence property violated"
        );
    }
    // And Velodrome on the subsequence only reports genuinely non-atomic
    // methods of the full program.
    for warning in velodrome_with_names(&partial) {
        let name = partial.names().label(warning.label.expect("label"));
        assert!(w.is_non_atomic(&name), "{name}");
    }
}
