//! Integration of the live-thread shims with filters and online analyses:
//! the reproduction's answer to RoadRunner's instrumentation pipeline.

use std::sync::atomic::{AtomicI64, Ordering};
use velodrome::{check_trace, Velodrome};
use velodrome_events::semantics;
use velodrome_monitor::shim::Runtime;
use velodrome_monitor::{ReentrantLockFilter, ThreadLocalFilter};

/// Four real threads under a correct locking discipline: the trace is
/// well-formed, the data is consistent, and Velodrome stays silent.
#[test]
fn four_threads_locked_counter_is_atomic() {
    let rt = Runtime::recorder();
    let counter = rt.shared("counter", 0i64);
    let lock = rt.lock("lock", ());
    let per_thread = 25;

    let mut handles = Vec::new();
    let mut tokens = Vec::new();
    for _ in 0..4 {
        let tok = rt.fork();
        tokens.push(tok);
        let rt2 = rt.clone();
        let c = counter.clone();
        let l = lock.clone();
        handles.push(std::thread::spawn(move || {
            rt2.adopt(tok);
            for _ in 0..per_thread {
                rt2.atomic("increment", || {
                    let _g = l.lock();
                    let v = c.get();
                    c.set(v + 1);
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for tok in tokens {
        rt.join(tok);
    }
    let (trace, _) = rt.finish();
    assert_eq!(semantics::validate(&trace), Ok(()));
    assert_eq!(counter.get_unmonitored(), 4 * per_thread);
    assert!(check_trace(&trace).is_empty());
}

/// The online tool behind the shims produces exactly the warnings an
/// offline re-analysis of the recorded trace produces.
#[test]
fn online_equals_offline() {
    let rt = Runtime::online(Velodrome::new());
    let x = rt.shared("x", 0);
    let tok = rt.fork();
    let h = {
        let rt2 = rt.clone();
        let x2 = x.clone();
        std::thread::spawn(move || {
            rt2.adopt(tok);
            for _ in 0..20 {
                x2.set(1);
            }
        })
    };
    for _ in 0..20 {
        rt.atomic("rmw", || {
            let v = x.get();
            x.set(v + 1);
        });
    }
    h.join().unwrap();
    rt.join(tok);
    let (trace, online) = rt.finish();
    let offline = check_trace(&trace);
    assert_eq!(online.len(), offline.len());
    for (a, b) in online.iter().zip(&offline) {
        assert_eq!(a.op_index, b.op_index);
        assert_eq!(a.label, b.label);
    }
}

/// Filters compose with the engine: a re-entrant, thread-local-heavy
/// workload passes cleanly through the filter stack.
#[test]
fn filter_stack_preserves_verdicts() {
    let rt = Runtime::recorder();
    let shared = rt.shared("shared", 0);
    let private = rt.shared("private", 0);
    let lock = rt.lock("m", ());
    let tok = rt.fork();
    let h = {
        let rt2 = rt.clone();
        let s = shared.clone();
        let l = lock.clone();
        std::thread::spawn(move || {
            rt2.adopt(tok);
            for _ in 0..10 {
                let _g = l.lock();
                let v = s.get();
                s.set(v + 1);
            }
        })
    };
    for _ in 0..10 {
        // Private churn plus correct shared updates.
        let v = private.get();
        private.set(v + 1);
        let _g = lock.lock();
        let v = shared.get();
        shared.set(v + 1);
    }
    h.join().unwrap();
    rt.join(tok);
    let (trace, _) = rt.finish();

    let mut stack = ReentrantLockFilter::new(ThreadLocalFilter::new(Velodrome::new()));
    let warnings = velodrome_monitor::run_tool(&mut stack, &trace);
    assert!(warnings.is_empty(), "{warnings:?}");
}

/// Heavy cross-thread traffic through the shims never corrupts the global
/// event order (stress).
#[test]
fn shim_stress_well_formed() {
    let rt = Runtime::recorder();
    let vars: Vec<_> = (0..4).map(|i| rt.shared(&format!("v{i}"), 0i64)).collect();
    let locks: Vec<_> = (0..2).map(|i| rt.lock(&format!("m{i}"), ())).collect();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(3));
    let work = std::sync::Arc::new(AtomicI64::new(0));

    let mut handles = Vec::new();
    let mut tokens = Vec::new();
    for w in 0..3 {
        let tok = rt.fork();
        tokens.push(tok);
        let rt2 = rt.clone();
        let vars = vars.clone();
        let locks = locks.clone();
        let barrier = barrier.clone();
        let work = work.clone();
        handles.push(std::thread::spawn(move || {
            rt2.adopt(tok);
            barrier.wait();
            for i in 0..30 {
                // Lock choice keyed to the variable: consistent protection.
                let var_idx = (w + i) % vars.len();
                let v = &vars[var_idx];
                let l = &locks[var_idx % locks.len()];
                rt2.atomic("op", || {
                    let _g = l.lock();
                    let cur = v.get();
                    v.set(cur + 1);
                });
                work.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for tok in tokens {
        rt.join(tok);
    }
    let (trace, _) = rt.finish();
    assert_eq!(semantics::validate(&trace), Ok(()));
    assert_eq!(work.load(Ordering::Relaxed), 90);
    // The single-lock-per-block discipline is atomic.
    assert!(check_trace(&trace).is_empty());
}
