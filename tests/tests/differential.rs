//! Differential testing of Theorem 1: Velodrome reports a violation
//! **iff** the observed trace is not conflict-serializable.
//!
//! Three independent implementations are compared on traces of randomly
//! generated programs under randomly seeded schedulers:
//!
//! * the optimized engine (Figure 4: merge, GC, packed steps);
//! * the basic engine (Figure 2 `[INS OUTSIDE]` rule, no merge);
//! * the offline oracle (full transaction conflict graph, no shared code
//!   with the online engines).

use proptest::prelude::*;
use velodrome::{check_trace_with, VelodromeConfig};
use velodrome_events::{oracle, semantics, Trace};
use velodrome_sim::{random_program, run_program, GenConfig, RandomScheduler, RoundRobin};

fn velodrome_verdict(trace: &Trace, merge: bool) -> bool {
    let cfg = VelodromeConfig {
        merge,
        ..VelodromeConfig::default()
    };
    let (warnings, engine) = check_trace_with(trace, cfg);
    let non_serializable = engine.stats().cycles_detected > 0;
    assert_eq!(
        warnings.is_empty(),
        !non_serializable,
        "warnings and cycle detection must agree"
    );
    engine.check_invariants();
    non_serializable
}

fn assert_agreement(trace: &Trace, context: &str) {
    assert_eq!(
        semantics::validate(trace),
        Ok(()),
        "{context}: ill-formed trace"
    );
    let expected = !oracle::is_serializable(trace);
    let optimized = velodrome_verdict(trace, true);
    let basic = velodrome_verdict(trace, false);
    assert_eq!(
        optimized, expected,
        "{context}: optimized engine disagrees with oracle on:\n{trace}"
    );
    assert_eq!(
        basic, expected,
        "{context}: basic engine disagrees with oracle on:\n{trace}"
    );
}

#[test]
fn seeded_programs_random_schedules() {
    let cfg = GenConfig::default();
    for seed in 0..150u64 {
        let program = random_program(&cfg, seed);
        let result = run_program(&program, RandomScheduler::new(seed.wrapping_mul(0x9e37)));
        if result.deadlocked {
            continue;
        }
        assert_agreement(&result.trace, &format!("seed {seed}"));
    }
}

#[test]
fn seeded_programs_round_robin() {
    let cfg = GenConfig {
        threads: 2,
        vars: 2,
        locks: 1,
        ..GenConfig::default()
    };
    for seed in 0..100u64 {
        let program = random_program(&cfg, seed);
        let result = run_program(&program, RoundRobin::new());
        if result.deadlocked {
            continue;
        }
        assert_agreement(&result.trace, &format!("rr seed {seed}"));
    }
}

#[test]
fn high_contention_programs() {
    // One variable, no locks: maximal conflict density.
    let cfg = GenConfig {
        threads: 3,
        vars: 1,
        locks: 0,
        stmts_per_thread: 6,
        sync_prob: 0.0,
        ..GenConfig::default()
    };
    for seed in 0..100u64 {
        let program = random_program(&cfg, seed);
        let result = run_program(&program, RandomScheduler::new(!seed));
        if result.deadlocked {
            continue;
        }
        assert_agreement(&result.trace, &format!("contended seed {seed}"));
    }
}

/// Equivalent traces (adjacent commuting swaps) keep every verdict.
#[test]
fn verdict_invariant_under_commuting_swaps() {
    use rand::{Rng, SeedableRng};
    let cfg = GenConfig {
        threads: 3,
        vars: 2,
        locks: 1,
        ..GenConfig::default()
    };
    for seed in 0..40u64 {
        let program = random_program(&cfg, seed);
        let result = run_program(&program, RandomScheduler::new(seed));
        if result.deadlocked {
            continue;
        }
        let base = result.trace;
        let expected = !oracle::is_serializable(&base);

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut ops: Vec<_> = base.ops().to_vec();
        for _ in 0..200 {
            if ops.len() < 2 {
                break;
            }
            let i = rng.gen_range(0..ops.len() - 1);
            if ops[i].commutes_with(ops[i + 1]) {
                ops.swap(i, i + 1);
            }
        }
        let mut swapped = Trace::from_ops(ops);
        *swapped.names_mut() = base.names().clone();
        assert_eq!(
            semantics::validate(&swapped),
            Ok(()),
            "swaps preserve well-formedness"
        );
        assert_eq!(
            !oracle::is_serializable(&swapped),
            expected,
            "oracle verdict changed under equivalence (seed {seed})"
        );
        assert_eq!(
            velodrome_verdict(&swapped, true),
            expected,
            "velodrome verdict changed under equivalence (seed {seed})"
        );
    }
}

/// Tiny traces: the online verdict matches the brute-force *definition* of
/// serializability (search over all equivalent traces for a serial one).
#[test]
fn verdict_matches_bruteforce_definition_on_tiny_traces() {
    let cfg = GenConfig {
        threads: 2,
        vars: 2,
        locks: 1,
        stmts_per_thread: 2,
        max_depth: 2,
        ..GenConfig::default()
    };
    let mut decided = 0;
    for seed in 0..120u64 {
        let program = random_program(&cfg, seed);
        let result = run_program(&program, RandomScheduler::new(seed));
        if result.deadlocked || result.trace.len() > 14 {
            continue;
        }
        let Ok(brute) = oracle::serial_equivalent_exists(&result.trace, 2_000_000) else {
            continue;
        };
        decided += 1;
        assert_eq!(
            velodrome_verdict(&result.trace, true),
            !brute,
            "definition mismatch on seed {seed}:\n{}",
            result.trace
        );
    }
    assert!(decided >= 10, "expected enough tiny traces, got {decided}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property form of the three-way agreement over the full generator
    /// parameter space.
    #[test]
    fn prop_three_way_agreement(
        gen_seed in 0u64..10_000,
        sched_seed in 0u64..10_000,
        threads in 1usize..4,
        vars in 1usize..4,
        locks in 0usize..3,
        stmts in 2usize..8,
    ) {
        let cfg = GenConfig {
            threads,
            vars,
            locks,
            stmts_per_thread: stmts,
            ..GenConfig::default()
        };
        let program = random_program(&cfg, gen_seed);
        let result = run_program(&program, RandomScheduler::new(sched_seed));
        prop_assume!(!result.deadlocked);
        let trace = result.trace;
        let expected = !oracle::is_serializable(&trace);
        prop_assert_eq!(velodrome_verdict(&trace, true), expected, "optimized");
        prop_assert_eq!(velodrome_verdict(&trace, false), expected, "basic");
    }
}
