//! Metatheory validation of blame assignment (Section 4.3).
//!
//! The paper's claim: when the cycle completing at transaction `D` is
//! *increasing* through every other node, `D` is provably **not
//! self-serializable** and can be blamed. These tests check that claim
//! against a brute-force self-serializability decision procedure (search
//! over all equivalent traces) on small randomly generated violating
//! traces.

use velodrome::{check_trace_with, VelodromeConfig};
use velodrome_events::{oracle, Trace, Transactions, TxnId};
use velodrome_sim::{random_program, run_program, GenConfig, RandomScheduler};

/// Maps a Velodrome cycle report back to the trace's transaction id via the
/// blamed transaction's first operation.
fn blamed_txn(trace: &Trace, report: &velodrome::CycleReport) -> TxnId {
    let txns = Transactions::segment(trace);
    txns.txn_of(report.nodes[0].first_op)
}

#[test]
fn increasing_cycles_blame_non_self_serializable_transactions() {
    let cfg = GenConfig {
        threads: 2,
        vars: 2,
        locks: 1,
        stmts_per_thread: 3,
        max_depth: 2,
        ..GenConfig::default()
    };
    let mut checked = 0;
    for seed in 0..3000u64 {
        if checked >= 10 {
            break;
        }
        let program = random_program(&cfg, seed);
        let result = run_program(&program, RandomScheduler::new(seed ^ 0x5a5a));
        if result.deadlocked || result.trace.len() > 20 {
            continue;
        }
        let trace = result.trace;
        let (_, engine) = check_trace_with(
            &trace,
            VelodromeConfig {
                dedup_per_label: false,
                ..VelodromeConfig::default()
            },
        );
        for report in engine.reports() {
            if report.blamed.is_none() {
                continue;
            }
            let txn = blamed_txn(&trace, report);
            // Err means the search budget was exceeded: skip.
            if let Ok(selfser) = oracle::self_serializable(&trace, txn, 1_000_000) {
                checked += 1;
                assert!(
                    !selfser,
                    "seed {seed}: blamed {txn} IS self-serializable in:\n{trace}"
                );
            }
        }
    }
    assert!(
        checked >= 5,
        "expected at least a few blamed cycles, checked {checked}"
    );
}

/// On the paper's nested-block example, the refuted blocks (`p`, `q`) are
/// exactly those containing both root and target operations.
#[test]
fn refuted_blocks_contain_root_and_target() {
    use velodrome_events::TraceBuilder;
    let mut b = TraceBuilder::new();
    b.begin("T1", "p").begin("T1", "q").read("T1", "x");
    b.write("T2", "x");
    b.begin("T1", "r")
        .write("T1", "x")
        .end("T1")
        .end("T1")
        .end("T1");
    let trace = b.finish();
    let cfg = VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    };
    let (_, engine) = check_trace_with(&trace, cfg);
    let report = &engine.reports()[0];
    // The refuted set excludes `r`, whose begin comes after the cycle root.
    let names: Vec<String> = report
        .refuted
        .iter()
        .map(|&l| trace.names().label(l))
        .collect();
    assert_eq!(names, vec!["p", "q"]);
    // Root and target operations live in the blamed transaction.
    assert_eq!(report.blamed, Some(0));
    let txns = Transactions::segment(&trace);
    let blamed = txns.txn_of(report.nodes[0].first_op);
    let closing = report.edges.last().unwrap();
    assert_eq!(
        txns.txn_of(closing.op_index),
        blamed,
        "target op inside blamed txn"
    );
}

/// Every reported cycle is structurally well-formed: as many edges as
/// nodes, the closing edge completes the loop, and blame implies an
/// increasing cycle with a non-empty refuted set for labeled transactions.
#[test]
fn cycle_reports_are_structurally_consistent() {
    let cfg = GenConfig::default();
    let mut reports_seen = 0;
    for seed in 0..120u64 {
        let program = random_program(&cfg, seed);
        let result = run_program(&program, RandomScheduler::new(seed));
        if result.deadlocked {
            continue;
        }
        let (_, engine) = check_trace_with(
            &result.trace,
            VelodromeConfig {
                dedup_per_label: false,
                ..VelodromeConfig::default()
            },
        );
        for report in engine.reports() {
            reports_seen += 1;
            assert_eq!(report.nodes.len(), report.edges.len(), "edge per node");
            assert!(report.nodes.len() >= 2, "non-trivial cycle");
            if report.blamed.is_some() {
                assert!(report.increasing, "blame requires an increasing cycle");
                assert_eq!(report.blamed, Some(0), "always the current transaction");
                assert!(
                    !report.refuted.is_empty(),
                    "an increasing cycle refutes at least the outermost block"
                );
            }
        }
    }
    assert!(
        reports_seen >= 20,
        "expected plenty of cycles, saw {reports_seen}"
    );
}
