//! Cross-backend differential testing of the two-tier atomicity checkers.
//!
//! Over 1000+ random sim traces (half with an injected atomicity defect via
//! [`velodrome_sim::mutate::elide_sync`], reproducing Section 6's
//! defect-injection study), every trace is checked by:
//!
//! * pure Velodrome (the graph engine, always on);
//! * `velodrome-hybrid` (AeroDrome vector-clock screen online, engine
//!   engaged on escalation) — warnings **and** cycle reports must be
//!   byte-identical to pure Velodrome's;
//! * `aerodrome` (verdict-only) — one warning per non-serializable
//!   transaction, agreeing with Velodrome's blame label, thread, and op
//!   index, with graph details stripped;
//! * the standalone AeroDrome screen — its definite violations must be
//!   sound (only on oracle-non-serializable traces) and its escalation
//!   flag must cover every engine-detected cycle.

use proptest::prelude::*;
use velodrome::{check_trace_with, HybridConfig, HybridVelodrome, VelodromeConfig};
use velodrome_events::{oracle, Trace};
use velodrome_monitor::run_tool;
use velodrome_sim::{mutate, random_program, run_program, GenConfig, RandomScheduler};
use velodrome_vclock::AeroDrome;

fn engine_config(trace: &Trace) -> VelodromeConfig {
    VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    }
}

/// Runs all four checkers over the trace and cross-checks their outputs.
fn assert_backends_agree(trace: &Trace, context: &str) {
    let (pure_warnings, engine) = check_trace_with(trace, engine_config(trace));
    let pure_reports = serde_json::to_string(engine.reports()).expect("reports serialize");
    let engine_found_cycle = engine.stats().cycles_detected > 0;

    // The hybrid's warnings and reports are byte-identical to pure
    // Velodrome's — same blame, same increasing-cycle refutation, same
    // rendered error graphs.
    let mut hybrid = HybridVelodrome::with_config(HybridConfig {
        engine: engine_config(trace),
        ..HybridConfig::default()
    });
    let hybrid_warnings = run_tool(&mut hybrid, trace);
    assert_eq!(
        serde_json::to_string(&hybrid_warnings).unwrap(),
        serde_json::to_string(&pure_warnings).unwrap(),
        "{context}: hybrid warnings diverge from pure Velodrome on:\n{trace}"
    );
    assert_eq!(
        serde_json::to_string(hybrid.reports()).unwrap(),
        pure_reports,
        "{context}: hybrid reports diverge from pure Velodrome on:\n{trace}"
    );
    if engine_found_cycle {
        assert!(
            hybrid.escalated(),
            "{context}: engine found a cycle but the screen never escalated on:\n{trace}"
        );
    } else if !hybrid.escalated() {
        assert_eq!(
            hybrid.stats().graph_ops(),
            0,
            "{context}: dormant engine performed graph work"
        );
    }

    // The verdict-only backend agrees per transaction: same warning list
    // modulo the tool name and the stripped graph details.
    let mut aero = HybridVelodrome::with_config(HybridConfig {
        engine: engine_config(trace),
        verdict_only: true,
        ..HybridConfig::default()
    });
    let aero_warnings = run_tool(&mut aero, trace);
    assert_eq!(
        aero_warnings.len(),
        pure_warnings.len(),
        "{context}: aerodrome verdict count diverges on:\n{trace}"
    );
    for (a, p) in aero_warnings.iter().zip(&pure_warnings) {
        assert_eq!(a.tool, "aerodrome", "{context}");
        assert_eq!(a.label, p.label, "{context}: blame label diverges");
        assert_eq!(a.thread, p.thread, "{context}: blamed thread diverges");
        assert_eq!(a.op_index, p.op_index, "{context}: op index diverges");
        assert_eq!(a.category, p.category, "{context}: category diverges");
        assert!(a.details.is_none(), "{context}: verdict carries details");
    }

    // The standalone screen: definite violations only on truly
    // non-serializable traces (soundness of the own-time check), and an
    // escalation flag whenever the engine detects a cycle (the flag is a
    // superset of the engine's detections).
    let mut screen = AeroDrome::new();
    let mut flagged = false;
    for (i, op) in trace.iter() {
        flagged |= screen.step(i, op).escalate;
    }
    if screen.stats().violations > 0 {
        assert!(
            !oracle::is_serializable(trace),
            "{context}: screen claimed a definite violation on a serializable trace:\n{trace}"
        );
    }
    if engine_found_cycle {
        assert!(
            flagged,
            "{context}: screen failed to flag an engine-detected cycle on:\n{trace}"
        );
    }
}

/// Generates the `n`-th trace of the differential corpus: even seeds run
/// the generated program as-is, odd seeds run it with one contended lock
/// region elided (when the program has one), biasing the corpus toward
/// real atomicity defects.
fn generate(seed: u64) -> Option<Trace> {
    let cfg = GenConfig::default();
    let mut program = random_program(&cfg, seed);
    if seed % 2 == 1 {
        let sites = mutate::sync_sites(&program);
        if sites > 0 {
            program = mutate::elide_sync(&program, (seed / 2) as usize % sites)
                .expect("site index in range");
        }
    }
    let result = run_program(
        &program,
        RandomScheduler::new(seed.wrapping_mul(0x9e3779b97f4a7c15)),
    );
    (!result.deadlocked).then_some(result.trace)
}

#[test]
fn thousand_random_traces_agree_across_backends() {
    let mut checked = 0u32;
    let mut violating = 0u32;
    let mut seed = 0u64;
    while checked < 1000 {
        seed += 1;
        assert!(seed < 4000, "deadlock rate too high to reach 1000 traces");
        let Some(trace) = generate(seed) else {
            continue;
        };
        if !oracle::is_serializable(&trace) {
            violating += 1;
        }
        assert_backends_agree(&trace, &format!("seed {seed}"));
        checked += 1;
    }
    // The elision mutants must actually produce violating traces, or the
    // differential corpus only ever exercises the screen's hold path.
    assert!(
        violating >= 50,
        "expected a meaningful violating fraction, got {violating}/1000"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property form over the generator parameter space, including the
    /// defect-injection site, so failures shrink toward a minimal
    /// program/schedule/mutation triple.
    #[test]
    fn prop_backends_agree(
        gen_seed in 0u64..10_000,
        sched_seed in 0u64..10_000,
        site in 0usize..8,
        inject_bit in 0u8..2,
        threads in 2usize..4,
        vars in 1usize..4,
        locks in 1usize..3,
    ) {
        let cfg = GenConfig {
            threads,
            vars,
            locks,
            ..GenConfig::default()
        };
        let inject = inject_bit == 1;
        let mut program = random_program(&cfg, gen_seed);
        if inject {
            let sites = mutate::sync_sites(&program);
            if sites > 0 {
                program = mutate::elide_sync(&program, site % sites)
                    .expect("site index in range");
            }
        }
        let result = run_program(&program, RandomScheduler::new(sched_seed));
        prop_assume!(!result.deadlocked);
        assert_backends_agree(
            &result.trace,
            &format!("gen {gen_seed} sched {sched_seed} inject {inject}"),
        );
    }
}
