//! Growth-hazard guard for the backend registry: a backend added to the
//! bench matrix must be nameable, parseable, and reachable from the CLI.

use velodrome_bench::backend::Backend;

#[test]
fn bench_backends_round_trip_and_are_cli_addressable() {
    for backend in Backend::ALL {
        assert_eq!(
            Backend::from_name(backend.name()),
            Some(backend),
            "{} does not round-trip through Backend::from_name",
            backend.name()
        );
        assert!(
            velodrome_cli::BACKENDS.contains(&backend.name()),
            "bench backend `{}` is not accepted by the CLI's --backend flag",
            backend.name()
        );
    }
}

#[test]
fn cli_accepts_every_bench_backend_on_a_real_run() {
    for backend in Backend::ALL {
        let args: Vec<String> = ["check", "jbb", &format!("--backend={}", backend.name())]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = velodrome_cli::execute(&args)
            .unwrap_or_else(|e| panic!("backend {} rejected: {e}", backend.name()));
        assert!(out.contains("events analyzed"), "{}: {out}", backend.name());
    }
}
