//! Differential testing of the two happens-before race detectors: the
//! full-vector DJIT⁺-style detector and the epoch-optimized FastTrack
//! variant must flag exactly the same variables on every trace.

use std::collections::BTreeSet;
use velodrome_events::Trace;
use velodrome_monitor::run_tool;
use velodrome_sim::{random_program, run_program, GenConfig, RandomScheduler};
use velodrome_vclock::{FastTrack, HbRaceDetector};

fn racy_vars_full(trace: &Trace) -> BTreeSet<String> {
    let mut d = HbRaceDetector::new();
    run_tool(&mut d, trace)
        .iter()
        .map(|w| w.message.split_whitespace().nth(3).unwrap().to_owned())
        .collect()
}

fn racy_vars_fast(trace: &Trace) -> BTreeSet<String> {
    let mut d = FastTrack::new();
    let _ = run_tool(&mut d, trace);
    d.racy_vars().iter().map(|x| x.to_string()).collect()
}

#[test]
fn detectors_agree_on_random_programs() {
    let cfg = GenConfig::default();
    for seed in 0..200u64 {
        let program = random_program(&cfg, seed);
        let result = run_program(&program, RandomScheduler::new(seed.rotate_left(17)));
        if result.deadlocked {
            continue;
        }
        let full = racy_vars_full(&result.trace);
        let fast = racy_vars_fast(&result.trace);
        assert_eq!(full, fast, "seed {seed} disagreement on:\n{}", result.trace);
    }
}

#[test]
fn detectors_agree_on_workloads() {
    for w in velodrome_workloads::all(1) {
        for seed in 0..2u64 {
            let trace = w.run(seed);
            assert_eq!(
                racy_vars_full(&trace),
                racy_vars_fast(&trace),
                "{} seed {seed}",
                w.name
            );
        }
    }
}

#[test]
fn detectors_agree_under_high_contention() {
    let cfg = GenConfig {
        threads: 4,
        vars: 2,
        locks: 1,
        stmts_per_thread: 10,
        ..GenConfig::default()
    };
    for seed in 0..100u64 {
        let program = random_program(&cfg, seed);
        let result = run_program(&program, RandomScheduler::new(!seed));
        if result.deadlocked {
            continue;
        }
        assert_eq!(
            racy_vars_full(&result.trace),
            racy_vars_fast(&result.trace),
            "seed {seed}"
        );
    }
}
