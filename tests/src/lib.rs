//! Integration-test crate for the Velodrome workspace.
//!
//! All content lives in the `tests/` directory of this crate; the library
//! itself is intentionally empty.
