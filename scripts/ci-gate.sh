#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors, including
# missing docs on public items), and the full test suite.
#
# Usage: scripts/ci-gate.sh [--with-bench]
#   --with-bench  also run the hotpath benchmark binary, which asserts
#                 optimized/baseline output identity and the >=30%
#                 edge-reduction floor, and rewrites BENCH_hotpath.json.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q

if [[ "${1:-}" == "--with-bench" ]]; then
    echo "==> hotpath benchmark (asserts output identity + elision floor)"
    cargo run --release -p velodrome-bench --bin hotpath >/dev/null
fi

echo "==> CI gate passed"
