#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors, including
# missing docs on public items), and the full test suite.
#
# Usage: scripts/ci-gate.sh [--with-bench]
#   --with-bench  also run the hotpath and batch benchmark binaries, which
#                 assert output identity (and the >=30% edge-reduction
#                 floor), rewriting BENCH_hotpath.json and BENCH_batch.json.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> cargo test"
cargo test -q

echo "==> chaos suite (fault injection against the live runtime)"
cargo test -q -p velodrome-monitor --test chaos

echo "==> chaos smoke (fixed-seed fault-plan set, asserts the contract)"
cargo run --release -p velodrome-bench --bin chaos >/dev/null

echo "==> malformed trace input exits with code 4"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
printf '{"truncated' > "$tmp/bad.json"
set +e
cargo run --release -q -p velodrome-cli -- trace "$tmp/bad.json" >/dev/null 2>"$tmp/err"
code=$?
set -e
if [[ "$code" -ne 4 ]]; then
    echo "expected exit code 4 for malformed input, got $code" >&2
    cat "$tmp/err" >&2
    exit 1
fi

echo "==> metrics smoke (fixed-seed workload, JSONL snapshot contract)"
cargo run --release -q -p velodrome-cli -- check multiset --seed=1 --scale=4 \
    --metrics-out="$tmp/metrics.jsonl" --metrics-interval=200 >/dev/null
cargo run --release -q -p velodrome-cli -- metrics-verify "$tmp/metrics.jsonl" >/dev/null
for name in arena.allocated arena.cur_alive engine.ops engine.ladder watchdog.pauses_issued; do
    if ! grep -q "\"$name\"" "$tmp/metrics.jsonl"; then
        echo "metrics smoke: required metric $name missing from snapshots" >&2
        exit 1
    fi
done

echo "==> hybrid metrics smoke (screen gauges present alongside the base contract)"
cargo run --release -q -p velodrome-cli -- check multiset --seed=1 --scale=4 \
    --backend=velodrome-hybrid \
    --metrics-out="$tmp/hybrid.jsonl" --metrics-interval=200 >/dev/null
cargo run --release -q -p velodrome-cli -- metrics-verify "$tmp/hybrid.jsonl" \
    --require=aerodrome.joins,aerodrome.epoch_hits,hybrid.escalations,hybrid.graph_ops \
    >/dev/null
for name in aerodrome.joins hybrid.escalations; do
    if ! grep -q "\"$name\"" "$tmp/hybrid.jsonl"; then
        echo "hybrid metrics smoke: required metric $name missing from snapshots" >&2
        exit 1
    fi
done

echo "==> batch smoke (fixed-seed corpus, JSONL schema + batch.* gauges)"
mkdir -p "$tmp/batch"
cargo run --release -q -p velodrome-cli -- record multiset --seed=1 --scale=2 \
    --out="$tmp/batch/a.json" >/dev/null
cargo run --release -q -p velodrome-cli -- record multiset --seed=2 --scale=2 \
    --out="$tmp/batch/b.json" >/dev/null
cargo run --release -q -p velodrome-cli -- convert "$tmp/batch/a.json" "$tmp/batch/a.vbt" >/dev/null
cargo run --release -q -p velodrome-cli -- check-batch "$tmp/batch" --jobs=4 \
    --backend=velodrome-hybrid --report="$tmp/batch/report.jsonl" \
    --metrics-out="$tmp/batch/metrics.jsonl" >/dev/null
if [[ "$(wc -l < "$tmp/batch/report.jsonl")" -ne 4 ]]; then
    echo "batch smoke: expected 4 JSONL lines (3 traces + summary)" >&2
    cat "$tmp/batch/report.jsonl" >&2
    exit 1
fi
for field in '"path"' '"status":"ok"' '"warnings"' '"summary"' '"events_per_sec"'; do
    if ! grep -q "$field" "$tmp/batch/report.jsonl"; then
        echo "batch smoke: JSONL report is missing $field" >&2
        cat "$tmp/batch/report.jsonl" >&2
        exit 1
    fi
done
cargo run --release -q -p velodrome-cli -- metrics-verify "$tmp/batch/metrics.jsonl" \
    --require=batch.traces_checked,batch.traces_failed,batch.traces_quarantined,batch.events_total,batch.events_per_sec,batch.warnings_total,batch.jobs \
    >/dev/null

echo "==> cross-backend differential suite + conformance corpus (fixed seeds)"
cargo test -q -p velodrome-integration --test atomicity_differential >/dev/null
cargo test -q -p velodrome-integration --test corpus_conformance >/dev/null
cargo test -q -p velodrome-integration --test backend_registry >/dev/null

echo "==> BENCH_hotpath.json carries the documented fields"
if [[ -f BENCH_hotpath.json ]]; then
    for field in events millis ops_per_sec edges_added edges_elided epoch_hits \
                 warnings cycles_detected edges_added_reduction_pct outputs_identical \
                 graph_ops graph_ops_velodrome graph_ops_hybrid graph_ops_reduction_pct \
                 hybrid_escalations hybrid_outputs_identical screen_epoch_hits; do
        if ! grep -q "\"$field\"" BENCH_hotpath.json; then
            echo "BENCH_hotpath.json is missing documented field: $field" >&2
            exit 1
        fi
    done
else
    echo "    (no BENCH_hotpath.json checked in; run with --with-bench to generate)"
fi

echo "==> BENCH_batch.json carries the documented fields"
if [[ -f BENCH_batch.json ]]; then
    for field in corpus_traces corpus_events seed jobs backend json_bytes vbt_bytes \
                 json_serial_millis json_serial_events_per_sec vbt_parallel_millis \
                 vbt_parallel_events_per_sec speedup outputs_identical; do
        if ! grep -q "\"$field\"" BENCH_batch.json; then
            echo "BENCH_batch.json is missing documented field: $field" >&2
            exit 1
        fi
    done
    if ! grep -q '"outputs_identical": true' BENCH_batch.json; then
        echo "BENCH_batch.json: parallel and serial outputs were not identical" >&2
        exit 1
    fi
else
    echo "    (no BENCH_batch.json checked in; run with --with-bench to generate)"
fi

if [[ "${1:-}" == "--with-bench" ]]; then
    echo "==> hotpath benchmark (asserts output identity + elision floor)"
    cargo run --release -p velodrome-bench --bin hotpath >/dev/null
    echo "==> batch benchmark (asserts output identity, rewrites BENCH_batch.json)"
    cargo run --release -p velodrome-bench --bin batch >/dev/null
fi

echo "==> CI gate passed"
