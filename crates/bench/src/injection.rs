//! The Section 6 defect-injection study: systematically remove each
//! contended `synchronized` statement and measure how often a single
//! Velodrome run detects the resulting atomicity defect, with and without
//! Atomizer-guided adversarial scheduling.

use crate::backend::{run, Backend};
use crate::report;
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use velodrome_events::Trace;
use velodrome_sim::ir::Stmt;
use velodrome_sim::{mutate, run_program, Program};
use velodrome_workloads::adversarial::adversarial_scheduler;
use velodrome_workloads::Workload;

/// Results of the injection study on one workload.
#[derive(Debug, Serialize)]
pub struct InjectionResult {
    /// Benchmark name.
    pub name: String,
    /// Contended sync sites mutated.
    pub sites: usize,
    /// Mutant runs (sites × seeds) per configuration.
    pub runs: usize,
    /// Detections in single runs under plain random scheduling.
    pub plain_hits: usize,
    /// Detections in single runs under adversarial scheduling.
    pub adversarial_hits: usize,
}

impl InjectionResult {
    /// Plain detection rate in `[0, 1]`.
    pub fn plain_rate(&self) -> f64 {
        self.plain_hits as f64 / self.runs.max(1) as f64
    }

    /// Adversarial detection rate in `[0, 1]`.
    pub fn adversarial_rate(&self) -> f64 {
        self.adversarial_hits as f64 / self.runs.max(1) as f64
    }
}

/// Collects, per variable, the set of threads that access it (setup and
/// teardown count as the main thread).
fn var_threads(program: &Program) -> HashMap<u32, HashSet<usize>> {
    fn visit(stmts: &[Stmt], thread: usize, out: &mut HashMap<u32, HashSet<usize>>) {
        for s in stmts {
            match s {
                Stmt::Read(x) | Stmt::Write(x) => {
                    out.entry(x.raw()).or_default().insert(thread);
                }
                Stmt::Sync(_, body) | Stmt::Atomic(_, body) | Stmt::Loop(_, body) => {
                    visit(body, thread, out)
                }
                Stmt::Compute(_) => {}
            }
        }
    }
    let mut out = HashMap::new();
    visit(&program.setup, 0, &mut out);
    for (i, t) in program.workers().enumerate() {
        visit(&t.stmts, i + 1, &mut out);
    }
    visit(&program.teardown, 0, &mut out);
    out
}

/// Does the `site`-th sync statement protect any variable accessed by more
/// than one thread? (The paper mutates only "synchronized statements that
/// induced contention between threads".)
fn site_is_contended(program: &Program, site: usize) -> bool {
    // Find the site's body variables by diffing against the mutant.
    let Some(mutant) = mutate::elide_sync(program, site) else {
        return false;
    };
    let threads = var_threads(program);
    // Collect vars under the site by walking both programs in parallel is
    // complex; instead, over-approximate: collect the vars of the site body
    // via a dedicated traversal.
    let vars = site_vars(program, site);
    let _ = mutant;
    vars.iter()
        .any(|v| threads.get(v).is_some_and(|t| t.len() > 1))
}

/// The variables accessed (at any depth) inside the `site`-th sync body.
fn site_vars(program: &Program, site: usize) -> HashSet<u32> {
    fn collect_vars(stmts: &[Stmt], out: &mut HashSet<u32>) {
        for s in stmts {
            match s {
                Stmt::Read(x) | Stmt::Write(x) => {
                    out.insert(x.raw());
                }
                Stmt::Sync(_, body) | Stmt::Atomic(_, body) | Stmt::Loop(_, body) => {
                    collect_vars(body, out)
                }
                Stmt::Compute(_) => {}
            }
        }
    }
    fn visit(stmts: &[Stmt], counter: &mut usize, site: usize, out: &mut HashSet<u32>) {
        for s in stmts {
            match s {
                Stmt::Sync(_, body) => {
                    if *counter == site {
                        collect_vars(body, out);
                    }
                    *counter += 1;
                    visit(body, counter, site, out);
                }
                Stmt::Atomic(_, body) | Stmt::Loop(_, body) => visit(body, counter, site, out),
                _ => {}
            }
        }
    }
    let mut out = HashSet::new();
    let mut counter = 0;
    visit(&program.setup, &mut counter, site, &mut out);
    for t in program.workers() {
        visit(&t.stmts, &mut counter, site, &mut out);
    }
    visit(&program.teardown, &mut counter, site, &mut out);
    out
}

/// The label of the innermost atomic block enclosing the `site`-th sync
/// statement, if any (site numbering as in [`mutate::sync_sites`]).
fn site_enclosing_label(program: &Program, site: usize) -> Option<velodrome_events::Label> {
    fn visit(
        stmts: &[Stmt],
        counter: &mut usize,
        site: usize,
        enclosing: Option<velodrome_events::Label>,
    ) -> Option<Option<velodrome_events::Label>> {
        for s in stmts {
            match s {
                Stmt::Sync(_, body) => {
                    if *counter == site {
                        return Some(enclosing);
                    }
                    *counter += 1;
                    if let Some(found) = visit(body, counter, site, enclosing) {
                        return Some(found);
                    }
                }
                Stmt::Atomic(l, body) => {
                    if let Some(found) = visit(body, counter, site, Some(*l)) {
                        return Some(found);
                    }
                }
                Stmt::Loop(_, body) => {
                    if let Some(found) = visit(body, counter, site, enclosing) {
                        return Some(found);
                    }
                }
                _ => {}
            }
        }
        None
    }
    let mut counter = 0;
    if let Some(found) = visit(&program.setup, &mut counter, site, None) {
        return found;
    }
    for t in program.workers() {
        if let Some(found) = visit(&t.stmts, &mut counter, site, None) {
            return found;
        }
    }
    visit(&program.teardown, &mut counter, site, None).flatten()
}

/// A site is eligible for the injection study when it is contended *and*
/// sits inside an atomic method that is currently correct — eliding it
/// injects a fresh atomicity defect, as in the paper's methodology.
fn site_is_eligible(workload: &Workload, site: usize) -> bool {
    if !site_is_contended(&workload.program, site) {
        return false;
    }
    match site_enclosing_label(&workload.program, site) {
        Some(l) => {
            let name = workload.program.names.label(l);
            !workload.is_non_atomic(&name)
        }
        None => false, // outside atomic blocks: a race, not an atomicity defect
    }
}

fn velodrome_labels(trace: &Trace) -> HashSet<String> {
    run(Backend::Velodrome, trace)
        .warnings
        .into_iter()
        .filter_map(|w| w.label.map(|l| trace.names().label(l)))
        .collect()
}

/// A scheduler factory: one fresh scheduler per seeded run.
pub type SchedulerFactory<'a> = &'a dyn Fn(u64) -> Box<dyn velodrome_sim::Scheduler>;

/// The baseline label set: every method Velodrome reports on the
/// *unmutated* program across all seeds under the given schedulers.
pub fn baseline_labels(
    workload: &Workload,
    seeds: u64,
    factories: &[SchedulerFactory<'_>],
) -> HashSet<String> {
    let mut baseline = HashSet::new();
    for seed in 0..seeds {
        for make in factories {
            let result = run_program(&workload.program, make(seed));
            if !result.deadlocked {
                baseline.extend(velodrome_labels(&result.trace));
            }
        }
    }
    baseline
}

/// The eligible (contended, currently-correct) sync sites of a workload.
pub fn eligible_sites(workload: &Workload) -> Vec<usize> {
    (0..mutate::sync_sites(&workload.program))
        .filter(|&s| site_is_eligible(workload, s))
        .collect()
}

/// Single-run detection rate of injected defects under a scheduler family:
/// for every eligible site, elide it and run once per seed; a run detects
/// the defect when Velodrome reports a method outside `baseline`.
/// Returns `(hits, runs)`.
pub fn detection_rate(
    workload: &Workload,
    seeds: u64,
    baseline: &HashSet<String>,
    make: SchedulerFactory<'_>,
) -> (usize, usize) {
    let mut hits = 0;
    let mut runs = 0;
    for site in eligible_sites(workload) {
        let mutant = mutate::elide_sync(&workload.program, site).expect("site in range");
        for seed in 0..seeds {
            runs += 1;
            let result = run_program(&mutant, make(seed));
            if !result.deadlocked
                && velodrome_labels(&result.trace)
                    .difference(baseline)
                    .next()
                    .is_some()
            {
                hits += 1;
            }
        }
    }
    (hits, runs)
}

/// Runs the injection study on one workload: every contended sync site is
/// elided in turn; each mutant runs once per seed under plain random and
/// under adversarial scheduling. A run *detects* the defect when Velodrome
/// reports a method that no baseline (unmutated) run ever reported.
pub fn measure(workload: &Workload, seeds: u64, pause_steps: u64) -> InjectionResult {
    let plain: SchedulerFactory<'_> = &|seed| Box::new(velodrome_sim::RandomScheduler::new(seed));
    let adv: SchedulerFactory<'_> = &move |seed| Box::new(adversarial_scheduler(seed, pause_steps));
    let baseline = baseline_labels(workload, seeds, &[plain, adv]);
    let (plain_hits, runs) = detection_rate(workload, seeds, &baseline, plain);
    let (adversarial_hits, _) = detection_rate(workload, seeds, &baseline, adv);
    InjectionResult {
        name: workload.name.to_string(),
        sites: eligible_sites(workload).len(),
        runs,
        plain_hits,
        adversarial_hits,
    }
}

/// Runs the study on the paper's two subjects (elevator and colt).
pub fn run_injection(scale: u32, seeds: u64, pause_steps: u64) -> Vec<InjectionResult> {
    ["elevator", "colt"]
        .iter()
        .map(|name| {
            let w = velodrome_workloads::build(name, scale).expect("known workload");
            measure(&w, seeds, pause_steps)
        })
        .collect()
}

/// Renders the study results.
pub fn render(results: &[InjectionResult]) -> String {
    let header = [
        "program",
        "contended sites",
        "runs",
        "plain rate",
        "adversarial rate",
    ];
    let body: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.sites.to_string(),
                r.runs.to_string(),
                format!("{:.0}%", 100.0 * r.plain_rate()),
                format!("{:.0}%", 100.0 * r.adversarial_rate()),
            ]
        })
        .collect();
    report::table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_analysis_finds_shared_sites() {
        let w = velodrome_workloads::build("multiset", 1).unwrap();
        let total = mutate::sync_sites(&w.program);
        let contended = (0..total)
            .filter(|&s| site_is_contended(&w.program, s))
            .count();
        assert!(contended > 0);
        assert!(contended <= total);
    }

    #[test]
    fn site_vars_sees_through_nesting() {
        use velodrome_sim::{ProgramBuilder, Stmt};
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        b.worker(vec![Stmt::Sync(
            m,
            vec![Stmt::Loop(2, vec![Stmt::Write(x)])],
        )]);
        let p = b.finish();
        let vars = site_vars(&p, 0);
        assert!(vars.contains(&x.raw()));
    }

    #[test]
    fn eligible_sites_exclude_already_broken_methods() {
        let w = velodrome_workloads::build("elevator", 1).unwrap();
        let total = mutate::sync_sites(&w.program);
        for site in 0..total {
            if site_is_eligible(&w, site) {
                let l = site_enclosing_label(&w.program, site).unwrap();
                let name = w.program.names.label(l);
                assert!(!w.is_non_atomic(&name), "{name} is already non-atomic");
            }
        }
        assert!(
            (0..total).any(|s| site_is_eligible(&w, s)),
            "some sites eligible"
        );
    }

    #[test]
    fn adversarial_scheduling_improves_detection_on_elevator() {
        let w = velodrome_workloads::build("elevator", 1).unwrap();
        let result = measure(&w, 3, 40);
        assert!(result.sites > 0, "elevator has contended sync sites");
        assert!(
            result.adversarial_hits >= result.plain_hits,
            "adversarial {} vs plain {}",
            result.adversarial_hits,
            result.plain_hits
        );
    }
}
