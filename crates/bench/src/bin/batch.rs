//! Batch-throughput benchmark: JSON-serial vs. VBT-parallel checking.
//!
//! Builds a twin corpus (every trace as both `.json` and `.vbt`), checks it
//! once through the old slurp-and-parse serial pipeline and once through
//! the `check-batch` worker pool over the VBT twins, asserts the per-trace
//! warning fingerprints byte-identical, and writes `BENCH_batch.json`.
//!
//! Flags: `--traces=N` (corpus size, default 48), `--scale=K` (fan-in
//! trace size knob, default 24), `--seed=S` (default 1), `--jobs=N`
//! (parallel-leg pool size, default 4).

use velodrome_bench::arg_u64;
use velodrome_bench::batch::{build_corpus, run_json_serial, run_vbt_parallel, BatchBenchReport};

fn main() {
    let traces = arg_u64("traces", 48);
    let scale = arg_u64("scale", 24);
    let seed = arg_u64("seed", 1);
    let jobs = arg_u64("jobs", 4).max(1);
    let backend = "velodrome-hybrid";

    let dir = std::env::temp_dir().join(format!("velodrome-bench-batch-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus = build_corpus(&dir, traces, scale, seed).expect("corpus builds");
    eprintln!(
        "corpus: {} traces, {} events, {} JSON bytes vs {} VBT bytes",
        corpus.entries.len(),
        corpus.events(),
        corpus.json_bytes,
        corpus.vbt_bytes
    );

    let serial = run_json_serial(&corpus, backend);
    eprintln!("json-serial:  {} ms", serial.millis);
    let parallel = run_vbt_parallel(&corpus, backend, jobs as usize);
    eprintln!("vbt-parallel: {} ms ({jobs} jobs)", parallel.millis);

    let outputs_identical = serial.fingerprints == parallel.fingerprints;
    assert!(
        outputs_identical,
        "parallel verdicts diverged from the serial baseline"
    );

    let events = corpus.events();
    let serial_eps = serial.events_per_sec(events);
    let parallel_eps = parallel.events_per_sec(events);
    let report = BatchBenchReport {
        corpus_traces: traces,
        corpus_events: events,
        seed,
        jobs,
        backend: backend.to_owned(),
        json_bytes: corpus.json_bytes,
        vbt_bytes: corpus.vbt_bytes,
        json_serial_millis: serial.millis,
        json_serial_events_per_sec: serial_eps,
        vbt_parallel_millis: parallel.millis,
        vbt_parallel_events_per_sec: parallel_eps,
        speedup: parallel_eps as f64 / serial_eps.max(1) as f64,
        outputs_identical,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_batch.json", &json).expect("BENCH_batch.json writes");
    eprintln!("wrote BENCH_batch.json (speedup {:.2}x)", report.speedup);
    let _ = std::fs::remove_dir_all(&dir);
}
