//! Regenerates Table 2: warnings under the all-methods-atomic assumption.
//!
//! Usage: `cargo run --release -p velodrome-bench --bin table2 [--scale=2] [--runs=5]`

use velodrome_bench::{arg_u64, table2};

fn main() {
    let scale = arg_u64("scale", 2) as u32;
    let runs = arg_u64("runs", 5);
    eprintln!("Table 2: scale={scale}, {runs} runs per benchmark, all methods assumed atomic");
    let rows = table2::run_table2(scale, runs);
    println!("{}", table2::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("rows serialize")
    );
}
