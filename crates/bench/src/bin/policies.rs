//! Compares adversarial pausing policies (Section 5: "We are exploring a
//! number of other scheduling policies, such as pausing writes but not
//! reads, allowing some threads to never pause, and so on").
//!
//! Usage: `cargo run --release -p velodrome-bench --bin policies [--scale=1] [--seeds=10] [--pause=400]`

use velodrome_atomizer::AdvisorConfig;
use velodrome_bench::injection::{baseline_labels, detection_rate, SchedulerFactory};
use velodrome_bench::{arg_u64, report};
use velodrome_events::ThreadId;
use velodrome_sim::{RandomScheduler, Scheduler};
use velodrome_workloads::adversarial::{
    adversarial_scheduler, adversarial_scheduler_exempting, adversarial_scheduler_with,
};

fn main() {
    let scale = arg_u64("scale", 1) as u32;
    let seeds = arg_u64("seeds", 10);
    let pause = arg_u64("pause", 400);
    eprintln!("Pausing-policy comparison on elevator: scale={scale}, {seeds} seeds, pause={pause}");

    let w = velodrome_workloads::build("elevator", scale).expect("elevator model");

    let plain: SchedulerFactory<'_> = &|seed| Box::new(RandomScheduler::new(seed));
    let writes: SchedulerFactory<'_> =
        &move |seed| Box::new(adversarial_scheduler(seed, pause)) as Box<dyn Scheduler>;
    let writes_reads: SchedulerFactory<'_> = &move |seed| {
        Box::new(adversarial_scheduler_with(
            seed,
            pause,
            AdvisorConfig {
                delay_rmw_writes: true,
                delay_racy_reads: true,
            },
        ))
    };
    let exempt: SchedulerFactory<'_> = &move |seed| {
        Box::new(adversarial_scheduler_exempting(
            seed,
            pause,
            [ThreadId::new(1)],
        ))
    };

    let policies: [(&str, SchedulerFactory<'_>); 4] = [
        ("no pausing (plain random)", plain),
        ("pause RMW writes (default)", writes),
        ("pause writes + racy reads", writes_reads),
        ("pause writes, worker-1 exempt", exempt),
    ];

    let baseline = baseline_labels(&w, seeds, &[plain, writes, writes_reads, exempt]);
    let mut rows = Vec::new();
    for (name, make) in policies {
        let (hits, runs) = detection_rate(&w, seeds, &baseline, make);
        rows.push(vec![
            name.to_string(),
            format!("{hits}/{runs}"),
            format!("{:.0}%", 100.0 * hits as f64 / runs.max(1) as f64),
        ]);
    }
    println!(
        "{}",
        report::table(&["policy", "detections", "rate"], &rows)
    );
}
