//! Chaos smoke test: replays a fixed-seed workload trace under the
//! built-in fault-plan set and asserts the fault-tolerance contract —
//! the host run completes under every fault, pre-degradation verdicts are
//! byte-identical to the clean run, and telemetry pinpoints the exact
//! degradation event. Exits nonzero on any violation.
//!
//! Usage:
//! `cargo run --release -p velodrome-bench --bin chaos [--scale=2] [--seed=1]`

use velodrome_bench::arg_u64;
use velodrome_bench::chaos::{chaos_trace, run_builtin};
use velodrome_monitor::DegradationLevel;

fn main() {
    let scale = arg_u64("scale", 2) as u32;
    let seed = arg_u64("seed", 1);
    let trace = chaos_trace("multiset", scale, seed);
    println!(
        "chaos: multiset scale={scale} seed={seed} — {} events",
        trace.len()
    );
    println!(
        "{:<28} {:>14} {:>12} {:>9} {:>10} {:>6}",
        "plan", "ladder", "degraded@", "verdicts", "delivered", "ok"
    );

    // Injected tool panics are caught by the harness; keep the default
    // panic hook from spamming stderr with expected backtraces.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcomes = run_builtin(&trace);
    std::panic::set_hook(hook);
    let mut failures = 0;
    for o in &outcomes {
        println!(
            "{:<28} {:>14} {:>12} {:>9} {:>10} {:>6}",
            o.plan.to_string(),
            o.ladder.to_string(),
            o.degraded_at
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".into()),
            o.verdicts,
            o.events_delivered,
            if o.ok() { "ok" } else { "FAIL" }
        );
        if !o.ok() {
            failures += 1;
            if let Some((clean, faulted)) = &o.divergence {
                eprintln!(
                    "  pre-degradation verdict divergence:\n    clean:   {clean:?}\n    faulted: {faulted:?}"
                );
            }
        }
    }

    // The clean control must stay at full fidelity, and at least one fault
    // must actually exercise the ladder — otherwise the harness is vacuous.
    let clean_full = outcomes
        .first()
        .is_some_and(|o| o.ladder == DegradationLevel::Full && o.degraded_at.is_none());
    let some_degraded = outcomes.iter().any(|o| o.degraded_at.is_some());
    if !clean_full {
        eprintln!("chaos: clean control run degraded");
        failures += 1;
    }
    if !some_degraded {
        eprintln!("chaos: no plan exercised the degradation ladder");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("chaos: {failures} contract violations");
        std::process::exit(1);
    }
    println!("chaos: all {} plans upheld the contract", outcomes.len());
}
