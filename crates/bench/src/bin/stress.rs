//! Scale validation: the paper stresses that "a trace may contain many
//! millions of transactions, making storage of the entire happens-before
//! graph infeasible" — garbage collection and merging make the analysis
//! run in effectively constant memory. This binary generates a
//! multi-million-event trace and reports throughput and node statistics.
//!
//! Usage: `cargo run --release -p velodrome-bench --bin stress [--scale=24]`

use std::time::Instant;
use velodrome::{Velodrome, VelodromeConfig};
use velodrome_bench::{arg_u64, report};
use velodrome_monitor::Tool;

fn main() {
    let scale = arg_u64("scale", 24) as u32;
    eprintln!("generating the multiset model at scale {scale}...");
    let w = velodrome_workloads::build("multiset", scale).expect("workload");
    let gen_start = Instant::now();
    let trace = w.run_round_robin();
    eprintln!(
        "generated {} events in {:.2?}",
        report::count(trace.len() as u64),
        gen_start.elapsed()
    );

    let mut engine = Velodrome::with_config(VelodromeConfig::default());
    let start = Instant::now();
    for (i, op) in trace.iter() {
        engine.op(i, op);
    }
    let elapsed = start.elapsed();
    let stats = engine.stats();
    let meps = trace.len() as f64 / elapsed.as_secs_f64() / 1e6;
    println!(
        "analyzed {} events in {:.2?} ({meps:.1} M events/s)",
        report::count(trace.len() as u64),
        elapsed
    );
    println!("{stats}");
    assert!(stats.max_alive < 64, "memory must stay bounded");
    println!(
        "peak live transaction nodes: {} (of {} allocated) — constant memory",
        stats.max_alive, stats.nodes_allocated
    );
}
