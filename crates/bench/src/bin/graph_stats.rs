//! Regenerates the node-statistics columns of Table 1 in isolation
//! (Allocated / Max Alive, Without Merge vs With Merge).
//!
//! Usage: `cargo run --release -p velodrome-bench --bin graph_stats [--scale=8]`

use velodrome_bench::arg_u64;
use velodrome_bench::backend::{run_with_telemetry, Backend};
use velodrome_bench::report;
use velodrome_bench::table1::exclusion_spec;
use velodrome_telemetry::{names, Snapshot, Telemetry};

/// Runs one Velodrome variant and returns the final registry snapshot; the
/// node-statistics columns are read back from the `arena.*` gauges rather
/// than the stats struct.
fn snapshot_run(
    backend: Backend,
    trace: &velodrome_events::Trace,
    spec: velodrome_monitor::AtomicitySpec,
) -> Snapshot {
    let telemetry = Telemetry::registry();
    run_with_telemetry(backend, trace, Some(spec), &telemetry);
    telemetry
        .snapshot(0, trace.len() as u64)
        .expect("telemetry registry enabled")
}

fn main() {
    let scale = arg_u64("scale", 8) as u32;
    eprintln!("Graph statistics at scale={scale}");
    let mut rows = Vec::new();
    for w in velodrome_workloads::all(scale) {
        let trace = w.run_round_robin();
        let spec = exclusion_spec(&w, &trace);
        let without = snapshot_run(Backend::VelodromeNoMerge, &trace, spec.clone());
        let with = snapshot_run(Backend::Velodrome, &trace, spec);
        let gauge = |snap: &Snapshot, name: &str| snap.scalar(name).unwrap_or(0);
        rows.push(vec![
            w.name.to_string(),
            report::count(trace.len() as u64),
            report::count(gauge(&without, names::ARENA_ALLOCATED)),
            report::count(gauge(&without, names::ARENA_MAX_ALIVE)),
            report::count(gauge(&with, names::ARENA_ALLOCATED)),
            report::count(gauge(&with, names::ARENA_MAX_ALIVE)),
            report::count(gauge(&with, names::ARENA_COLLECTED)),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "program",
                "events",
                "alloc w/o merge",
                "alive",
                "alloc w/ merge",
                "alive",
                "collected"
            ],
            &rows
        )
    );
}
