//! Regenerates the node-statistics columns of Table 1 in isolation
//! (Allocated / Max Alive, Without Merge vs With Merge).
//!
//! Usage: `cargo run --release -p velodrome-bench --bin graph_stats [--scale=8]`

use velodrome_bench::arg_u64;
use velodrome_bench::backend::{run_with_spec, Backend};
use velodrome_bench::report;
use velodrome_bench::table1::exclusion_spec;

fn main() {
    let scale = arg_u64("scale", 8) as u32;
    eprintln!("Graph statistics at scale={scale}");
    let mut rows = Vec::new();
    for w in velodrome_workloads::all(scale) {
        let trace = w.run_round_robin();
        let spec = exclusion_spec(&w, &trace);
        let without = run_with_spec(Backend::VelodromeNoMerge, &trace, Some(spec.clone()))
            .stats
            .expect("stats");
        let with = run_with_spec(Backend::Velodrome, &trace, Some(spec))
            .stats
            .expect("stats");
        rows.push(vec![
            w.name.to_string(),
            report::count(trace.len() as u64),
            report::count(without.nodes_allocated),
            report::count(without.max_alive),
            report::count(with.nodes_allocated),
            report::count(with.max_alive),
            report::count(with.collected),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "program",
                "events",
                "alloc w/o merge",
                "alive",
                "alloc w/ merge",
                "alive",
                "collected"
            ],
            &rows
        )
    );
}
