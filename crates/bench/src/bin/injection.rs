//! Regenerates the Section 6 defect-injection study (elevator and colt).
//!
//! Usage: `cargo run --release -p velodrome-bench --bin injection [--scale=1] [--seeds=10] [--pause=40]`

use velodrome_bench::{arg_u64, injection};

fn main() {
    let scale = arg_u64("scale", 2) as u32;
    let seeds = arg_u64("seeds", 10);
    let pause = arg_u64("pause", 400);
    eprintln!("Injection study: scale={scale}, {seeds} seeds per mutant, pause={pause} steps");
    let results = injection::run_injection(scale, seeds, pause);
    println!("{}", injection::render(&results));
    println!(
        "{}",
        serde_json::to_string_pretty(&results).expect("results serialize")
    );
}
