//! Evidence for Section 4.1's claim that garbage collection is "extremely
//! effective; we typically have at most a few dozen live nodes at any
//! time": samples the live-node count as the analysis consumes a trace.
//!
//! Usage: `cargo run --release -p velodrome-bench --bin gc_timeline [--scale=8] [--workload-index=2]`

use velodrome::{Velodrome, VelodromeConfig};
use velodrome_bench::{arg_u64, report};
use velodrome_monitor::Tool;
use velodrome_telemetry::{names, Telemetry};

fn main() {
    let scale = arg_u64("scale", 8) as u32;
    let mut rows = Vec::new();
    for w in velodrome_workloads::all(scale) {
        let trace = w.run_round_robin();
        let telemetry = Telemetry::registry();
        let alive_hist = telemetry.histogram(names::ARENA_ALIVE_SAMPLE);
        let mut engine = Velodrome::with_config(VelodromeConfig {
            telemetry: telemetry.clone(),
            ..VelodromeConfig::default()
        });
        let sample_every = (trace.len() / 10).max(1);
        let mut samples: Vec<u64> = Vec::new();
        for (i, op) in trace.iter() {
            engine.op(i, op);
            if i % sample_every == 0 {
                let alive = engine.alive_nodes() as u64;
                alive_hist.record(alive);
                samples.push(alive);
            }
        }
        engine.publish_telemetry();
        let snap = telemetry
            .snapshot(0, trace.len() as u64)
            .expect("telemetry registry enabled");
        rows.push(vec![
            w.name.to_string(),
            report::count(trace.len() as u64),
            report::count(snap.scalar(names::ARENA_ALLOCATED).unwrap_or(0)),
            report::count(snap.scalar(names::ARENA_MAX_ALIVE).unwrap_or(0)),
            samples
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "program",
                "events",
                "allocated",
                "max alive",
                "live nodes at 0%,10%,...,90%"
            ],
            &rows
        )
    );
}
