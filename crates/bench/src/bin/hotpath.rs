//! Hot-path benchmark: redundant-edge elision + epoch cache vs. baseline,
//! plus the two-tier hybrid checker vs. the always-on graph engine.
//!
//! Runs the optimized engine (`elide_redundant_edges: true`, the default)
//! and the unoptimized baseline (elision and epoch cache off) over the same
//! traces, checks the outputs are byte-identical, and writes
//! `BENCH_hotpath.json` (throughput, edges added vs. elided, epoch hits) so
//! the speedup can be charted across PRs. Each workload is also run through
//! the `velodrome-hybrid` backend (vector-clock screen online, graph engine
//! only on escalation); the report records how many graph node/edge
//! operations the screen avoided and asserts the hybrid outputs stay
//! byte-identical to the pure engine.
//!
//! Workloads:
//!
//! * `stress` — an open-transaction fan-in pattern: waves of concurrent
//!   transactions where each reads every variable written earlier in the
//!   wave, so most orderings arrive already implied through the chain.
//!   This is the redundant-edge worst case the elision gate targets, and
//!   it is serializable, so the hybrid screen never escalates on it.
//! * `multiset` — the paper's multiset model under round-robin (the
//!   classic `stress` binary workload).
//! * `adversarial` — the multiset model under the Atomizer-guided
//!   adversarial scheduler (Section 5).
//!
//! Usage: `cargo run --release -p velodrome-bench --bin hotpath
//! [--scale=8] [--waves=200] [--threads=8] [--rounds=4]`

use serde::Serialize;
use std::time::Instant;
use velodrome::{HybridConfig, HybridVelodrome, Velodrome, VelodromeConfig};
use velodrome_bench::hotpath::fanin_stress_trace;
use velodrome_bench::{arg_u64, report};
use velodrome_events::Trace;
use velodrome_monitor::Tool;
use velodrome_telemetry::{names, Telemetry};

/// One engine run over a trace.
#[derive(Debug, Serialize)]
struct EngineRun {
    events: u64,
    millis: u64,
    ops_per_sec: u64,
    edges_added: u64,
    edges_elided: u64,
    epoch_hits: u64,
    warnings: usize,
    cycles_detected: u64,
    /// Graph node allocations + edge insertions + elision checks.
    graph_ops: u64,
}

/// One hybrid-checker run over a trace.
#[derive(Debug, Serialize)]
struct HybridRun {
    events: u64,
    millis: u64,
    ops_per_sec: u64,
    /// Graph operations actually performed (0 while the screen holds).
    graph_ops: u64,
    /// Times the screen escalated to the graph engine (0 or 1 per run).
    escalations: u64,
    /// AeroDrome epoch fast-path hits inside the screen.
    screen_epoch_hits: u64,
    warnings: usize,
}

/// Optimized vs. baseline vs. hybrid over one workload.
#[derive(Debug, Serialize)]
struct WorkloadResult {
    name: String,
    optimized: EngineRun,
    baseline: EngineRun,
    hybrid: HybridRun,
    /// `1 - optimized.edges_added / baseline.edges_added`, in percent.
    edges_added_reduction_pct: f64,
    /// Optimized and baseline warnings/reports are byte-identical.
    outputs_identical: bool,
    /// Graph operations of the always-on optimized engine.
    graph_ops_velodrome: u64,
    /// Graph operations the hybrid checker actually performed.
    graph_ops_hybrid: u64,
    /// `1 - graph_ops_hybrid / graph_ops_velodrome`, in percent.
    graph_ops_reduction_pct: f64,
    /// Screen-to-engine escalations in the hybrid run.
    hybrid_escalations: u64,
    /// Hybrid warnings/reports are byte-identical to the pure engine's.
    hybrid_outputs_identical: bool,
}

fn run_engine(trace: &Trace, elide: bool) -> (EngineRun, String) {
    // The timed run keeps telemetry fully disabled — an enabled registry
    // arms the per-op phase timers, whose clock reads would taint the
    // throughput comparison across PRs. The run's numbers are still read
    // back through registry gauges: `publish_telemetry_to` mirrors the
    // stats surface into a registry attached only after the clock stops.
    let cfg = VelodromeConfig {
        elide_redundant_edges: elide,
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    };
    let mut engine = Velodrome::with_config(cfg);
    let start = Instant::now();
    for (i, op) in trace.iter() {
        engine.op(i, op);
    }
    let elapsed = start.elapsed();
    let warnings = engine.take_warnings();
    let graph_ops = engine.stats().graph_ops();
    let telemetry = Telemetry::registry();
    engine.publish_telemetry_to(&telemetry);
    let snap = telemetry
        .snapshot(0, trace.len() as u64)
        .expect("telemetry registry enabled");
    let gauge = |name: &str| snap.scalar(name).unwrap_or(0);
    let fingerprint = format!(
        "{}|{}",
        serde_json::to_string(&warnings).expect("warnings serialize"),
        serde_json::to_string(engine.reports()).expect("reports serialize"),
    );
    let run = EngineRun {
        events: trace.len() as u64,
        millis: elapsed.as_millis() as u64,
        ops_per_sec: (trace.len() as f64 / elapsed.as_secs_f64()) as u64,
        edges_added: gauge(names::ARENA_EDGES_ADDED),
        edges_elided: gauge(names::ARENA_EDGES_ELIDED),
        epoch_hits: gauge(names::ENGINE_EPOCH_HITS),
        warnings: warnings.len(),
        cycles_detected: gauge(names::ENGINE_CYCLES_DETECTED),
        graph_ops,
    };
    (run, fingerprint)
}

fn run_hybrid(trace: &Trace) -> (HybridRun, String) {
    let cfg = HybridConfig {
        engine: VelodromeConfig {
            names: trace.names().clone(),
            ..VelodromeConfig::default()
        },
        ..HybridConfig::default()
    };
    let mut checker = HybridVelodrome::with_config(cfg);
    let start = Instant::now();
    for (i, op) in trace.iter() {
        checker.op(i, op);
    }
    let elapsed = start.elapsed();
    let warnings = checker.take_warnings();
    let stats = checker.stats();
    let fingerprint = format!(
        "{}|{}",
        serde_json::to_string(&warnings).expect("warnings serialize"),
        serde_json::to_string(checker.reports()).expect("reports serialize"),
    );
    let run = HybridRun {
        events: trace.len() as u64,
        millis: elapsed.as_millis() as u64,
        ops_per_sec: (trace.len() as f64 / elapsed.as_secs_f64()) as u64,
        graph_ops: stats.graph_ops(),
        escalations: stats.escalations,
        screen_epoch_hits: stats.screen.epoch_hits,
        warnings: warnings.len(),
    };
    (run, fingerprint)
}

fn measure(name: &str, trace: &Trace) -> WorkloadResult {
    let (optimized, fp_opt) = run_engine(trace, true);
    let (baseline, fp_base) = run_engine(trace, false);
    let (hybrid, fp_hybrid) = run_hybrid(trace);
    let reduction = if baseline.edges_added > 0 {
        100.0 * (1.0 - optimized.edges_added as f64 / baseline.edges_added as f64)
    } else {
        0.0
    };
    let graph_ops_reduction_pct = if optimized.graph_ops > 0 {
        100.0 * (1.0 - hybrid.graph_ops as f64 / optimized.graph_ops as f64)
    } else {
        0.0
    };
    let identical = fp_opt == fp_base;
    let hybrid_identical = fp_hybrid == fp_opt;
    eprintln!(
        "{name}: {} events, {} -> {} edges added ({reduction:.1}% fewer), \
         {} elided, {} epoch hits, {:.1}x throughput, identical={identical}",
        report::count(optimized.events),
        baseline.edges_added,
        optimized.edges_added,
        optimized.edges_elided,
        optimized.epoch_hits,
        optimized.ops_per_sec as f64 / baseline.ops_per_sec.max(1) as f64,
    );
    eprintln!(
        "{name}: hybrid {} -> {} graph ops ({graph_ops_reduction_pct:.1}% fewer), \
         {} escalations, identical={hybrid_identical}",
        optimized.graph_ops, hybrid.graph_ops, hybrid.escalations,
    );
    WorkloadResult {
        name: name.to_owned(),
        graph_ops_velodrome: optimized.graph_ops,
        graph_ops_hybrid: hybrid.graph_ops,
        graph_ops_reduction_pct,
        hybrid_escalations: hybrid.escalations,
        hybrid_outputs_identical: hybrid_identical,
        optimized,
        baseline,
        hybrid,
        edges_added_reduction_pct: reduction,
        outputs_identical: identical,
    }
}

fn main() {
    let scale = arg_u64("scale", 16) as u32;
    let waves = arg_u64("waves", 2_000);
    let threads = arg_u64("threads", 8);
    let rounds = arg_u64("rounds", 8);

    eprintln!(
        "generating traces (scale={scale}, waves={waves}, threads={threads}, rounds={rounds})..."
    );
    let stress = fanin_stress_trace(waves, threads, rounds);
    let multiset = velodrome_workloads::build("multiset", scale).expect("workload");
    let multiset_trace = multiset.run_round_robin();
    let adversarial_trace = multiset.run_adversarial(1, 40);

    let results = vec![
        measure("stress", &stress),
        measure("multiset", &multiset_trace),
        measure("adversarial", &adversarial_trace),
    ];

    for r in &results {
        assert!(
            r.outputs_identical,
            "{}: optimized and baseline outputs diverge",
            r.name
        );
        assert!(
            r.hybrid_outputs_identical,
            "{}: hybrid and pure-engine outputs diverge",
            r.name
        );
    }
    let stress_result = &results[0];
    assert!(
        stress_result.edges_added_reduction_pct >= 30.0,
        "stress workload must elide >= 30% of edge insertions, got {:.1}%",
        stress_result.edges_added_reduction_pct
    );
    assert!(stress_result.optimized.edges_elided > 0);
    assert!(
        stress_result.graph_ops_velodrome >= 3 * stress_result.graph_ops_hybrid.max(1),
        "hybrid must cut graph operations at least 3x on the serializable \
         stress workload, got {} -> {}",
        stress_result.graph_ops_velodrome,
        stress_result.graph_ops_hybrid,
    );

    let json = serde_json::to_string_pretty(&results).expect("results serialize");
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("{json}");
    eprintln!("wrote BENCH_hotpath.json");
}
