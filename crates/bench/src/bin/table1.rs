//! Regenerates Table 1: backend overheads and node statistics.
//!
//! Usage: `cargo run --release -p velodrome-bench --bin table1 [--scale=8] [--repeats=3]`

use velodrome_bench::{arg_u64, table1};

fn main() {
    let scale = arg_u64("scale", 8) as u32;
    let repeats = arg_u64("repeats", 3) as u32;
    eprintln!("Table 1: scale={scale}, repeats={repeats} (methods known non-atomic excluded)");
    let rows = table1::run_table1(scale, repeats);
    println!("{}", table1::render(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("rows serialize")
    );
}
