//! Batch-throughput benchmark: JSON-serial vs. VBT-parallel checking.
//!
//! The `batch` binary builds a twin corpus — every generated trace written
//! once as pretty-agnostic JSON and once as the compact binary VBT format —
//! and then checks the whole corpus two ways:
//!
//! 1. **json-serial** — the pre-batch pipeline: slurp each `.json` file,
//!    parse it through the serde value tree ([`Trace::from_json`]), and
//!    analyze traces one at a time on the calling thread;
//! 2. **vbt-parallel** — the `check-batch` pipeline: stream each `.vbt`
//!    twin through the zero-copy reader and fan the corpus over
//!    [`velodrome_cli::batch::run_batch`]'s worker pool.
//!
//! Both legs must produce byte-identical warning fingerprints per trace;
//! the binary asserts this before reporting. Results land in
//! `BENCH_batch.json` (see `EXPERIMENTS.md` for the methodology).

use serde::Serialize;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use velodrome_cli::batch::{BatchConfig, TraceStatus};
use velodrome_events::{vbt, Trace};
use velodrome_sim::{random_program, run_program, GenConfig, RandomScheduler};

/// One corpus trace: its twin files plus ground truth for the differential.
pub struct CorpusEntry {
    /// The JSON twin (`<stem>.json`).
    pub json_path: PathBuf,
    /// The VBT twin (`<stem>.vbt`).
    pub vbt_path: PathBuf,
    /// Operations in the trace.
    pub events: usize,
}

/// The generated corpus: twin files under one directory.
pub struct Corpus {
    /// Per-trace entries, in check order.
    pub entries: Vec<CorpusEntry>,
    /// Total bytes across the JSON twins.
    pub json_bytes: u64,
    /// Total bytes across the VBT twins.
    pub vbt_bytes: u64,
}

impl Corpus {
    /// Total operations across the corpus.
    pub fn events(&self) -> u64 {
        self.entries.iter().map(|e| e.events as u64).sum()
    }
}

/// Builds the benchmark corpus under `dir`: `traces` traces, the bulk of
/// them large serializable fan-in stress traces (ingestion-bound, so the
/// trace-format difference shows) and every fourth one a small
/// simulator-generated program run under a seeded random scheduler (so the
/// differential also covers warning-bearing traces). Each trace is written
/// twice: `<stem>.json` and a byte-equivalent `<stem>.vbt`.
pub fn build_corpus(dir: &Path, traces: u64, scale: u64, seed: u64) -> std::io::Result<Corpus> {
    std::fs::create_dir_all(dir)?;
    let mut corpus = Corpus {
        entries: Vec::new(),
        json_bytes: 0,
        vbt_bytes: 0,
    };
    for i in 0..traces {
        let trace = if i % 4 == 3 {
            sim_trace(seed + i)
        } else {
            crate::hotpath::fanin_stress_trace(2 + scale + i % 3, 4, 2 + scale)
        };
        let json_path = dir.join(format!("t{i:03}.json"));
        let vbt_path = dir.join(format!("t{i:03}.vbt"));
        let json = trace.to_json();
        std::fs::write(&json_path, &json)?;
        let file = BufWriter::new(std::fs::File::create(&vbt_path)?);
        vbt::write_vbt(file, &trace)?;
        corpus.json_bytes += json.len() as u64;
        corpus.vbt_bytes += std::fs::metadata(&vbt_path)?.len();
        corpus.entries.push(CorpusEntry {
            json_path,
            vbt_path,
            events: trace.len(),
        });
    }
    Ok(corpus)
}

/// A small simulator-generated trace (these carry the corpus's warnings).
fn sim_trace(seed: u64) -> Trace {
    let cfg = GenConfig {
        threads: 3,
        vars: 3,
        locks: 2,
        stmts_per_thread: 12,
        ..Default::default()
    };
    let program = random_program(&cfg, seed);
    run_program(&program, RandomScheduler::new(seed)).trace
}

/// One leg's timing plus its per-trace warning fingerprints.
pub struct LegResult {
    /// Wall milliseconds for the whole leg.
    pub millis: u64,
    /// `serde_json::to_string(&warnings)` per trace, in corpus order.
    pub fingerprints: Vec<String>,
}

impl LegResult {
    /// Aggregate throughput in events per second of wall time.
    pub fn events_per_sec(&self, events: u64) -> u64 {
        if self.millis == 0 {
            return events * 1000;
        }
        events * 1000 / self.millis
    }
}

/// The json-serial leg: slurp + value-tree parse + one-at-a-time analysis.
pub fn run_json_serial(corpus: &Corpus, backend: &str) -> LegResult {
    let start = std::time::Instant::now();
    let mut fingerprints = Vec::with_capacity(corpus.entries.len());
    for entry in &corpus.entries {
        let json = std::fs::read_to_string(&entry.json_path).expect("corpus json twin reads");
        let trace = Trace::from_json(&json).expect("corpus json twin parses");
        let (warnings, _notes) =
            velodrome_cli::batch::check_trace(&trace, backend).expect("serial analysis succeeds");
        fingerprints.push(serde_json::to_string(&warnings).expect("warnings serialize"));
    }
    LegResult {
        millis: start.elapsed().as_millis() as u64,
        fingerprints,
    }
}

/// The vbt-parallel leg: the `check-batch` worker pool over the VBT twins.
pub fn run_vbt_parallel(corpus: &Corpus, backend: &str, jobs: usize) -> LegResult {
    let cfg = BatchConfig {
        paths: corpus.entries.iter().map(|e| e.vbt_path.clone()).collect(),
        jobs,
        backend: backend.to_owned(),
        collect_metrics: false,
    };
    let start = std::time::Instant::now();
    let report = velodrome_cli::batch::run_batch(&cfg).expect("batch run succeeds");
    let millis = start.elapsed().as_millis() as u64;
    let fingerprints = report
        .outcomes
        .iter()
        .map(|o| {
            assert_eq!(o.status, TraceStatus::Ok, "{}: {:?}", o.path, o.message);
            serde_json::to_string(&o.warnings).expect("warnings serialize")
        })
        .collect();
    LegResult {
        millis,
        fingerprints,
    }
}

/// What `BENCH_batch.json` records.
#[derive(Serialize)]
pub struct BatchBenchReport {
    /// Traces in the generated corpus.
    pub corpus_traces: u64,
    /// Total operations across the corpus.
    pub corpus_events: u64,
    /// Generator seed (corpus is reproducible from it).
    pub seed: u64,
    /// Worker-pool size of the parallel leg.
    pub jobs: u64,
    /// Backend both legs checked with.
    pub backend: String,
    /// Total bytes across the JSON twins.
    pub json_bytes: u64,
    /// Total bytes across the VBT twins.
    pub vbt_bytes: u64,
    /// Wall milliseconds of the json-serial leg.
    pub json_serial_millis: u64,
    /// Aggregate events/sec of the json-serial leg.
    pub json_serial_events_per_sec: u64,
    /// Wall milliseconds of the vbt-parallel leg.
    pub vbt_parallel_millis: u64,
    /// Aggregate events/sec of the vbt-parallel leg.
    pub vbt_parallel_events_per_sec: u64,
    /// `vbt_parallel_events_per_sec / json_serial_events_per_sec`.
    pub speedup: f64,
    /// Whether every per-trace warning fingerprint matched across legs.
    pub outputs_identical: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legs_agree_on_a_small_corpus() {
        let dir = std::env::temp_dir().join("velodrome-bench-batch-test");
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = build_corpus(&dir, 6, 1, 42).expect("corpus builds");
        assert_eq!(corpus.entries.len(), 6);
        assert!(
            corpus.vbt_bytes < corpus.json_bytes,
            "VBT should be smaller"
        );
        let serial = run_json_serial(&corpus, "velodrome-hybrid");
        let parallel = run_vbt_parallel(&corpus, "velodrome-hybrid", 2);
        assert_eq!(serial.fingerprints, parallel.fingerprints);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
