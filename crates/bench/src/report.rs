//! Plain-text table rendering for the experiment binaries.

/// Renders an aligned text table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&headers_owned, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a ratio like `4.2x`.
pub fn ratio(value: f64) -> String {
    format!("{value:.1}x")
}

/// Formats a large count with thousands separators.
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let rendered = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn count_inserts_separators() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1_000), "1,000");
        assert_eq!(count(1_234_567), "1,234,567");
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(4.25), "4.2x");
    }
}
