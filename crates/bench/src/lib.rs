//! Benchmark and experiment harness regenerating the paper's evaluation.
//!
//! * [`backend`] — a uniform driver over the compared back-ends
//!   (Empty, Eraser, HB race detection, Atomizer, Velodrome with and
//!   without merge);
//! * [`table1`] — analysis overhead and node statistics (paper Table 1);
//! * [`table2`] — warning counts and false-alarm classification against
//!   ground truth (paper Table 2);
//! * [`injection`] — the defect-injection / adversarial-scheduling study
//!   (Section 6);
//! * [`report`] — plain-text table rendering.
//!
//! Binaries `table1`, `table2`, `injection`, and `graph_stats` print the
//! paper-style tables; `cargo bench -p velodrome-bench` runs the Criterion
//! timing harness behind Table 1's performance columns. The `hotpath`
//! binary (module [`hotpath`]) measures the redundant-edge elision and
//! epoch-cache fast paths and emits `BENCH_hotpath.json`. The `chaos`
//! binary (module [`chaos`]) replays a fixed-seed trace under the built-in
//! fault-plan set and asserts the fault-tolerance contract. The `batch`
//! binary (module [`batch`]) measures aggregate checking throughput for a
//! JSON-serial pipeline against the VBT-parallel `check-batch` runner and
//! emits `BENCH_batch.json`.

pub mod backend;
pub mod batch;
pub mod chaos;
pub mod hotpath;
pub mod injection;
pub mod report;
pub mod table1;
pub mod table2;

/// Reads a `NAME=value` style `u64` argument from the process arguments
/// (`--scale=4`), falling back to `default`.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    #[test]
    fn arg_parsing_falls_back_to_default() {
        assert_eq!(super::arg_u64("nonexistent-flag", 7), 7);
    }
}
