//! Workload generator for the happens-before hot-path benchmarks.
//!
//! The `hotpath` binary and the `hotpath` criterion bench share this
//! open-transaction fan-in trace: it maximizes transitively-implied edge
//! insertions, which is exactly the traffic the arena's redundant-edge
//! elision gate and the engine's per-thread epoch cache remove.

use velodrome_events::{Trace, TraceBuilder};

/// Builds the fan-in stress trace: `waves` waves of `threads` concurrent
/// transactions. Within a wave, thread `i` writes its own variable and then
/// — for `rounds` passes — reads every earlier thread's variable in
/// descending order, so only the `i-1 → i` chain edge is new and every
/// other ordering arrives already implied through the chain. The wave order
/// is a serialization, so the trace is violation-free.
pub fn fanin_stress_trace(waves: u64, threads: u64, rounds: u64) -> Trace {
    let mut b = TraceBuilder::new();
    let tname: Vec<String> = (0..threads).map(|i| format!("T{i}")).collect();
    let vname: Vec<String> = (0..threads).map(|i| format!("v{i}")).collect();
    for w in 0..waves {
        for (t, v) in tname.iter().zip(&vname) {
            b.begin(t, &format!("wave{w}"));
            b.write(t, v);
        }
        for _ in 0..rounds {
            for (i, t) in tname.iter().enumerate() {
                for v in vname[..i].iter().rev() {
                    b.read(t, v);
                }
            }
        }
        for t in &tname {
            b.end(t);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome::{check_trace_with, VelodromeConfig};

    #[test]
    fn fanin_trace_is_serializable_and_mostly_elided() {
        let trace = fanin_stress_trace(4, 4, 2);
        let cfg = VelodromeConfig {
            names: trace.names().clone(),
            ..Default::default()
        };
        let (warnings, engine) = check_trace_with(&trace, cfg);
        assert!(warnings.is_empty(), "the wave order serializes the trace");
        let stats = engine.stats();
        assert!(stats.edges_elided > stats.edges_added, "{stats}");
        engine.check_invariants();
    }
}
