//! Chaos experiment: drives the built-in [`FaultPlan`] set against a real
//! workload trace and checks the fault-tolerance contract — the host run
//! always completes, verdicts before the degradation point are
//! byte-identical to a clean run, and telemetry pinpoints the exact event
//! where fidelity was lost.
//!
//! The `chaos` binary prints one row per plan and exits nonzero if any
//! plan violates the contract, which makes it usable as a CI smoke test
//! (`scripts/ci-gate.sh` runs it at a fixed seed).

use velodrome::{Velodrome, VelodromeConfig};
use velodrome_events::Trace;
use velodrome_monitor::chaos::{prefix_divergence, run_plan, ChaosRun, PanicAt};
use velodrome_monitor::{DegradationLevel, Fault, FaultPlan};
use velodrome_sim::{run_program, RandomScheduler};

/// Outcome of one fault plan, with the contract checks evaluated.
#[derive(Debug)]
pub struct PlanOutcome {
    /// The plan that ran.
    pub plan: FaultPlan,
    /// Ladder rung the run landed in (driver and engine combined).
    pub ladder: DegradationLevel,
    /// Event index where the run degraded, if it did.
    pub degraded_at: Option<usize>,
    /// Verdict (non-`Degraded`) warnings produced.
    pub verdicts: usize,
    /// Events delivered to the tool (including synthesized closers).
    pub events_delivered: usize,
    /// Closing events synthesized for a host-death cut.
    pub synthesized: usize,
    /// `None` if every pre-degradation verdict matched the clean run
    /// byte-for-byte; otherwise the first divergence.
    pub divergence: Option<(Option<String>, Option<String>)>,
}

impl PlanOutcome {
    /// Did this plan uphold the fault-tolerance contract?
    pub fn ok(&self) -> bool {
        let pinpointed = self.ladder == DegradationLevel::Full || self.degraded_at.is_some();
        self.divergence.is_none() && pinpointed
    }
}

/// The engine's ladder transitions surface as `Degraded` warnings; combine
/// them with the driver-side ladder to get the run's effective rung.
fn effective_ladder(run: &ChaosRun) -> DegradationLevel {
    let mut ladder = run.ladder;
    for w in &run.warnings {
        if w.category != velodrome_monitor::WarningCategory::Degraded {
            continue;
        }
        for level in DegradationLevel::ALL {
            if w.message.contains(&format!("degraded to {level}")) && level > ladder {
                ladder = level;
            }
        }
    }
    ladder
}

/// First event index at which the run reports a `Degraded` transition.
fn first_degraded_index(run: &ChaosRun) -> Option<usize> {
    run.warnings
        .iter()
        .filter(|w| w.category == velodrome_monitor::WarningCategory::Degraded)
        .map(|w| w.op_index)
        .min()
}

fn engine_for(trace: &Trace, plan: &FaultPlan) -> Velodrome {
    Velodrome::with_config(VelodromeConfig {
        names: trace.names().clone(),
        budget: plan.budget_of(),
        ..VelodromeConfig::default()
    })
}

/// Runs one plan over `trace`, returning the raw chaos run.
pub fn run_one(trace: &Trace, plan: &FaultPlan) -> ChaosRun {
    match plan.fault {
        Fault::ToolPanic { at } => run_plan(trace, PanicAt::new(engine_for(trace, plan), at), plan),
        _ => run_plan(trace, engine_for(trace, plan), plan),
    }
}

/// Generates the fixed-seed trace the chaos experiment replays.
pub fn chaos_trace(workload: &str, scale: u32, seed: u64) -> Trace {
    let w = velodrome_workloads::build(workload, scale).expect("workload exists");
    run_program(&w.program, RandomScheduler::new(seed)).trace
}

/// Runs the built-in plan set over `trace` and evaluates the contract for
/// each plan against the clean control run.
pub fn run_builtin(trace: &Trace) -> Vec<PlanOutcome> {
    let clean = run_one(trace, &FaultPlan::clean());
    let clean_warnings = clean.warnings.clone();
    FaultPlan::builtin(trace.len())
        .into_iter()
        .map(|plan| {
            let run = run_one(trace, &plan);
            let degraded_at = run.degraded_at.or_else(|| first_degraded_index(&run));
            // Verdicts strictly before the degradation point must match the
            // clean run byte-for-byte; a cut stream bounds fidelity at the
            // cut even if nothing degraded.
            let before = match (plan.fault, degraded_at) {
                (Fault::TruncateStream { at }, d) | (Fault::HostDeath { at }, d) => {
                    at.min(d.unwrap_or(usize::MAX))
                }
                (_, Some(d)) => d,
                (_, None) => usize::MAX,
            };
            let divergence = prefix_divergence(&clean_warnings, &run.warnings, before);
            PlanOutcome {
                ladder: effective_ladder(&run),
                degraded_at,
                verdicts: run.verdicts().count(),
                events_delivered: run.events_delivered,
                synthesized: run.synthesized,
                divergence,
                plan,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_plans_uphold_contract_on_multiset() {
        let trace = chaos_trace("multiset", 1, 1);
        let outcomes = run_builtin(&trace);
        assert_eq!(outcomes.len(), FaultPlan::builtin(trace.len()).len());
        for o in &outcomes {
            assert!(o.ok(), "{}: {:?}", o.plan, o.divergence);
        }
        // The clean plan must not degrade; at least one faulted plan must.
        assert!(outcomes
            .iter()
            .any(|o| matches!(o.plan.fault, Fault::None) && o.ladder == DegradationLevel::Full));
        assert!(outcomes.iter().any(|o| o.degraded_at.is_some()));
    }
}
