//! Table 1: per-backend analysis overhead and happens-before graph node
//! statistics (Allocated / Max Alive, Without Merge vs With Merge).
//!
//! The paper measures wall-clock slowdown of the instrumented JVM; our
//! substrate is a trace replay, so we report analysis nanoseconds per
//! event and the overhead of each backend *relative to the Empty tool* —
//! the paper's claim being relative ("competitive with Eraser and the
//! Atomizer"), not absolute.

use crate::backend::{run_with_spec, Backend};
use crate::report;
use serde::Serialize;
use velodrome_events::{Op, Trace};
use velodrome_monitor::AtomicitySpec;
use velodrome_workloads::Workload;

/// One Table 1 row.
#[derive(Debug, Serialize)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Original benchmark size, for reference.
    pub paper_lines: u32,
    /// Events in the analyzed trace.
    pub events: usize,
    /// Analysis nanoseconds per event, per timed backend
    /// (empty/eraser/atomizer/velodrome).
    pub ns_per_op: [f64; 4],
    /// Overhead relative to the Empty tool, per timed backend.
    pub rel_overhead: [f64; 4],
    /// Transactions allocated without the merge optimization.
    pub alloc_without_merge: u64,
    /// Peak alive transactions without merge.
    pub alive_without_merge: u64,
    /// Transactions allocated with merge.
    pub alloc_with_merge: u64,
    /// Peak alive transactions with merge.
    pub alive_with_merge: u64,
}

/// Builds the Table 1 configuration's atomicity spec: exclude the methods
/// already known to be non-atomic, checking only the rest.
pub fn exclusion_spec(workload: &Workload, trace: &Trace) -> AtomicitySpec {
    // Map ground-truth method names to the labels used in this trace.
    let mut excluded = Vec::new();
    for (_, op) in trace.iter() {
        if let Op::Begin { l, .. } = op {
            if workload.is_non_atomic(&trace.names().label(l)) {
                excluded.push(l);
            }
        }
    }
    AtomicitySpec::excluding(excluded)
}

/// Runs the Table 1 measurement for one workload.
///
/// `repeats` re-runs each timed backend and keeps the fastest measurement
/// (reducing scheduler noise without a full criterion run).
pub fn measure(workload: &Workload, repeats: u32) -> Table1Row {
    let trace = workload.run_round_robin();
    let spec = exclusion_spec(workload, &trace);

    let mut ns_per_op = [0.0f64; 4];
    for (i, backend) in Backend::TABLE1.iter().enumerate() {
        let mut best = f64::INFINITY;
        for _ in 0..repeats.max(1) {
            let outcome = run_with_spec(*backend, &trace, Some(spec.clone()));
            best = best.min(outcome.ns_per_op(trace.len()));
        }
        ns_per_op[i] = best;
    }
    let empty = ns_per_op[0].max(1e-9);
    let rel_overhead = [
        1.0,
        ns_per_op[1] / empty,
        ns_per_op[2] / empty,
        ns_per_op[3] / empty,
    ];

    let without = run_with_spec(Backend::VelodromeNoMerge, &trace, Some(spec.clone()))
        .stats
        .expect("velodrome stats");
    let with = run_with_spec(Backend::Velodrome, &trace, Some(spec))
        .stats
        .expect("velodrome stats");

    Table1Row {
        name: workload.name.to_string(),
        paper_lines: workload.paper_lines,
        events: trace.len(),
        ns_per_op,
        rel_overhead,
        alloc_without_merge: without.nodes_allocated,
        alive_without_merge: without.max_alive,
        alloc_with_merge: with.nodes_allocated,
        alive_with_merge: with.max_alive,
    }
}

/// Runs Table 1 for every workload at the given scale.
pub fn run_table1(scale: u32, repeats: u32) -> Vec<Table1Row> {
    velodrome_workloads::all(scale)
        .iter()
        .map(|w| measure(w, repeats))
        .collect()
}

/// Renders rows in the paper's layout.
pub fn render(rows: &[Table1Row]) -> String {
    let header = [
        "program",
        "events",
        "empty ns/op",
        "eraser",
        "atomizer",
        "velodrome",
        "alloc w/o merge",
        "alive",
        "alloc w/ merge",
        "alive",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                report::count(r.events as u64),
                format!("{:.0}", r.ns_per_op[0]),
                report::ratio(r.rel_overhead[1]),
                report::ratio(r.rel_overhead[2]),
                report::ratio(r.rel_overhead[3]),
                report::count(r.alloc_without_merge),
                report::count(r.alive_without_merge),
                report::count(r.alloc_with_merge),
                report::count(r.alive_with_merge),
            ]
        })
        .collect();
    report::table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_for_multiset_shows_merge_benefit() {
        let w = velodrome_workloads::build("multiset", 1).unwrap();
        let row = measure(&w, 1);
        assert!(row.events > 100);
        assert!(
            row.alloc_without_merge > 10 * row.alloc_with_merge,
            "merge should slash allocations: {} vs {}",
            row.alloc_without_merge,
            row.alloc_with_merge
        );
        assert!(row.alive_without_merge <= 64, "GC keeps alive counts tiny");
        assert!(row.alive_with_merge <= 64);
    }

    #[test]
    fn render_produces_a_row_per_workload() {
        let w = velodrome_workloads::build("philo", 1).unwrap();
        let rows = vec![measure(&w, 1)];
        let text = render(&rows);
        assert!(text.contains("philo"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn exclusion_spec_excludes_truth_labels() {
        let w = velodrome_workloads::build("multiset", 1).unwrap();
        let trace = w.run_round_robin();
        let spec = exclusion_spec(&w, &trace);
        for (_, op) in trace.iter() {
            if let Op::Begin { l, .. } = op {
                let name = trace.names().label(l);
                assert_eq!(spec.should_check(l), !w.is_non_atomic(&name), "{name}");
            }
        }
    }
}
