//! Uniform driver for the five back-end analyses compared in Table 1.

use std::time::{Duration, Instant};
use velodrome::{Velodrome, VelodromeConfig, VelodromeStats};
use velodrome_atomizer::Atomizer;
use velodrome_events::Trace;
use velodrome_lockset::{Eraser, StrictTwoPhase};
use velodrome_monitor::{run_tool, AtomicitySpec, EmptyTool, SpecFilter, Tool, Warning};
use velodrome_telemetry::Telemetry;
use velodrome_vclock::HbRaceDetector;

/// The analysis back-ends of Table 1 (plus the no-merge Velodrome variant
/// used for the "Without Merge" columns, and the HB race detector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Instrumentation only; no analysis.
    Empty,
    /// Eraser lockset race detection.
    Eraser,
    /// Happens-before (vector clock) race detection.
    HbRace,
    /// The Atomizer reduction-based atomicity checker.
    Atomizer,
    /// Strict two-phase-locking conformance (sufficient-condition baseline).
    S2pl,
    /// Velodrome with all optimizations.
    Velodrome,
    /// Velodrome with the naive `[INS OUTSIDE]` rule (Figure 2).
    VelodromeNoMerge,
}

impl Backend {
    /// Every backend, in Table 1 column order.
    pub const ALL: [Backend; 7] = [
        Backend::Empty,
        Backend::Eraser,
        Backend::HbRace,
        Backend::Atomizer,
        Backend::S2pl,
        Backend::Velodrome,
        Backend::VelodromeNoMerge,
    ];

    /// The backends timed in the paper's Table 1.
    pub const TABLE1: [Backend; 4] = [
        Backend::Empty,
        Backend::Eraser,
        Backend::Atomizer,
        Backend::Velodrome,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Empty => "empty",
            Backend::Eraser => "eraser",
            Backend::HbRace => "hb-race",
            Backend::Atomizer => "atomizer",
            Backend::S2pl => "s2pl",
            Backend::Velodrome => "velodrome",
            Backend::VelodromeNoMerge => "velodrome-nomerge",
        }
    }
}

/// Result of running one backend over one trace.
#[derive(Debug)]
pub struct RunOutcome {
    /// Which backend ran.
    pub backend: Backend,
    /// Warnings produced.
    pub warnings: Vec<Warning>,
    /// Wall-clock analysis time.
    pub elapsed: Duration,
    /// Engine statistics (Velodrome variants only).
    pub stats: Option<VelodromeStats>,
}

impl RunOutcome {
    /// Analysis nanoseconds per trace operation.
    pub fn ns_per_op(&self, trace_len: usize) -> f64 {
        self.elapsed.as_nanos() as f64 / trace_len.max(1) as f64
    }
}

fn velodrome_config(trace: &Trace, merge: bool, telemetry: &Telemetry) -> VelodromeConfig {
    VelodromeConfig {
        merge,
        names: trace.names().clone(),
        telemetry: telemetry.clone(),
        ..VelodromeConfig::default()
    }
}

/// Runs `backend` over the whole trace, checking every atomic block.
pub fn run(backend: Backend, trace: &Trace) -> RunOutcome {
    run_with_spec(backend, trace, None)
}

/// Runs `backend` over the trace; with a spec, `begin`/`end` markers of
/// excluded blocks are filtered first (the Table 1 configuration).
pub fn run_with_spec(backend: Backend, trace: &Trace, spec: Option<AtomicitySpec>) -> RunOutcome {
    run_with_telemetry(backend, trace, spec, &Telemetry::disabled())
}

/// [`run_with_spec`] with a telemetry registry wired into the Velodrome
/// variants. After the run the engine's statistics surface is mirrored into
/// the registry (`publish_telemetry`), so callers can read final gauge
/// values from a snapshot instead of the stats struct.
pub fn run_with_telemetry(
    backend: Backend,
    trace: &Trace,
    spec: Option<AtomicitySpec>,
    telemetry: &Telemetry,
) -> RunOutcome {
    fn timed<T: Tool>(
        backend: Backend,
        trace: &Trace,
        spec: Option<AtomicitySpec>,
        tool: T,
        stats: impl FnOnce(&T) -> Option<VelodromeStats>,
    ) -> RunOutcome {
        match spec {
            None => {
                let mut tool = tool;
                let start = Instant::now();
                let warnings = run_tool(&mut tool, trace);
                let elapsed = start.elapsed();
                RunOutcome {
                    backend,
                    warnings,
                    elapsed,
                    stats: stats(&tool),
                }
            }
            Some(spec) => {
                let mut filtered = SpecFilter::new(spec, tool);
                let start = Instant::now();
                let warnings = run_tool(&mut filtered, trace);
                let elapsed = start.elapsed();
                RunOutcome {
                    backend,
                    warnings,
                    elapsed,
                    stats: stats(filtered.inner()),
                }
            }
        }
    }

    match backend {
        Backend::Empty => timed(backend, trace, spec, EmptyTool::new(), |_| None),
        Backend::Eraser => timed(backend, trace, spec, Eraser::new(), |_| None),
        Backend::HbRace => timed(backend, trace, spec, HbRaceDetector::new(), |_| None),
        Backend::Atomizer => timed(backend, trace, spec, Atomizer::new(), |_| None),
        Backend::S2pl => timed(backend, trace, spec, StrictTwoPhase::new(), |_| None),
        Backend::Velodrome => {
            let tool = Velodrome::with_config(velodrome_config(trace, true, telemetry));
            timed(backend, trace, spec, tool, |t| {
                t.publish_telemetry();
                Some(t.stats())
            })
        }
        Backend::VelodromeNoMerge => {
            let tool = Velodrome::with_config(velodrome_config(trace, false, telemetry));
            timed(backend, trace, spec, tool, |t| {
                t.publish_telemetry();
                Some(t.stats())
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome_events::TraceBuilder;

    fn rmw_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc").read("T1", "x");
        b.write("T2", "x");
        b.write("T1", "x").end("T1");
        b.finish()
    }

    #[test]
    fn all_backends_run() {
        let trace = rmw_trace();
        for backend in Backend::ALL {
            let outcome = run(backend, &trace);
            assert_eq!(outcome.backend, backend);
            assert!(outcome.ns_per_op(trace.len()) >= 0.0);
        }
    }

    #[test]
    fn velodrome_variants_agree_and_expose_stats() {
        let trace = rmw_trace();
        let merged = run(Backend::Velodrome, &trace);
        let unmerged = run(Backend::VelodromeNoMerge, &trace);
        assert_eq!(merged.warnings.len(), 1);
        assert_eq!(unmerged.warnings.len(), 1);
        assert!(merged.stats.is_some());
        assert!(unmerged.stats.unwrap().nodes_allocated >= merged.stats.unwrap().nodes_allocated);
    }

    #[test]
    fn spec_exclusion_silences_the_block() {
        let trace = rmw_trace();
        let label = velodrome_events::Label::new(0);
        let spec = AtomicitySpec::excluding([label]);
        let outcome = run_with_spec(Backend::Velodrome, &trace, Some(spec));
        assert!(outcome.warnings.is_empty());
    }
}
