//! Uniform driver for the back-end analyses compared in Table 1.

use std::time::{Duration, Instant};
use velodrome::{
    HybridConfig, HybridStats, HybridVelodrome, Velodrome, VelodromeConfig, VelodromeStats,
};
use velodrome_atomizer::Atomizer;
use velodrome_events::Trace;
use velodrome_lockset::{Eraser, StrictTwoPhase};
use velodrome_monitor::{run_tool, AtomicitySpec, EmptyTool, SpecFilter, Tool, Warning};
use velodrome_telemetry::Telemetry;
use velodrome_vclock::HbRaceDetector;

/// The analysis back-ends of Table 1 (plus the no-merge Velodrome variant
/// used for the "Without Merge" columns, the HB race detector, and the
/// two-tier vector-clock checkers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Instrumentation only; no analysis.
    Empty,
    /// Eraser lockset race detection.
    Eraser,
    /// Happens-before (vector clock) race detection.
    HbRace,
    /// The Atomizer reduction-based atomicity checker.
    Atomizer,
    /// Strict two-phase-locking conformance (sufficient-condition baseline).
    S2pl,
    /// Velodrome with all optimizations.
    Velodrome,
    /// Velodrome with the naive `[INS OUTSIDE]` rule (Figure 2).
    VelodromeNoMerge,
    /// AeroDrome vector-clock checker: linear time, verdict-only output.
    Aerodrome,
    /// Two-tier checker: vector-clock screen online, graph engine engaged
    /// on the first escalation flag. Warnings byte-identical to
    /// [`Backend::Velodrome`].
    VelodromeHybrid,
}

impl Backend {
    /// Every backend, in Table 1 column order.
    pub const ALL: [Backend; 9] = [
        Backend::Empty,
        Backend::Eraser,
        Backend::HbRace,
        Backend::Atomizer,
        Backend::S2pl,
        Backend::Velodrome,
        Backend::VelodromeNoMerge,
        Backend::Aerodrome,
        Backend::VelodromeHybrid,
    ];

    /// The backends timed in the paper's Table 1.
    pub const TABLE1: [Backend; 4] = [
        Backend::Empty,
        Backend::Eraser,
        Backend::Atomizer,
        Backend::Velodrome,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Empty => "empty",
            Backend::Eraser => "eraser",
            Backend::HbRace => "hb-race",
            Backend::Atomizer => "atomizer",
            Backend::S2pl => "s2pl",
            Backend::Velodrome => "velodrome",
            Backend::VelodromeNoMerge => "velodrome-nomerge",
            Backend::Aerodrome => "aerodrome",
            Backend::VelodromeHybrid => "velodrome-hybrid",
        }
    }

    /// Parses a stable display name back into a backend. Every member of
    /// [`Backend::ALL`] round-trips through this (a unit test enforces
    /// it), so a newly added backend cannot silently miss the parser.
    pub fn from_name(name: &str) -> Option<Backend> {
        Backend::ALL.into_iter().find(|b| b.name() == name)
    }
}

/// Result of running one backend over one trace.
#[derive(Debug)]
pub struct RunOutcome {
    /// Which backend ran.
    pub backend: Backend,
    /// Warnings produced.
    pub warnings: Vec<Warning>,
    /// Wall-clock analysis time.
    pub elapsed: Duration,
    /// Engine statistics (always-on Velodrome variants only).
    pub stats: Option<VelodromeStats>,
    /// Hybrid checker statistics ([`Backend::Aerodrome`] and
    /// [`Backend::VelodromeHybrid`] only).
    pub hybrid_stats: Option<HybridStats>,
}

impl RunOutcome {
    /// Analysis nanoseconds per trace operation.
    pub fn ns_per_op(&self, trace_len: usize) -> f64 {
        self.elapsed.as_nanos() as f64 / trace_len.max(1) as f64
    }

    /// Graph node + edge operations performed, when the backend tracks
    /// them (see [`VelodromeStats::graph_ops`]).
    pub fn graph_ops(&self) -> Option<u64> {
        match (&self.stats, &self.hybrid_stats) {
            (Some(s), _) => Some(s.graph_ops()),
            (None, Some(h)) => Some(h.graph_ops()),
            (None, None) => None,
        }
    }
}

fn velodrome_config(trace: &Trace, merge: bool, telemetry: &Telemetry) -> VelodromeConfig {
    VelodromeConfig {
        merge,
        names: trace.names().clone(),
        telemetry: telemetry.clone(),
        ..VelodromeConfig::default()
    }
}

fn hybrid_config(trace: &Trace, verdict_only: bool, telemetry: &Telemetry) -> HybridConfig {
    HybridConfig {
        engine: velodrome_config(trace, true, telemetry),
        verdict_only,
        ..HybridConfig::default()
    }
}

/// Runs `backend` over the whole trace, checking every atomic block.
pub fn run(backend: Backend, trace: &Trace) -> RunOutcome {
    run_with_spec(backend, trace, None)
}

/// Runs `backend` over the trace; with a spec, `begin`/`end` markers of
/// excluded blocks are filtered first (the Table 1 configuration).
pub fn run_with_spec(backend: Backend, trace: &Trace, spec: Option<AtomicitySpec>) -> RunOutcome {
    run_with_telemetry(backend, trace, spec, &Telemetry::disabled())
}

/// [`run_with_spec`] with a telemetry registry wired into the Velodrome
/// variants. After the run the engine's statistics surface is mirrored into
/// the registry (`publish_telemetry`), so callers can read final gauge
/// values from a snapshot instead of the stats struct.
pub fn run_with_telemetry(
    backend: Backend,
    trace: &Trace,
    spec: Option<AtomicitySpec>,
    telemetry: &Telemetry,
) -> RunOutcome {
    struct Extracted {
        stats: Option<VelodromeStats>,
        hybrid_stats: Option<HybridStats>,
    }

    fn timed<T: Tool>(
        backend: Backend,
        trace: &Trace,
        spec: Option<AtomicitySpec>,
        tool: T,
        extract: impl FnOnce(&T) -> Extracted,
    ) -> RunOutcome {
        match spec {
            None => {
                let mut tool = tool;
                let start = Instant::now();
                let warnings = run_tool(&mut tool, trace);
                let elapsed = start.elapsed();
                let e = extract(&tool);
                RunOutcome {
                    backend,
                    warnings,
                    elapsed,
                    stats: e.stats,
                    hybrid_stats: e.hybrid_stats,
                }
            }
            Some(spec) => {
                let mut filtered = SpecFilter::new(spec, tool);
                let start = Instant::now();
                let warnings = run_tool(&mut filtered, trace);
                let elapsed = start.elapsed();
                let e = extract(filtered.inner());
                RunOutcome {
                    backend,
                    warnings,
                    elapsed,
                    stats: e.stats,
                    hybrid_stats: e.hybrid_stats,
                }
            }
        }
    }

    fn none<T>(_: &T) -> Extracted {
        Extracted {
            stats: None,
            hybrid_stats: None,
        }
    }
    match backend {
        Backend::Empty => timed(backend, trace, spec, EmptyTool::new(), none),
        Backend::Eraser => timed(backend, trace, spec, Eraser::new(), none),
        Backend::HbRace => timed(backend, trace, spec, HbRaceDetector::new(), none),
        Backend::Atomizer => timed(backend, trace, spec, Atomizer::new(), none),
        Backend::S2pl => timed(backend, trace, spec, StrictTwoPhase::new(), none),
        Backend::Velodrome => {
            let tool = Velodrome::with_config(velodrome_config(trace, true, telemetry));
            timed(backend, trace, spec, tool, |t| {
                t.publish_telemetry();
                Extracted {
                    stats: Some(t.stats()),
                    hybrid_stats: None,
                }
            })
        }
        Backend::VelodromeNoMerge => {
            let tool = Velodrome::with_config(velodrome_config(trace, false, telemetry));
            timed(backend, trace, spec, tool, |t| {
                t.publish_telemetry();
                Extracted {
                    stats: Some(t.stats()),
                    hybrid_stats: None,
                }
            })
        }
        Backend::Aerodrome | Backend::VelodromeHybrid => {
            let verdict_only = backend == Backend::Aerodrome;
            let tool = HybridVelodrome::with_config(hybrid_config(trace, verdict_only, telemetry));
            timed(backend, trace, spec, tool, |t| {
                t.publish_telemetry_to(telemetry);
                Extracted {
                    stats: None,
                    hybrid_stats: Some(t.stats()),
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use velodrome_events::TraceBuilder;

    fn rmw_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc").read("T1", "x");
        b.write("T2", "x");
        b.write("T1", "x").end("T1");
        b.finish()
    }

    #[test]
    fn all_backends_run() {
        let trace = rmw_trace();
        for backend in Backend::ALL {
            let outcome = run(backend, &trace);
            assert_eq!(outcome.backend, backend);
            assert!(outcome.ns_per_op(trace.len()) >= 0.0);
        }
    }

    #[test]
    fn backend_names_are_unique_and_round_trip() {
        let mut seen = HashSet::new();
        for backend in Backend::ALL {
            assert!(
                seen.insert(backend.name()),
                "duplicate backend name {:?}",
                backend.name()
            );
            assert_eq!(
                Backend::from_name(backend.name()),
                Some(backend),
                "backend {:?} does not round-trip through from_name",
                backend.name()
            );
        }
        assert_eq!(Backend::from_name("no-such-backend"), None);
    }

    #[test]
    fn velodrome_variants_agree_and_expose_stats() {
        let trace = rmw_trace();
        let merged = run(Backend::Velodrome, &trace);
        let unmerged = run(Backend::VelodromeNoMerge, &trace);
        assert_eq!(merged.warnings.len(), 1);
        assert_eq!(unmerged.warnings.len(), 1);
        assert!(merged.stats.is_some());
        assert!(unmerged.stats.unwrap().nodes_allocated >= merged.stats.unwrap().nodes_allocated);
    }

    #[test]
    fn hybrid_matches_velodrome_byte_for_byte() {
        let trace = rmw_trace();
        let pure = run(Backend::Velodrome, &trace);
        let hybrid = run(Backend::VelodromeHybrid, &trace);
        assert_eq!(
            serde_json::to_string(&hybrid.warnings).unwrap(),
            serde_json::to_string(&pure.warnings).unwrap()
        );
        assert_eq!(hybrid.hybrid_stats.unwrap().escalations, 1);
        let aero = run(Backend::Aerodrome, &trace);
        assert_eq!(aero.warnings.len(), pure.warnings.len());
        assert!(aero.warnings.iter().all(|w| w.tool == "aerodrome"));
    }

    #[test]
    fn spec_exclusion_silences_the_block() {
        let trace = rmw_trace();
        let label = velodrome_events::Label::new(0);
        let spec = AtomicitySpec::excluding([label]);
        let outcome = run_with_spec(Backend::Velodrome, &trace, Some(spec));
        assert!(outcome.warnings.is_empty());
    }
}
