//! Table 2: warnings produced by the Atomizer and Velodrome under the
//! assumption that all methods should be atomic.
//!
//! Following the paper's methodology, each benchmark is run several times
//! (distinct scheduler seeds standing in for distinct executions) and the
//! number of *distinct* methods warned about is counted. Ground truth from
//! the workload models classifies every warning as a real non-atomic
//! method or a false alarm; "missed" counts Atomizer-confirmed real
//! defects that Velodrome never observed.

use crate::backend::{run, Backend};
use crate::report;
use serde::Serialize;
use std::collections::HashSet;
use velodrome_workloads::Workload;

/// One Table 2 row, with the paper's numbers alongside.
#[derive(Debug, Serialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Distinct really-non-atomic methods the Atomizer warned about.
    pub atomizer_real: usize,
    /// Distinct Atomizer false alarms.
    pub atomizer_false: usize,
    /// Distinct really-non-atomic methods Velodrome reported.
    pub velodrome_real: usize,
    /// Distinct Velodrome false alarms (must be zero).
    pub velodrome_false: usize,
    /// Real defects found by the Atomizer but never witnessed by Velodrome.
    pub missed: usize,
    /// The paper's reported counts, for comparison.
    pub paper_atomizer_real: u32,
    /// The paper's Atomizer false alarms.
    pub paper_atomizer_false: u32,
    /// The paper's Velodrome count.
    pub paper_velodrome: u32,
    /// The paper's missed count.
    pub paper_missed: u32,
}

/// Runs the Table 2 measurement for one workload across `runs` seeds.
pub fn measure(workload: &Workload, runs: u64) -> Table2Row {
    let mut atomizer_labels: HashSet<String> = HashSet::new();
    let mut velodrome_labels: HashSet<String> = HashSet::new();
    for seed in 0..runs {
        let trace = workload.run(seed);
        for w in run(Backend::Atomizer, &trace).warnings {
            if let Some(l) = w.label {
                atomizer_labels.insert(trace.names().label(l));
            }
        }
        for w in run(Backend::Velodrome, &trace).warnings {
            if let Some(l) = w.label {
                velodrome_labels.insert(trace.names().label(l));
            }
        }
    }
    let real = |s: &HashSet<String>| s.iter().filter(|l| workload.is_non_atomic(l)).count();
    let atomizer_real_set: HashSet<&String> = atomizer_labels
        .iter()
        .filter(|l| workload.is_non_atomic(l))
        .collect();
    let missed = atomizer_real_set
        .iter()
        .filter(|l| !velodrome_labels.contains(**l))
        .count();
    Table2Row {
        name: workload.name.to_string(),
        atomizer_real: real(&atomizer_labels),
        atomizer_false: atomizer_labels.len() - real(&atomizer_labels),
        velodrome_real: real(&velodrome_labels),
        velodrome_false: velodrome_labels.len() - real(&velodrome_labels),
        missed,
        paper_atomizer_real: workload.paper.atomizer_real,
        paper_atomizer_false: workload.paper.atomizer_false,
        paper_velodrome: workload.paper.velodrome_found,
        paper_missed: workload.paper.missed,
    }
}

/// Runs Table 2 for every workload.
pub fn run_table2(scale: u32, runs: u64) -> Vec<Table2Row> {
    velodrome_workloads::all(scale)
        .iter()
        .map(|w| measure(w, runs))
        .collect()
}

/// Renders rows with measured and paper columns side by side.
pub fn render(rows: &[Table2Row]) -> String {
    let header = [
        "program",
        "atomizer real",
        "atomizer false",
        "velodrome real",
        "velodrome false",
        "missed",
        "(paper: A-real",
        "A-false",
        "V-real",
        "missed)",
    ];
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.atomizer_real.to_string(),
                r.atomizer_false.to_string(),
                r.velodrome_real.to_string(),
                r.velodrome_false.to_string(),
                r.missed.to_string(),
                r.paper_atomizer_real.to_string(),
                r.paper_atomizer_false.to_string(),
                r.paper_velodrome.to_string(),
                r.paper_missed.to_string(),
            ]
        })
        .collect();
    let totals = |f: fn(&Table2Row) -> usize| rows.iter().map(f).sum::<usize>().to_string();
    body.push(vec![
        "TOTAL".into(),
        totals(|r| r.atomizer_real),
        totals(|r| r.atomizer_false),
        totals(|r| r.velodrome_real),
        totals(|r| r.velodrome_false),
        totals(|r| r.missed),
        rows.iter()
            .map(|r| r.paper_atomizer_real)
            .sum::<u32>()
            .to_string(),
        rows.iter()
            .map(|r| r.paper_atomizer_false)
            .sum::<u32>()
            .to_string(),
        rows.iter()
            .map(|r| r.paper_velodrome)
            .sum::<u32>()
            .to_string(),
        rows.iter().map(|r| r.paper_missed).sum::<u32>().to_string(),
    ]);
    report::table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn velodrome_has_zero_false_alarms_everywhere() {
        for w in velodrome_workloads::all(1) {
            let row = measure(&w, 3);
            assert_eq!(
                row.velodrome_false, 0,
                "{}: velodrome must be complete",
                w.name
            );
        }
    }

    #[test]
    fn atomizer_false_alarms_on_fork_join_benchmarks() {
        let w = velodrome_workloads::build("jbb", 1).unwrap();
        let row = measure(&w, 2);
        assert!(
            row.atomizer_false > 10,
            "jbb is the paper's big false-alarm source"
        );
        assert_eq!(row.velodrome_false, 0);
    }

    #[test]
    fn multiset_defects_fully_found() {
        let w = velodrome_workloads::build("multiset", 1).unwrap();
        let row = measure(&w, 5);
        assert_eq!(row.velodrome_real, 5);
        assert_eq!(row.missed, 0);
    }

    #[test]
    fn render_includes_totals() {
        let w = velodrome_workloads::build("philo", 1).unwrap();
        let text = render(&[measure(&w, 2)]);
        assert!(text.contains("TOTAL"));
    }
}
