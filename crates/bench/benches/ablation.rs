//! Ablation benchmarks for the design choices Section 4 motivates:
//! the merge optimization (node allocation traffic) and garbage collection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use velodrome::{Velodrome, VelodromeConfig};
use velodrome_events::Trace;
use velodrome_monitor::run_tool;

fn analyze(trace: &Trace, merge: bool, gc: bool) {
    let cfg = VelodromeConfig {
        merge,
        gc,
        ..VelodromeConfig::default()
    };
    let mut v = Velodrome::with_config(cfg);
    let _ = run_tool(&mut v, trace);
}

fn ablation(c: &mut Criterion) {
    // multiset: unary-heavy, exactly the workload merging targets.
    // Scale 2 keeps the no-GC configuration (quadratic ancestor sets over
    // an ever-growing arena) benchmarkable; the effect is dramatic already.
    let w = velodrome_workloads::build("multiset", 2).expect("workload");
    let trace = w.run_round_robin();
    let mut group = c.benchmark_group("ablation/multiset");
    group
        .throughput(Throughput::Elements(trace.len() as u64))
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (name, merge, gc) in [
        ("merge+gc", true, true),
        ("nomerge+gc", false, true),
        ("merge+nogc", true, false),
        ("nomerge+nogc", false, false),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(merge, gc),
            |b, &(m, g)| b.iter(|| analyze(&trace, m, g)),
        );
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
