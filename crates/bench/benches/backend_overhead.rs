//! Criterion harness behind Table 1's timing columns: per-backend analysis
//! cost over identical pre-recorded traces of every benchmark model.
//!
//! Scale with `VELODROME_BENCH_SCALE` (default 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use velodrome_bench::backend::{run_with_spec, Backend};
use velodrome_bench::table1::exclusion_spec;

fn backend_overhead(c: &mut Criterion) {
    let scale: u32 = std::env::var("VELODROME_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    for w in velodrome_workloads::all(scale) {
        let trace = w.run_round_robin();
        let spec = exclusion_spec(&w, &trace);
        let mut group = c.benchmark_group(format!("table1/{}", w.name));
        group
            .throughput(Throughput::Elements(trace.len() as u64))
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600));
        for backend in Backend::TABLE1 {
            group.bench_with_input(
                BenchmarkId::from_parameter(backend.name()),
                &backend,
                |bench, &backend| bench.iter(|| run_with_spec(backend, &trace, Some(spec.clone()))),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, backend_overhead);
criterion_main!(benches);
