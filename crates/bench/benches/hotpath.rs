//! Criterion timing for the happens-before hot path: optimized engine
//! (redundant-edge elision + epoch cache, the default) vs. the unoptimized
//! baseline over the elision-heavy fan-in stress trace and the paper's
//! multiset workload.
//!
//! Run with `cargo bench -p velodrome-bench --bench hotpath`. For the
//! JSON artifact (`BENCH_hotpath.json`) and the output-identity checks,
//! use the `hotpath` binary instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use velodrome::{Velodrome, VelodromeConfig};
use velodrome_bench::hotpath::fanin_stress_trace;
use velodrome_events::Trace;
use velodrome_monitor::Tool;

fn run(trace: &Trace, elide: bool) -> u64 {
    let cfg = VelodromeConfig {
        elide_redundant_edges: elide,
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    };
    let mut engine = Velodrome::with_config(cfg);
    for (i, op) in trace.iter() {
        engine.op(i, op);
    }
    engine.stats().edges_added
}

fn bench_trace(c: &mut Criterion, group_name: &str, trace: &Trace) {
    let mut group = c.benchmark_group(group_name);
    group
        .throughput(Throughput::Elements(trace.len() as u64))
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (name, elide) in [("optimized", true), ("baseline", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &elide, |b, &elide| {
            b.iter(|| run(trace, elide));
        });
    }
    group.finish();
}

fn hotpath(c: &mut Criterion) {
    let stress = fanin_stress_trace(200, 8, 4);
    bench_trace(c, "hotpath/stress", &stress);

    let multiset = velodrome_workloads::build("multiset", 8).expect("workload");
    let multiset_trace = multiset.run_round_robin();
    bench_trace(c, "hotpath/multiset", &multiset_trace);
}

criterion_group!(benches, hotpath);
criterion_main!(benches);
