//! DJIT⁺-style happens-before race detector.
//!
//! Maintains one clock per thread, per lock, and per variable (separately
//! for reads and writes). A race is reported exactly when two conflicting
//! accesses are concurrent in the happens-before order induced by program
//! order, lock release→acquire edges, and fork/join — i.e., the detector is
//! precise for the observed trace.

use crate::clock::VectorClock;
use std::collections::{HashMap, HashSet};
use velodrome_events::{LockId, Op, ThreadId, VarId};
use velodrome_monitor::tool::{Tool, Warning, WarningCategory};

#[derive(Debug, Default)]
struct VarClocks {
    reads: VectorClock,
    writes: VectorClock,
}

/// The happens-before race detector back-end.
///
/// # Examples
///
/// ```
/// use velodrome_events::TraceBuilder;
/// use velodrome_monitor::run_tool;
/// use velodrome_vclock::HbRaceDetector;
///
/// let mut b = TraceBuilder::new();
/// b.acquire("T1", "m").write("T1", "x").release("T1", "m");
/// b.acquire("T2", "m").write("T2", "x").release("T2", "m");
/// let warnings = run_tool(&mut HbRaceDetector::new(), &b.finish());
/// assert!(warnings.is_empty(), "release/acquire orders the writes");
/// ```
#[derive(Debug, Default)]
pub struct HbRaceDetector {
    threads: HashMap<ThreadId, VectorClock>,
    locks: HashMap<LockId, VectorClock>,
    vars: HashMap<VarId, VarClocks>,
    reported: HashSet<VarId>,
    warnings: Vec<Warning>,
    races_detected: u64,
}

impl HbRaceDetector {
    /// Creates a detector with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total conflicting concurrent access pairs observed (before
    /// per-variable deduplication).
    pub fn races_detected(&self) -> u64 {
        self.races_detected
    }

    fn clock_mut(&mut self, t: ThreadId) -> &mut VectorClock {
        self.threads.entry(t).or_insert_with(|| {
            let mut c = VectorClock::new();
            c.inc(t); // each thread starts in its own epoch
            c
        })
    }

    fn report(&mut self, t: ThreadId, x: VarId, index: usize, kind: &str) {
        self.races_detected += 1;
        if !self.reported.insert(x) {
            return;
        }
        self.warnings.push(Warning {
            tool: "hb-race",
            category: WarningCategory::Race,
            label: None,
            thread: t,
            op_index: index,
            message: format!("{kind} race on {x} by {t}"),
            details: None,
        });
    }
}

impl Tool for HbRaceDetector {
    fn name(&self) -> &'static str {
        "hb-race"
    }

    fn op(&mut self, index: usize, op: Op) {
        match op {
            Op::Acquire { t, m } => {
                let lock = self.locks.get(&m).cloned().unwrap_or_default();
                self.clock_mut(t).join(&lock);
            }
            Op::Release { t, m } => {
                let c = self.clock_mut(t).clone();
                self.locks.insert(m, c);
                self.clock_mut(t).inc(t);
            }
            Op::Fork { t, child } => {
                let parent = self.clock_mut(t).clone();
                self.clock_mut(child).join(&parent);
                self.clock_mut(t).inc(t);
            }
            Op::Join { t, child } => {
                let done = self.clock_mut(child).clone();
                self.clock_mut(t).join(&done);
                self.clock_mut(child).inc(child);
            }
            Op::Read { t, x } => {
                let ct = self.clock_mut(t).clone();
                let vc = self.vars.entry(x).or_default();
                let racy = !vc.writes.le(&ct);
                let my = ct.get(t);
                vc.reads.set(t, my);
                if racy {
                    self.report(t, x, index, "write-read");
                }
            }
            Op::Write { t, x } => {
                let ct = self.clock_mut(t).clone();
                let vc = self.vars.entry(x).or_default();
                let racy_w = !vc.writes.le(&ct);
                let racy_r = !vc.reads.le(&ct);
                let my = ct.get(t);
                vc.writes.set(t, my);
                vc.reads.set(t, my);
                if racy_w {
                    self.report(t, x, index, "write-write");
                } else if racy_r {
                    self.report(t, x, index, "read-write");
                }
            }
            Op::Begin { .. } | Op::End { .. } => {}
        }
    }

    fn take_warnings(&mut self) -> Vec<Warning> {
        std::mem::take(&mut self.warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome_events::TraceBuilder;
    use velodrome_monitor::run_tool;

    fn races(build: impl FnOnce(&mut TraceBuilder)) -> usize {
        let mut b = TraceBuilder::new();
        build(&mut b);
        let mut d = HbRaceDetector::new();
        run_tool(&mut d, &b.finish()).len()
    }

    #[test]
    fn unsynchronized_write_write_is_a_race() {
        let n = races(|b| {
            b.write("T1", "x");
            b.write("T2", "x");
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let n = races(|b| {
            b.acquire("T1", "m").write("T1", "x").release("T1", "m");
            b.acquire("T2", "m").write("T2", "x").release("T2", "m");
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn read_read_never_races() {
        let n = races(|b| {
            b.read("T1", "x");
            b.read("T2", "x");
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn unordered_read_write_is_a_race() {
        let n = races(|b| {
            b.read("T1", "x");
            b.write("T2", "x");
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn fork_join_orders_accesses() {
        let n = races(|b| {
            b.write("T1", "x");
            b.fork("T1", "T2");
            b.write("T2", "x");
            b.join("T1", "T2");
            b.read("T1", "x");
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn release_acquire_chain_orders_distant_threads() {
        let n = races(|b| {
            b.write("T1", "x");
            b.acquire("T1", "m").release("T1", "m");
            b.acquire("T2", "m").release("T2", "m");
            b.write("T2", "x");
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn unrelated_lock_does_not_order() {
        let n = races(|b| {
            b.acquire("T1", "m1").write("T1", "x").release("T1", "m1");
            b.acquire("T2", "m2").write("T2", "x").release("T2", "m2");
        });
        assert_eq!(n, 1, "different locks do not synchronize");
    }

    #[test]
    fn races_deduplicated_per_variable() {
        let mut b = TraceBuilder::new();
        for _ in 0..5 {
            b.write("T1", "x").write("T2", "x");
        }
        let mut d = HbRaceDetector::new();
        let warnings = run_tool(&mut d, &b.finish());
        assert_eq!(warnings.len(), 1);
        assert!(d.races_detected() >= 5);
    }

    #[test]
    fn flag_handoff_races_under_pure_lock_hb() {
        // The Section 2 handoff synchronizes through a plain flag variable.
        // Plain accesses induce no happens-before edges for a race detector
        // (unlike for Velodrome's conflict-based relation), so both the flag
        // and the handed-off variable are flagged — one reason race checking
        // and serializability checking are complementary.
        let mut b = TraceBuilder::new();
        b.read("T2", "b");
        b.write("T1", "x");
        b.write("T1", "b");
        b.read("T2", "b");
        b.write("T2", "x");
        let mut d = HbRaceDetector::new();
        let warnings = run_tool(&mut d, &b.finish());
        assert_eq!(warnings.len(), 2, "{warnings:?}");
    }
}
