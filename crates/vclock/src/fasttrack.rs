//! Epoch-optimized happens-before race detection (FastTrack-style).
//!
//! The full-vector detector in [`crate::detector`] pays `O(threads)` per
//! access. Almost all variables are read and written in a totally ordered
//! way, so their history compresses to a single *epoch* `c@t` — the clock
//! of the last access and the thread that performed it. Vectors are kept
//! only for genuinely read-shared variables. The two detectors report
//! exactly the same racy variables; the differential tests in the
//! integration crate verify that.
//!
//! The same compression idiom — cache the one access that dominates the
//! recent history and compare against it before doing full work — is reused
//! by the core engine's happens-before hot path: `velodrome`'s per-thread
//! epoch cache short-circuits edge insertions whose predecessor step was
//! already a no-op for the current transaction, exactly as an [`Epoch`]
//! short-circuits a full vector-clock comparison here.

use crate::clock::VectorClock;
use std::collections::{HashMap, HashSet};
use velodrome_events::{LockId, Op, ThreadId, VarId};
use velodrome_monitor::tool::{Tool, Warning, WarningCategory};

/// A scalar clock value paired with the thread that produced it (`c@t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// The thread.
    pub t: ThreadId,
    /// Its clock at the access.
    pub c: u64,
}

impl Epoch {
    /// The bottom epoch: happens-before everything.
    pub const BOTTOM: Epoch = Epoch {
        t: ThreadId::new(0),
        c: 0,
    };

    /// Does this epoch happen-before (or equal) the clock `vc`?
    pub fn le(self, vc: &VectorClock) -> bool {
        self.c <= vc.get(self.t)
    }
}

#[derive(Debug, Clone)]
enum ReadState {
    /// All reads so far are totally ordered; only the last matters.
    Epoch(Epoch),
    /// Concurrent readers: fall back to a full vector.
    Vector(VectorClock),
}

#[derive(Debug)]
struct VarState {
    write: Epoch,
    read: ReadState,
}

impl Default for VarState {
    fn default() -> Self {
        Self {
            write: Epoch::BOTTOM,
            read: ReadState::Epoch(Epoch::BOTTOM),
        }
    }
}

/// The epoch-optimized happens-before race detector.
///
/// # Examples
///
/// ```
/// use velodrome_events::TraceBuilder;
/// use velodrome_monitor::run_tool;
/// use velodrome_vclock::FastTrack;
///
/// let mut b = TraceBuilder::new();
/// b.write("T1", "x");
/// b.write("T2", "x"); // unsynchronized: concurrent writes
/// let mut detector = FastTrack::new();
/// let warnings = run_tool(&mut detector, &b.finish());
/// assert_eq!(warnings.len(), 1);
/// assert_eq!(detector.inflations(), 0, "no read sharing, no vectors");
/// ```
#[derive(Debug, Default)]
pub struct FastTrack {
    threads: HashMap<ThreadId, VectorClock>,
    locks: HashMap<LockId, VectorClock>,
    vars: HashMap<VarId, VarState>,
    reported: HashSet<VarId>,
    warnings: Vec<Warning>,
    races_detected: u64,
    /// Vector inflations performed (read-shared variables).
    inflations: u64,
}

impl FastTrack {
    /// Creates a detector with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Racy accesses observed (before per-variable deduplication).
    pub fn races_detected(&self) -> u64 {
        self.races_detected
    }

    /// Number of read states inflated from epoch to vector.
    pub fn inflations(&self) -> u64 {
        self.inflations
    }

    /// The set of variables flagged racy so far.
    pub fn racy_vars(&self) -> &HashSet<VarId> {
        &self.reported
    }

    fn clock_mut(&mut self, t: ThreadId) -> &mut VectorClock {
        self.threads.entry(t).or_insert_with(|| {
            let mut c = VectorClock::new();
            c.inc(t);
            c
        })
    }

    fn report(&mut self, t: ThreadId, x: VarId, index: usize, kind: &str) {
        self.races_detected += 1;
        if !self.reported.insert(x) {
            return;
        }
        self.warnings.push(Warning {
            tool: "fasttrack",
            category: WarningCategory::Race,
            label: None,
            thread: t,
            op_index: index,
            message: format!("{kind} race on {x} by {t}"),
            details: None,
        });
    }
}

impl Tool for FastTrack {
    fn name(&self) -> &'static str {
        "fasttrack"
    }

    fn op(&mut self, index: usize, op: Op) {
        match op {
            Op::Acquire { t, m } => {
                let lock = self.locks.get(&m).cloned().unwrap_or_default();
                self.clock_mut(t).join(&lock);
            }
            Op::Release { t, m } => {
                let c = self.clock_mut(t).clone();
                self.locks.insert(m, c);
                self.clock_mut(t).inc(t);
            }
            Op::Fork { t, child } => {
                let parent = self.clock_mut(t).clone();
                self.clock_mut(child).join(&parent);
                self.clock_mut(t).inc(t);
            }
            Op::Join { t, child } => {
                let done = self.clock_mut(child).clone();
                self.clock_mut(t).join(&done);
                self.clock_mut(child).inc(child);
            }
            Op::Read { t, x } => {
                let ct = self.clock_mut(t).clone();
                let mine = Epoch { t, c: ct.get(t) };
                let st = self.vars.entry(x).or_default();
                let mut racy = false;
                if !st.write.le(&ct) {
                    racy = true;
                }
                match &mut st.read {
                    ReadState::Epoch(e) => {
                        if *e == mine || e.le(&ct) {
                            // Totally ordered: stay in epoch representation.
                            st.read = ReadState::Epoch(mine);
                        } else {
                            // Concurrent reader: inflate.
                            let mut v = VectorClock::new();
                            v.set(e.t, e.c);
                            v.set(t, mine.c);
                            st.read = ReadState::Vector(v);
                            self.inflations += 1;
                        }
                    }
                    ReadState::Vector(v) => v.set(t, mine.c),
                }
                if racy {
                    self.report(t, x, index, "write-read");
                }
            }
            Op::Write { t, x } => {
                let ct = self.clock_mut(t).clone();
                let mine = Epoch { t, c: ct.get(t) };
                let st = self.vars.entry(x).or_default();
                let racy_w = !st.write.le(&ct);
                let racy_r = match &st.read {
                    ReadState::Epoch(e) => !e.le(&ct),
                    ReadState::Vector(v) => !v.le(&ct),
                };
                st.write = mine;
                // Reads before this write are now ordered through it.
                st.read = ReadState::Epoch(Epoch::BOTTOM);
                if racy_w {
                    self.report(t, x, index, "write-write");
                } else if racy_r {
                    self.report(t, x, index, "read-write");
                }
            }
            Op::Begin { .. } | Op::End { .. } => {}
        }
    }

    fn take_warnings(&mut self) -> Vec<Warning> {
        std::mem::take(&mut self.warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome_events::TraceBuilder;
    use velodrome_monitor::run_tool;

    fn races(build: impl FnOnce(&mut TraceBuilder)) -> usize {
        let mut b = TraceBuilder::new();
        build(&mut b);
        let mut d = FastTrack::new();
        run_tool(&mut d, &b.finish()).len()
    }

    #[test]
    fn unsynchronized_write_write_is_a_race() {
        assert_eq!(
            races(|b| {
                b.write("T1", "x").write("T2", "x");
            }),
            1
        );
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        assert_eq!(
            races(|b| {
                b.acquire("T1", "m").write("T1", "x").release("T1", "m");
                b.acquire("T2", "m").write("T2", "x").release("T2", "m");
            }),
            0
        );
    }

    #[test]
    fn read_shared_data_inflates_but_does_not_race() {
        let mut b = TraceBuilder::new();
        b.write("T1", "x"); // exclusive init
        b.acquire("T1", "m").release("T1", "m");
        b.acquire("T2", "m").release("T2", "m");
        b.acquire("T3", "m").release("T3", "m");
        // T2 and T3 read concurrently with each other (ordered after T1).
        b.read("T2", "x").read("T3", "x");
        let mut d = FastTrack::new();
        let warnings = run_tool(&mut d, &b.finish());
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(d.inflations(), 1, "concurrent readers inflate once");
    }

    #[test]
    fn exclusive_rereads_stay_in_epoch_representation() {
        let mut b = TraceBuilder::new();
        for _ in 0..10 {
            b.read("T1", "x").write("T1", "x");
        }
        let mut d = FastTrack::new();
        let warnings = run_tool(&mut d, &b.finish());
        assert!(warnings.is_empty());
        assert_eq!(d.inflations(), 0, "same-thread traffic needs no vectors");
    }

    #[test]
    fn concurrent_read_then_write_races() {
        assert_eq!(
            races(|b| {
                b.read("T1", "x");
                b.write("T2", "x");
            }),
            1
        );
    }

    #[test]
    fn fork_join_orders_accesses() {
        assert_eq!(
            races(|b| {
                b.write("T1", "x");
                b.fork("T1", "T2");
                b.write("T2", "x");
                b.join("T1", "T2");
                b.read("T1", "x");
            }),
            0
        );
    }

    #[test]
    fn epoch_bottom_precedes_everything() {
        let vc = VectorClock::new();
        assert!(Epoch::BOTTOM.le(&vc));
        let e = Epoch {
            t: ThreadId::new(1),
            c: 3,
        };
        assert!(!e.le(&vc));
    }
}
