//! AeroDrome-style vector-clock atomicity screening.
//!
//! Velodrome's graph engine pays node/edge maintenance for every
//! transaction even on the (overwhelmingly common) serializable prefix of a
//! trace. Mathur & Viswanathan's AeroDrome algorithm ("Atomicity Checking
//! in Linear Time using Vector Clocks") computes an atomicity verdict with
//! per-thread transactional vector clocks instead: each thread `t` carries
//! a clock `C_t`; entering an outermost atomic block increments `t`'s own
//! component, and that component value is the transaction's *local time*.
//! Every conflict edge the graph engine would draw (last write per
//! variable, reads-since-last-write per variable, last release per lock,
//! fork/join) becomes a clock join, and a transaction is doomed exactly
//! when it *observes its own time*: thread `t`, inside an active
//! transaction, joins a clock whose `t` component already carries the
//! current transaction's time — someone else is ordered after this
//! transaction, and this transaction is now ordered after them.
//!
//! Two refinements make the screen usable as a sound pre-filter for the
//! full engine (see `velodrome::hybrid`):
//!
//! * **Live joins.** When the joined value was published by a transaction
//!   that is *still active*, the publisher's current clock is joined
//!   instead of the published snapshot (everything the active transaction
//!   does — including dependencies it acquired after publishing — precedes
//!   the observer), and the publisher's transaction is marked `observed`.
//! * **Escalation flags.** Clocks compose along graph paths only when edge
//!   creation times are monotone along the path. The one place that fails
//!   is an active, already-observed transaction acquiring a *new*
//!   dependency: its observers' clocks are now stale. Whenever a join
//!   grows the clock of a thread inside an observed active transaction the
//!   screen raises [`Screen::escalate`] — a conservative "a cycle may form
//!   that these clocks cannot see" signal. Every cycle the graph engine
//!   can detect is preceded (or met) by a definite violation or an
//!   escalation flag, so a hybrid checker that switches to the graph
//!   engine on the first flag reproduces every Velodrome warning.
//!
//! The per-thread *version* counter is the FastTrack epoch idiom applied
//! to whole clocks: a publisher's version is bumped whenever its clock
//! grows, published entries carry the version they were snapshotted at,
//! and each thread remembers the last version per publisher it has fully
//! joined — a repeat join of an unchanged clock is a counter bump instead
//! of an `O(threads)` comparison.

use crate::clock::VectorClock;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use velodrome_events::{Label, LockId, Op, ThreadId, VarId};
use velodrome_monitor::tool::{PerLabelDedup, Tool, Warning, WarningCategory};

/// Outcome of screening one operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Screen {
    /// A transaction observed its own time: the trace prefix is
    /// definitely non-serializable.
    pub violation: bool,
    /// The clocks can no longer be trusted to see every future cycle
    /// (set on every violation, and on every join that grows the clock
    /// of an observed active transaction). A hybrid checker must engage
    /// the graph engine at or before this operation.
    pub escalate: bool,
}

impl Screen {
    fn merge(&mut self, other: Screen) {
        self.violation |= other.violation;
        self.escalate |= other.escalate;
    }
}

/// A published clock value: the last write per variable, the reads since
/// the last write per variable and thread, the last release per lock.
#[derive(Debug, Clone)]
struct Entry {
    /// The publishing thread.
    thread: ThreadId,
    /// The publisher's transaction time at publish (its own clock
    /// component; outside a transaction, the component of its last one).
    time: u64,
    /// The publisher's clock version at publish (epoch fast path).
    version: u64,
    /// Snapshot of the publisher's clock at publish.
    clock: VectorClock,
}

#[derive(Debug, Default)]
struct ThreadState {
    clock: VectorClock,
    /// Bumped whenever `clock` grows (including the `begin` increment).
    version: u64,
    /// Per publisher thread: the highest version of that publisher's clock
    /// fully joined into `clock` by a *direct* join.
    seen: Vec<u64>,
    /// Nesting depth of open atomic blocks.
    depth: usize,
    /// The active transaction's local time (valid while `depth > 0`).
    txn_time: u64,
    /// Whether another thread has observed (live-joined) the active
    /// transaction. Cleared on outermost `begin`.
    observed: bool,
    /// Outermost open block label, for warning attribution.
    label: Option<Label>,
}

/// Counters for one screening run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AeroDromeStats {
    /// Operations observed.
    pub events: u64,
    /// Conflict-edge joins attempted (including fast-pathed ones).
    pub joins: u64,
    /// Joins resolved against a still-active publisher's live clock.
    pub live_joins: u64,
    /// Joins skipped because the publisher's clock version was already
    /// fully absorbed (the FastTrack-style fast path).
    pub epoch_hits: u64,
    /// Joins that actually grew the joining thread's clock.
    pub clock_growths: u64,
    /// Definite own-time violations.
    pub violations: u64,
    /// Conservative escalation flags raised without a definite violation.
    pub potential_flags: u64,
}

impl fmt::Display for AeroDromeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events, {} joins ({} live, {} epoch hits, {} growths), \
             {} violations, {} potential flags",
            self.events,
            self.joins,
            self.live_joins,
            self.epoch_hits,
            self.clock_growths,
            self.violations,
            self.potential_flags
        )
    }
}

/// The vector-clock atomicity screen.
///
/// As a standalone [`Tool`] it reports only *definite* violations
/// (transactions that observed their own time); escalation flags are
/// counted in [`AeroDromeStats::potential_flags`] and surfaced through
/// [`step`](Self::step) for the hybrid checker.
///
/// # Examples
///
/// ```
/// use velodrome_events::TraceBuilder;
/// use velodrome_monitor::run_tool;
/// use velodrome_vclock::AeroDrome;
///
/// // Thread 2's write interleaves with thread 1's read-modify-write.
/// let mut b = TraceBuilder::new();
/// b.begin("T1", "increment").read("T1", "counter");
/// b.write("T2", "counter");
/// b.write("T1", "counter").end("T1");
/// let mut screen = AeroDrome::new();
/// let warnings = run_tool(&mut screen, &b.finish());
/// assert_eq!(warnings.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct AeroDrome {
    threads: Vec<ThreadState>,
    /// `W`: last write per variable.
    w: HashMap<VarId, Entry>,
    /// `R`: reads since the last write, per variable and thread (ordered
    /// so join order — and thus first-flag indices — is deterministic).
    r: HashMap<VarId, BTreeMap<ThreadId, Entry>>,
    /// `U`: last release per lock.
    u: HashMap<LockId, Entry>,
    warnings: Vec<Warning>,
    dedup: PerLabelDedup,
    stats: AeroDromeStats,
}

impl AeroDrome {
    /// Creates a screen with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters for the run so far.
    pub fn stats(&self) -> AeroDromeStats {
        self.stats
    }

    fn thread_mut(&mut self, t: ThreadId) -> &mut ThreadState {
        let idx = t.index();
        if idx >= self.threads.len() {
            self.threads.resize_with(idx + 1, ThreadState::default);
        }
        &mut self.threads[idx]
    }

    /// Publishes thread `t`'s current clock as an entry.
    fn publish(&mut self, t: ThreadId) -> Entry {
        let st = self.thread_mut(t);
        Entry {
            thread: t,
            time: if st.depth > 0 {
                st.txn_time
            } else {
                st.clock.get(t)
            },
            version: st.version,
            clock: st.clock.clone(),
        }
    }

    /// Joins a published entry into thread `t`'s clock, resolving against
    /// the publisher's live clock when its transaction is still active,
    /// and returns the screening outcome for this edge.
    fn join_entry(&mut self, t: ThreadId, e: &Entry) -> Screen {
        let mut out = Screen::default();
        self.stats.joins += 1;
        if e.thread == t {
            // Program order: already contained in the thread's own clock.
            return out;
        }
        self.thread_mut(t);
        let up = self.thread_mut(e.thread);
        let live = up.depth > 0 && up.txn_time == e.time;
        let pub_version = up.version;
        let seen = self.threads[t.index()]
            .seen
            .get(e.thread.index())
            .copied()
            .unwrap_or(0);
        // Epoch fast path: everything this entry (or, for a live
        // publisher, its whole current clock) carries was already joined
        // directly. Safe to skip the comparison, the join, and — for live
        // publishers — the `observed` mark: the direct join that advanced
        // `seen` this far necessarily happened inside the same publisher
        // transaction (versions are bumped at `begin`) and marked it then.
        if seen >= if live { pub_version } else { e.version } {
            self.stats.epoch_hits += 1;
            return out;
        }
        let live_clock = if live {
            self.stats.live_joins += 1;
            self.threads[e.thread.index()].observed = true;
            Some(self.threads[e.thread.index()].clock.clone())
        } else {
            None
        };
        let (v, new_seen) = match &live_clock {
            Some(c) => (c, pub_version),
            None => (&e.clock, e.version),
        };
        let st = &mut self.threads[t.index()];
        if st.depth > 0 && v.get(t) >= st.txn_time {
            // The joined value already carries this transaction's time:
            // someone is ordered after us, and we are now ordered after
            // them. A definite cycle.
            out.violation = true;
            out.escalate = true;
        }
        if !v.le(&st.clock) {
            if st.depth > 0 && st.observed {
                // An observed active transaction gained a new dependency:
                // clocks already handed to its observers are stale, so a
                // cycle through them could go unseen. Escalate.
                out.escalate = true;
            }
            st.clock.join(v);
            st.version += 1;
            self.stats.clock_growths += 1;
        }
        if st.seen.len() <= e.thread.index() {
            st.seen.resize(e.thread.index() + 1, 0);
        }
        st.seen[e.thread.index()] = st.seen[e.thread.index()].max(new_seen);
        out
    }

    fn note(&mut self, out: Screen, t: ThreadId, op: Op, idx: usize) {
        if out.violation {
            self.stats.violations += 1;
            let label = self.thread_mut(t).label;
            if self.dedup.first_report(label) {
                let block = match label {
                    Some(l) => format!("atomic block {l}"),
                    None => "an atomic block".to_string(),
                };
                self.warnings.push(Warning {
                    tool: "aerodrome",
                    category: WarningCategory::Atomicity,
                    label,
                    thread: t,
                    op_index: idx,
                    message: format!(
                        "{block} observes its own transaction time at {op}: \
                         the trace is not conflict-serializable"
                    ),
                    details: None,
                });
            }
        } else if out.escalate {
            self.stats.potential_flags += 1;
        }
    }

    /// Screens one operation and reports whether it definitely violates
    /// atomicity and whether a hybrid checker must escalate to the graph
    /// engine. This is the entry point `velodrome`'s hybrid backend uses;
    /// the [`Tool`] impl wraps it with warning emission.
    pub fn step(&mut self, idx: usize, op: Op) -> Screen {
        self.stats.events += 1;
        let mut out = Screen::default();
        match op {
            Op::Begin { t, l } => {
                let st = self.thread_mut(t);
                if st.depth == 0 {
                    st.clock.inc(t);
                    st.version += 1;
                    st.txn_time = st.clock.get(t);
                    st.observed = false;
                    st.label = Some(l);
                }
                st.depth += 1;
            }
            Op::End { t } => {
                let st = self.thread_mut(t);
                if st.depth > 0 {
                    st.depth -= 1;
                    if st.depth == 0 {
                        st.label = None;
                    }
                }
            }
            Op::Read { t, x } => {
                if let Some(e) = self.w.get(&x).cloned() {
                    out.merge(self.join_entry(t, &e));
                }
                let entry = self.publish(t);
                self.r.entry(x).or_default().insert(t, entry);
            }
            Op::Write { t, x } => {
                if let Some(e) = self.w.get(&x).cloned() {
                    out.merge(self.join_entry(t, &e));
                }
                let reads: Vec<Entry> = self
                    .r
                    .get(&x)
                    .map(|per| per.values().cloned().collect())
                    .unwrap_or_default();
                for e in &reads {
                    out.merge(self.join_entry(t, e));
                }
                let entry = self.publish(t);
                self.w.insert(x, entry);
                if let Some(per) = self.r.get_mut(&x) {
                    per.clear();
                }
            }
            Op::Acquire { t, m } => {
                if let Some(e) = self.u.get(&m).cloned() {
                    out.merge(self.join_entry(t, &e));
                }
            }
            Op::Release { t, m } => {
                let entry = self.publish(t);
                self.u.insert(m, entry);
            }
            Op::Fork { t, child } => {
                let entry = self.publish(t);
                out.merge(self.join_entry(child, &entry));
            }
            Op::Join { t, child } => {
                let entry = self.publish(child);
                out.merge(self.join_entry(t, &entry));
            }
        }
        self.note(out, op.tid(), op, idx);
        out
    }
}

impl Tool for AeroDrome {
    fn name(&self) -> &'static str {
        "aerodrome"
    }

    fn op(&mut self, index: usize, op: Op) {
        self.step(index, op);
    }

    fn take_warnings(&mut self) -> Vec<Warning> {
        std::mem::take(&mut self.warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome_events::{Trace, TraceBuilder};
    use velodrome_monitor::run_tool;

    fn screen_trace(trace: &Trace) -> (Vec<Warning>, AeroDromeStats, Option<usize>) {
        let mut s = AeroDrome::new();
        let mut first_flag = None;
        for (i, op) in trace.iter() {
            let out = s.step(i, op);
            if out.escalate && first_flag.is_none() {
                first_flag = Some(i);
            }
        }
        (std::mem::take(&mut s.warnings), s.stats(), first_flag)
    }

    #[test]
    fn interleaved_rmw_is_a_definite_violation() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc").read("T1", "x");
        b.write("T2", "x");
        b.write("T1", "x").end("T1");
        let (warnings, stats, flag) = screen_trace(&b.finish());
        assert_eq!(warnings.len(), 1);
        assert_eq!(stats.violations, 1);
        assert_eq!(flag, Some(3), "flagged at T1's re-write");
        assert!(warnings[0].message.contains("observes its own transaction"));
    }

    #[test]
    fn serialized_rmw_is_clean() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc").read("T1", "x").write("T1", "x");
        b.end("T1");
        b.begin("T2", "inc").read("T2", "x").write("T2", "x");
        b.end("T2");
        let (warnings, stats, flag) = screen_trace(&b.finish());
        assert!(warnings.is_empty());
        assert_eq!(stats.violations, 0);
        assert_eq!(flag, None);
    }

    #[test]
    fn late_dependency_cycle_raises_escalation_before_closing() {
        // A -> B -> C -> A, where B's dependency on A arrives only after
        // C snapshotted B: no thread ever observes its own time through
        // the snapshots, so the definite check alone would miss the
        // cycle. The escalation flag must fire when B (active, already
        // observed by C) grows its clock.
        let mut b = TraceBuilder::new();
        b.begin("B", "b").write("B", "x");
        b.begin("A", "a").write("A", "y");
        b.begin("C", "c").read("C", "x"); // C observes B (live).
        b.read("B", "y"); // B gains A *after* being observed.
        b.write("C", "z").end("C");
        b.read("A", "z").end("A");
        b.end("B");
        let trace = b.finish();
        let (_, stats, flag) = screen_trace(&trace);
        assert!(
            flag.is_some() && flag.unwrap() <= 6,
            "escalation must fire at or before B's read of y (flag: {flag:?})"
        );
        assert!(stats.potential_flags >= 1);
        // The graph engine does find this cycle — the integration crate's
        // corpus test (`three_txn_late_edge`) pins that agreement.
    }

    #[test]
    fn cycle_through_own_earlier_transaction_is_flagged() {
        // T1's *finished* first transaction and its active second one
        // both participate in a cycle with T2's long transaction. The
        // cycle closes on an edge from T1's own old write, which the
        // screen cannot see from T1's side; it must fire from T2's.
        let mut b = TraceBuilder::new();
        b.begin("T2", "long").write("T2", "b");
        b.begin("T1", "old").read("T1", "b"); // old observes T2 (live).
        b.write("T1", "x").end("T1");
        b.begin("T1", "cur").write("T1", "y");
        b.read("T2", "y"); // T2 now after `cur`... and before `old`.
        b.end("T2");
        b.read("T1", "x").end("T1"); // engine closes the cycle here.
        let trace = b.finish();
        let (warnings, _, flag) = screen_trace(&trace);
        assert!(!warnings.is_empty(), "T2 observes its own time");
        assert!(flag.unwrap() <= 8, "flag at T2's read of y: {flag:?}");
        // The corpus test (`finished_middle_txn`) pins the engine's
        // agreement on this trace.
    }

    #[test]
    fn fanin_stress_never_escalates_and_hits_the_fast_path() {
        // The serializable fan-in stress workload: every thread does its
        // reads before being observed, and later rounds re-join clocks
        // that have not grown — the epoch fast path absorbs them.
        let mut b = TraceBuilder::new();
        let threads: Vec<String> = (0..4).map(|i| format!("T{i}")).collect();
        let vars: Vec<String> = (0..4).map(|i| format!("v{i}")).collect();
        for w in 0..3 {
            for (t, v) in threads.iter().zip(&vars) {
                b.begin(t, &format!("wave{w}"));
                b.write(t, v);
            }
            for _ in 0..2 {
                for (i, t) in threads.iter().enumerate() {
                    for v in vars[..i].iter().rev() {
                        b.read(t, v);
                    }
                }
            }
            for t in &threads {
                b.end(t);
            }
        }
        let (warnings, stats, flag) = screen_trace(&b.finish());
        assert!(warnings.is_empty());
        assert_eq!(flag, None, "no escalation on the serializable workload");
        // Every round-2 re-join is absorbed by the fast path: 3 waves of
        // 6 repeated reads each.
        assert!(stats.epoch_hits >= 18, "{stats}");
    }

    #[test]
    fn fork_based_violation_is_definite() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "parent").write("T1", "x");
        b.fork("T1", "T2");
        b.write("T2", "x");
        b.read("T1", "x").end("T1");
        let (warnings, stats, _) = screen_trace(&b.finish());
        assert_eq!(warnings.len(), 1);
        assert_eq!(stats.violations, 1);
    }

    #[test]
    fn fork_join_ordering_is_clean() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "parent").write("T1", "x");
        b.fork("T1", "T2");
        b.read("T1", "x").end("T1");
        b.write("T2", "x");
        b.join("T1", "T2");
        b.begin("T1", "after").read("T1", "x").end("T1");
        let (warnings, _, flag) = screen_trace(&b.finish());
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(flag, None);
    }

    #[test]
    fn lock_cycle_within_one_transaction_is_definite() {
        // T1's transaction releases m, T2 acquires/releases it, and T1
        // re-acquires inside the same transaction: T2's critical section
        // is both after and before T1's transaction.
        let mut b = TraceBuilder::new();
        b.begin("T1", "t").acquire("T1", "m").release("T1", "m");
        b.acquire("T2", "m").release("T2", "m");
        b.acquire("T1", "m").release("T1", "m").end("T1");
        let (warnings, _, flag) = screen_trace(&b.finish());
        assert_eq!(warnings.len(), 1);
        assert!(flag.is_some());
    }

    #[test]
    fn non_transactional_conflicts_are_not_violations() {
        let mut b = TraceBuilder::new();
        b.write("T1", "x").write("T2", "x").read("T1", "x");
        b.end("T1"); // stray end: tolerated.
        let (warnings, stats, flag) = screen_trace(&b.finish());
        assert!(warnings.is_empty());
        assert_eq!(stats.violations, 0);
        assert_eq!(flag, None);
    }

    #[test]
    fn repeat_reads_hit_the_epoch_fast_path() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "init").write("T1", "x").end("T1");
        for _ in 0..8 {
            b.read("T2", "x");
        }
        let mut s = AeroDrome::new();
        run_tool(&mut s, &b.finish());
        let stats = s.stats();
        assert!(stats.epoch_hits >= 7, "{stats}");
        assert_eq!(stats.clock_growths, 1, "{stats}");
    }

    #[test]
    fn per_label_dedup_reports_each_block_once() {
        let mut b = TraceBuilder::new();
        for _ in 0..3 {
            b.begin("T1", "inc").read("T1", "x");
            b.write("T2", "x");
            b.write("T1", "x").end("T1");
        }
        let (warnings, stats, _) = screen_trace(&b.finish());
        assert_eq!(warnings.len(), 1, "one warning per label");
        assert!(stats.violations >= 1);
    }
}
