//! Vector clocks over thread identifiers.

use std::fmt;
use velodrome_events::ThreadId;

/// A vector clock: one logical timestamp per thread, absent entries being
/// zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    entries: Vec<u64>,
}

impl VectorClock {
    /// The all-zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The component for thread `t`.
    pub fn get(&self, t: ThreadId) -> u64 {
        self.entries.get(t.index()).copied().unwrap_or(0)
    }

    /// Sets the component for thread `t`.
    pub fn set(&mut self, t: ThreadId, value: u64) {
        if t.index() >= self.entries.len() {
            self.entries.resize(t.index() + 1, 0);
        }
        self.entries[t.index()] = value;
    }

    /// Increments thread `t`'s component.
    pub fn inc(&mut self, t: ThreadId) {
        let v = self.get(t);
        self.set(t, v + 1);
    }

    /// Pointwise maximum (join) with another clock.
    pub fn join(&mut self, other: &VectorClock) {
        if other.entries.len() > self.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        for (i, &v) in other.entries.iter().enumerate() {
            if v > self.entries[i] {
                self.entries[i] = v;
            }
        }
    }

    /// Pointwise comparison: does every component of `self` not exceed the
    /// corresponding component of `other`?
    pub fn le(&self, other: &VectorClock) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.entries.get(i).copied().unwrap_or(0))
    }

    /// Whether both clocks are incomparable (concurrent).
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Whether the clock is all zeros.
    pub fn is_zero(&self) -> bool {
        self.entries.iter().all(|&v| v == 0)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn get_set_inc() {
        let mut c = VectorClock::new();
        assert_eq!(c.get(t(3)), 0);
        c.set(t(3), 7);
        assert_eq!(c.get(t(3)), 7);
        c.inc(t(3));
        assert_eq!(c.get(t(3)), 8);
        c.inc(t(0));
        assert_eq!(c.get(t(0)), 1);
    }

    #[test]
    fn join_takes_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(t(0), 5);
        a.set(t(1), 1);
        let mut b = VectorClock::new();
        b.set(t(1), 4);
        b.set(t(2), 2);
        a.join(&b);
        assert_eq!(a.get(t(0)), 5);
        assert_eq!(a.get(t(1)), 4);
        assert_eq!(a.get(t(2)), 2);
    }

    #[test]
    fn le_and_concurrency() {
        let mut a = VectorClock::new();
        a.set(t(0), 1);
        let mut b = VectorClock::new();
        b.set(t(0), 2);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(!a.concurrent_with(&b));
        let mut c = VectorClock::new();
        c.set(t(1), 1);
        assert!(a.concurrent_with(&c));
    }

    #[test]
    fn le_handles_length_mismatch() {
        let mut a = VectorClock::new();
        a.set(t(5), 1);
        let b = VectorClock::new();
        assert!(b.le(&a));
        assert!(!a.le(&b));
        assert!(VectorClock::new().is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn display_renders_entries() {
        let mut a = VectorClock::new();
        a.set(t(1), 3);
        assert_eq!(a.to_string(), "⟨0, 3⟩");
    }
}
