//! Vector clocks and a precise happens-before race detector.
//!
//! RoadRunner "includes several race detection algorithms (including Eraser
//! and a complete happens-before detector), which can be run concurrently
//! with Velodrome if race conditions are a concern" (Section 5). This crate
//! provides the complete happens-before detector: a DJIT⁺-style analysis
//! that reports a race iff two conflicting accesses are concurrent (neither
//! happens-before the other) in the observed trace — plus a FastTrack-style
//! epoch-optimized variant ([`fasttrack`]) that compresses totally ordered
//! access histories to scalar epochs, and an AeroDrome-style transactional
//! vector-clock *atomicity* screen ([`aerodrome`]) used by the core crate's
//! hybrid two-tier checker.

pub mod aerodrome;
pub mod clock;
pub mod detector;
pub mod fasttrack;

pub use aerodrome::{AeroDrome, AeroDromeStats, Screen};
pub use clock::VectorClock;
pub use detector::HbRaceDetector;
pub use fasttrack::{Epoch, FastTrack};
