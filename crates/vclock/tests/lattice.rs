//! Property tests: vector clocks form a join-semilattice and `le` is a
//! partial order compatible with `join`.

use proptest::prelude::*;
use velodrome_events::ThreadId;
use velodrome_vclock::VectorClock;

fn arb_clock() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u64..20, 0..6).prop_map(|entries| {
        let mut c = VectorClock::new();
        for (i, v) in entries.into_iter().enumerate() {
            c.set(ThreadId::new(i as u32), v);
        }
        c
    })
}

fn joined(a: &VectorClock, b: &VectorClock) -> VectorClock {
    let mut j = a.clone();
    j.join(b);
    j
}

proptest! {
    #[test]
    fn join_is_commutative(a in arb_clock(), b in arb_clock()) {
        let ab = joined(&a, &b);
        let ba = joined(&b, &a);
        // Equality up to trailing zeros: compare via mutual le.
        prop_assert!(ab.le(&ba) && ba.le(&ab));
    }

    #[test]
    fn join_is_associative(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        let left = joined(&joined(&a, &b), &c);
        let right = joined(&a, &joined(&b, &c));
        prop_assert!(left.le(&right) && right.le(&left));
    }

    #[test]
    fn join_is_idempotent_and_upper_bound(a in arb_clock(), b in arb_clock()) {
        let aa = joined(&a, &a);
        prop_assert!(aa.le(&a) && a.le(&aa));
        let ab = joined(&a, &b);
        prop_assert!(a.le(&ab));
        prop_assert!(b.le(&ab));
    }

    #[test]
    fn join_is_least_upper_bound(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        if a.le(&c) && b.le(&c) {
            prop_assert!(joined(&a, &b).le(&c));
        }
    }

    #[test]
    fn le_is_a_partial_order(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        prop_assert!(a.le(&a), "reflexive");
        if a.le(&b) && b.le(&a) {
            // Antisymmetry up to representation.
            prop_assert!(joined(&a, &b).le(&a));
        }
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c), "transitive");
        }
    }

    #[test]
    fn inc_strictly_increases(a in arb_clock(), t in 0u32..6) {
        let t = ThreadId::new(t);
        let mut bumped = a.clone();
        bumped.inc(t);
        prop_assert!(a.le(&bumped));
        prop_assert!(!bumped.le(&a));
        prop_assert_eq!(bumped.get(t), a.get(t) + 1);
    }

    #[test]
    fn concurrent_is_symmetric_and_irreflexive(a in arb_clock(), b in arb_clock()) {
        prop_assert_eq!(a.concurrent_with(&b), b.concurrent_with(&a));
        prop_assert!(!a.concurrent_with(&a));
    }
}
