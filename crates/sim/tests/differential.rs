//! Differential testing of the optimized happens-before hot path.
//!
//! The engine's redundant-edge elision gate and per-thread epoch cache are
//! pure performance optimizations: they must change *nothing* observable.
//! These properties pit the optimized engine against the unoptimized
//! baseline (`elide_redundant_edges: false`, which stores every redundant
//! edge) over randomized programs and schedulers, and assert:
//!
//! * warnings are byte-identical (serialized JSON compare);
//! * full cycle reports are identical (structural equality);
//! * cycle counts agree, and the serializability *verdict* also agrees with
//!   the naive Figure 2 engine (`merge: false`), with and without elision;
//! * the arena's internal invariants (`Arena::check_invariants`: ancestor
//!   exactness, edge symmetry, acyclicity, implied-edge witnesses) hold
//!   after every single operation in both configurations.

use proptest::prelude::*;
use velodrome::{Velodrome, VelodromeConfig};
use velodrome_events::Trace;
use velodrome_monitor::tool::Tool;
use velodrome_sim::{random_program, run_program, GenConfig, RandomScheduler};

fn random_trace(gen_seed: u64, sched_seed: u64) -> Option<Trace> {
    let program = random_program(&GenConfig::default(), gen_seed);
    let result = run_program(&program, RandomScheduler::new(sched_seed));
    (!result.deadlocked).then_some(result.trace)
}

fn engine_for(trace: &Trace, merge: bool, elide: bool) -> Velodrome {
    Velodrome::with_config(VelodromeConfig {
        merge,
        elide_redundant_edges: elide,
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    })
}

/// Runs the engine over the whole trace and returns (drained warnings as
/// JSON, engine).
fn run(trace: &Trace, merge: bool, elide: bool) -> (String, Velodrome) {
    let mut engine = engine_for(trace, merge, elide);
    for (i, &op) in trace.ops().iter().enumerate() {
        engine.op(i, op);
    }
    let warnings = engine.take_warnings();
    (
        serde_json::to_string(&warnings).expect("warnings serialize"),
        engine,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Optimized vs. baseline: identical warnings, reports, and cycle
    /// counts; all four merge × elide combinations agree on the verdict.
    #[test]
    fn optimized_engine_is_observationally_identical(
        gen_seed in 0u64..1_000_000,
        sched_seed in 0u64..1_000_000,
    ) {
        let Some(trace) = random_trace(gen_seed, sched_seed) else {
            return Err(proptest::Rejected);
        };
        let (warn_opt, eng_opt) = run(&trace, true, true);
        let (warn_base, eng_base) = run(&trace, true, false);
        prop_assert_eq!(&warn_opt, &warn_base, "warnings diverge");
        prop_assert_eq!(eng_opt.reports(), eng_base.reports(), "reports diverge");
        prop_assert_eq!(
            eng_opt.stats().cycles_detected,
            eng_base.stats().cycles_detected,
            "cycle counts diverge"
        );
        // The baseline never elides and never hits the epoch cache.
        prop_assert_eq!(eng_base.stats().edges_elided, 0);
        prop_assert_eq!(eng_base.stats().epoch_hits, 0);

        // Verdict agreement with the naive Figure 2 engine, both modes.
        let violated = !eng_opt.reports().is_empty();
        let (_, naive_opt) = run(&trace, false, true);
        let (_, naive_base) = run(&trace, false, false);
        prop_assert_eq!(!naive_opt.reports().is_empty(), violated, "naive+elide verdict diverges");
        prop_assert_eq!(!naive_base.reports().is_empty(), violated, "naive verdict diverges");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The arena invariants hold after every operation, in both the
    /// optimized and the baseline configuration (the oracle for the
    /// sorted-vec adjacency and the elision gate).
    #[test]
    fn arena_invariants_hold_after_every_op(
        gen_seed in 0u64..1_000_000,
        sched_seed in 0u64..1_000_000,
    ) {
        let Some(trace) = random_trace(gen_seed, sched_seed) else {
            return Err(proptest::Rejected);
        };
        for elide in [true, false] {
            let mut engine = engine_for(&trace, true, elide);
            for (i, &op) in trace.ops().iter().enumerate() {
                engine.op(i, op);
                engine.check_invariants();
            }
        }
    }
}
