//! Conformance of the executor to the Figure 1 semantics, as properties
//! over random programs and schedulers: traces are well-formed, locks are
//! mutually exclusive, phases are fork/join-ordered, and every event of the
//! program occurs per-thread in program order.

use proptest::prelude::*;
use velodrome_events::{semantics, Op, ThreadId};
use velodrome_sim::{
    random_program, run_program, GenConfig, PctScheduler, ProgramBuilder, RandomScheduler,
    RoundRobin, Scheduler, Sticky, Stmt,
};

fn check_trace_invariants(trace: &velodrome_events::Trace) {
    assert_eq!(semantics::validate(trace), Ok(()));
    // Mutual exclusion, directly.
    let mut holder: Option<(velodrome_events::LockId, ThreadId)> = None;
    let mut holders = std::collections::HashMap::new();
    for (_, op) in trace.iter() {
        match op {
            Op::Acquire { t, m } => {
                assert!(holders.insert(m, t).is_none(), "double acquire of {m}");
            }
            Op::Release { t, m } => {
                assert_eq!(holders.remove(&m), Some(t), "release by non-holder");
            }
            _ => {}
        }
    }
    let _ = holder.take();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_scheduler_conformance(gen_seed in 0u64..5_000, sched_seed in 0u64..5_000) {
        let program = random_program(&GenConfig::default(), gen_seed);
        let result = run_program(&program, RandomScheduler::new(sched_seed));
        prop_assume!(!result.deadlocked);
        check_trace_invariants(&result.trace);
    }

    #[test]
    fn every_scheduler_produces_the_same_multiset_of_events(seed in 0u64..2_000) {
        // Different schedulers, same program: the *set* of per-thread event
        // sequences is identical (only the interleaving differs).
        let program = random_program(&GenConfig::default(), seed);
        let mut per_sched: Vec<Vec<Vec<Op>>> = Vec::new();
        let scheds: Vec<Box<dyn Scheduler>> = vec![
            Box::new(RoundRobin::new()),
            Box::new(RandomScheduler::new(seed)),
            Box::new(Sticky::new()),
            Box::new(PctScheduler::new(seed, 4_000, 3)),
        ];
        for sched in scheds {
            let result = run_program(&program, sched);
            prop_assume!(!result.deadlocked);
            check_trace_invariants(&result.trace);
            // Project per-thread sequences.
            let threads = result.trace.threads();
            let mut seqs = Vec::new();
            for t in threads {
                let seq: Vec<Op> = result
                    .trace
                    .ops()
                    .iter()
                    .copied()
                    .filter(|op| op.tid() == t)
                    .collect();
                seqs.push(seq);
            }
            seqs.sort_by_key(|s| s.first().map(|o| o.tid().raw()));
            per_sched.push(seqs);
        }
        for pair in per_sched.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1], "per-thread projections differ");
        }
    }

    #[test]
    fn phase_ordering_is_absolute(seed in 0u64..2_000) {
        // Two-phase program: every event of phase-1 workers precedes every
        // event of phase-2 workers, under any scheduler.
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.worker(vec![Stmt::Loop(3, vec![Stmt::Write(x)])]); // T1 (phase 1)
        b.new_phase();
        b.worker(vec![Stmt::Loop(3, vec![Stmt::Read(x)])]); // T2 (phase 2)
        b.worker(vec![Stmt::Loop(3, vec![Stmt::Read(x)])]); // T3 (phase 2)
        let p = b.finish();
        let result = run_program(&p, RandomScheduler::new(seed));
        prop_assert!(!result.deadlocked);
        let ops = result.trace.ops();
        let last_p1 = ops.iter().rposition(|o| o.tid() == ThreadId::new(1));
        let first_p2 = ops
            .iter()
            .position(|o| o.tid() == ThreadId::new(2) || o.tid() == ThreadId::new(3));
        if let (Some(a), Some(b_)) = (last_p1, first_p2) {
            prop_assert!(a < b_, "phase-1 event after phase-2 started");
        }
    }
}
