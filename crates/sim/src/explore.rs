//! Exhaustive interleaving exploration (stateless model checking).
//!
//! The paper's related work (Section 7) discusses verifying atomicity with
//! model checking (Hatcliff et al.), "feasible for unit testing, where the
//! reachable state space is relatively small". This module provides that
//! capability for the simulator: it enumerates *every* schedule of a small
//! program by systematic re-execution, so tests can prove properties over
//! all interleavings — e.g. that a pattern claimed atomic by the workload
//! ground truth has no violating schedule at all.
//!
//! The exploration is depth-first over scheduler decision prefixes: each
//! run follows a forced prefix of choices, defaults to the first runnable
//! thread afterwards, and records the branching factor at every step so
//! unexplored siblings can be enqueued. Equivalent to stateless model
//! checking by re-execution (no state snapshots needed, since the
//! interpreter is deterministic given its choices).

use crate::exec::Executor;
use crate::ir::Program;
use crate::sched::{SchedView, Scheduler};
use velodrome_events::Trace;

/// Bounds on the exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Maximum number of complete traces to produce.
    pub max_traces: usize,
    /// Maximum scheduler steps per run (runaway guard).
    pub max_steps: u64,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        Self {
            max_traces: 50_000,
            max_steps: 100_000,
        }
    }
}

/// Result of an exploration.
#[derive(Debug)]
pub struct ExploreResult {
    /// Complete traces, in depth-first order.
    pub traces: Vec<Trace>,
    /// `true` when enumeration stopped at [`ExploreLimits::max_traces`]
    /// before covering the whole schedule space.
    pub truncated: bool,
}

/// Follows a forced choice prefix, then always picks choice 0; records the
/// branching factor and the choice taken at every step.
struct PrefixScheduler<'a> {
    prefix: &'a [usize],
    taken: Vec<usize>,
    branching: Vec<usize>,
}

impl Scheduler for PrefixScheduler<'_> {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        let step = self.taken.len();
        let choice = self
            .prefix
            .get(step)
            .copied()
            .unwrap_or(0)
            .min(view.runnable.len() - 1);
        self.taken.push(choice);
        self.branching.push(view.runnable.len());
        choice
    }
}

/// Enumerates every schedule of `program` (up to the limits), returning the
/// produced traces. Deadlocked schedules are included as their (partial)
/// traces, so callers can also detect deadlock possibilities.
pub fn explore(program: &Program, limits: ExploreLimits) -> ExploreResult {
    let mut pending: Vec<Vec<usize>> = vec![Vec::new()];
    let mut traces = Vec::new();
    let mut truncated = false;
    while let Some(prefix) = pending.pop() {
        if traces.len() >= limits.max_traces {
            truncated = true;
            break;
        }
        let mut sched = PrefixScheduler {
            prefix: &prefix,
            taken: Vec::new(),
            branching: Vec::new(),
        };
        let result = Executor::new(program, &mut sched)
            .with_max_steps(limits.max_steps)
            .run();
        // Enqueue unexplored siblings: at every decision past the prefix
        // with more than one option, branch to each alternative. Reverse
        // order keeps the exploration depth-first in choice order.
        for i in (prefix.len()..sched.taken.len()).rev() {
            for alt in (1..sched.branching[i]).rev() {
                let mut next = sched.taken[..i].to_vec();
                next.push(alt);
                pending.push(next);
            }
        }
        traces.push(result.trace);
    }
    ExploreResult { traces, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;
    use crate::Stmt;
    use velodrome_events::{oracle, semantics};

    fn two_step_program() -> Program {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.worker(vec![Stmt::Write(x)]);
        b.worker(vec![Stmt::Read(x)]);
        b.finish()
    }

    #[test]
    fn enumerates_all_interleavings_of_a_tiny_program() {
        let p = two_step_program();
        let result = explore(&p, ExploreLimits::default());
        assert!(!result.truncated);
        // Main forks/joins deterministically; the two worker ops interleave
        // in both orders. All traces are distinct and well-formed.
        let mut seen = std::collections::HashSet::new();
        for t in &result.traces {
            assert_eq!(semantics::validate(t), Ok(()));
            seen.insert(format!("{t}"));
        }
        assert_eq!(seen.len(), result.traces.len(), "no duplicate schedules");
        assert!(
            result.traces.len() >= 2,
            "both orders of the conflicting pair"
        );
    }

    #[test]
    fn locked_pattern_is_atomic_in_every_interleaving() {
        // Exhaustive proof (for this size) that the locked RMW is atomic.
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        let l = b.label("inc");
        let body = vec![Stmt::Atomic(
            l,
            vec![Stmt::Sync(m, vec![Stmt::Read(x), Stmt::Write(x)])],
        )];
        b.worker(body.clone());
        b.worker(body);
        let p = b.finish();
        let result = explore(&p, ExploreLimits::default());
        assert!(!result.truncated, "schedule space must be fully covered");
        assert!(result.traces.len() > 10);
        for t in &result.traces {
            assert!(
                oracle::is_serializable(t),
                "found a violating schedule of a supposedly atomic pattern:\n{t}"
            );
        }
    }

    #[test]
    fn check_then_act_has_a_violating_interleaving() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        let l = b.label("Set.add");
        let body = vec![Stmt::Atomic(
            l,
            vec![
                Stmt::Sync(m, vec![Stmt::Read(x)]),
                Stmt::Sync(m, vec![Stmt::Read(x), Stmt::Write(x)]),
            ],
        )];
        b.worker(body.clone());
        b.worker(body);
        let p = b.finish();
        let result = explore(&p, ExploreLimits::default());
        assert!(!result.truncated);
        let violating = result
            .traces
            .iter()
            .filter(|t| !oracle::is_serializable(t))
            .count();
        assert!(violating > 0, "ground truth: the pattern is non-atomic");
        assert!(
            violating < result.traces.len(),
            "but some schedules are serializable (the defect is schedule-dependent)"
        );
    }

    #[test]
    fn truncation_is_reported() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        for _ in 0..3 {
            b.worker(vec![Stmt::Loop(4, vec![Stmt::Read(x), Stmt::Write(x)])]);
        }
        let p = b.finish();
        let result = explore(
            &p,
            ExploreLimits {
                max_traces: 100,
                max_steps: 10_000,
            },
        );
        assert!(result.truncated);
        assert_eq!(result.traces.len(), 100);
    }
}
