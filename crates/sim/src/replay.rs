//! Deterministic trace replay (in the spirit of RecPlay, which the paper
//! cites as complete-race-detection infrastructure): re-execute a program
//! forcing a previously recorded interleaving, e.g. to reproduce a
//! violation found under a random seed.

use crate::sched::{SchedView, Scheduler};
use velodrome_events::{Op, ThreadId, Trace};

/// A scheduler that follows a recorded trace: at each step it picks the
/// thread that performed the next recorded event (threads mid-compute are
/// chosen freely, since compute steps emit no events).
///
/// Replay diverges if the program differs from the one that produced the
/// recording; [`ReplayScheduler::diverged`] reports that.
#[derive(Debug)]
pub struct ReplayScheduler {
    script: Vec<Op>,
    pos: usize,
    diverged: bool,
}

impl ReplayScheduler {
    /// Creates a replayer for the given recorded trace.
    pub fn new(recording: &Trace) -> Self {
        Self {
            script: recording.ops().to_vec(),
            pos: 0,
            diverged: false,
        }
    }

    /// Whether the execution stopped matching the recording.
    pub fn diverged(&self) -> bool {
        self.diverged
    }

    /// Recorded events successfully replayed so far.
    pub fn replayed(&self) -> usize {
        self.pos
    }

    /// The thread expected to act next, if the recording has not ended.
    pub fn next_tid(&self) -> Option<ThreadId> {
        self.script.get(self.pos).map(|op| op.tid())
    }
}

impl Scheduler for ReplayScheduler {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        // Prefer a runnable thread whose pending emission matches the next
        // recorded event exactly.
        if let Some(expected) = self.script.get(self.pos).copied() {
            if let Some(i) = view.next_ops.iter().position(|p| *p == Some(expected)) {
                return i;
            }
            // Otherwise let the expected thread make progress: through
            // compute steps (no pending emission) and through re-entrant
            // acquires/releases, which the executor advertises in
            // `next_ops` but suppresses on emission.
            let t = expected.tid();
            if let Some(i) = (0..view.runnable.len()).find(|&i| {
                view.runnable[i] == t
                    && matches!(
                        view.next_ops[i],
                        None | Some(Op::Acquire { .. }) | Some(Op::Release { .. })
                    )
            }) {
                return i;
            }
            // The thread is runnable but its next emission differs: the
            // program does not match the recording.
            if view.runnable.contains(&t) {
                self.diverged = true;
            }
        }
        // Past the recording's end or diverged: any runnable thread will do.
        0
    }

    fn observe(&mut self, _index: usize, op: Op) {
        if self.script.get(self.pos) == Some(&op) {
            self.pos += 1;
        } else {
            self.diverged = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_program;
    use crate::gen::{random_program, GenConfig};
    use crate::ir::ProgramBuilder;
    use crate::sched::RandomScheduler;
    use crate::Stmt;

    #[test]
    fn replay_reproduces_random_interleavings_exactly() {
        let cfg = GenConfig::default();
        for seed in 0..25u64 {
            let program = random_program(&cfg, seed);
            let original = run_program(&program, RandomScheduler::new(seed ^ 0xfeed));
            if original.deadlocked {
                continue;
            }
            let mut replayer = ReplayScheduler::new(&original.trace);
            let replayed = {
                let exec = crate::exec::Executor::new(&program, &mut replayer);
                exec.run()
            };
            assert_eq!(
                replayed.trace.ops(),
                original.trace.ops(),
                "seed {seed}: replay diverged"
            );
            assert!(!replayer.diverged());
            assert_eq!(replayer.replayed(), original.trace.len());
        }
    }

    #[test]
    fn replay_reports_divergence_on_different_program() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.worker(vec![Stmt::Write(x), Stmt::Write(x)]);
        let p1 = b.finish();
        let recording = run_program(&p1, RandomScheduler::new(1)).trace;

        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.worker(vec![Stmt::Read(x), Stmt::Read(x)]); // different ops
        let p2 = b.finish();
        let mut replayer = ReplayScheduler::new(&recording);
        let _ = crate::exec::Executor::new(&p2, &mut replayer).run();
        assert!(replayer.diverged());
    }

    #[test]
    fn replay_of_compute_heavy_program() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.worker(vec![
            Stmt::Compute(5),
            Stmt::Write(x),
            Stmt::Compute(3),
            Stmt::Read(x),
        ]);
        b.worker(vec![Stmt::Compute(2), Stmt::Write(x)]);
        let p = b.finish();
        let original = run_program(&p, RandomScheduler::new(9));
        let mut replayer = ReplayScheduler::new(&original.trace);
        let replayed = crate::exec::Executor::new(&p, &mut replayer).run();
        assert_eq!(replayed.trace.ops(), original.trace.ops());
        assert!(!replayer.diverged());
    }
}
