//! Deterministic interpreter for [`Program`]s.
//!
//! The executor interleaves thread steps one operation at a time under a
//! pluggable [`Scheduler`], producing a well-formed event [`Trace`]. It
//! models:
//!
//! * blocking lock acquisition (a thread about to acquire a held lock is
//!   not runnable);
//! * re-entrant locks, emitting only the outermost acquire/release — the
//!   stream RoadRunner's front end would deliver after filtering;
//! * fork/join: the main thread (`T0`) runs the setup prologue, forks every
//!   worker, joins them in order once they finish, then runs the teardown
//!   epilogue;
//! * local compute as scheduler steps that emit no events.

use crate::ir::{Program, Stmt};
use crate::sched::{SchedView, Scheduler};
use std::collections::HashMap;
use velodrome_events::{LockId, Op, ThreadId, Trace};
use velodrome_telemetry::{names, PhaseTimer, Telemetry};

/// What a thread would do on its next step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextAction {
    /// Emit this operation.
    Emit(Op),
    /// Perform one unit of local compute (no event).
    Work,
    /// The thread has finished.
    Done,
}

#[derive(Debug, Clone, Copy)]
enum Exit {
    /// Plain frame: just pop.
    None,
    /// Loop body: re-run `remaining` more times, then pop.
    LoopBack { remaining: u32 },
    /// Emit a release (unless re-entrant) and pop.
    Release(LockId),
    /// Emit an `end` and pop.
    End,
}

#[derive(Debug)]
struct Frame<'p> {
    stmts: &'p [Stmt],
    idx: usize,
    exit: Exit,
}

#[derive(Debug)]
struct Cursor<'p> {
    frames: Vec<Frame<'p>>,
    work_left: u32,
}

impl<'p> Cursor<'p> {
    fn new(stmts: &'p [Stmt]) -> Self {
        let mut c = Self {
            frames: vec![Frame {
                stmts,
                idx: 0,
                exit: Exit::None,
            }],
            work_left: 0,
        };
        c.normalize();
        c
    }

    fn done(&self) -> bool {
        self.work_left == 0 && self.frames.is_empty()
    }

    /// Advances past non-emitting structure so the next action is directly
    /// readable from the cursor.
    fn normalize(&mut self) {
        if self.work_left > 0 {
            return;
        }
        loop {
            let Some(top) = self.frames.last_mut() else {
                return;
            };
            let stmts: &'p [Stmt] = top.stmts;
            if top.idx >= stmts.len() {
                match &mut top.exit {
                    Exit::LoopBack { remaining } if *remaining > 0 => {
                        *remaining -= 1;
                        top.idx = 0;
                    }
                    Exit::None | Exit::LoopBack { .. } => {
                        self.frames.pop();
                    }
                    Exit::Release(_) | Exit::End => return, // pending exit emission
                }
                continue;
            }
            match &stmts[top.idx] {
                Stmt::Compute(0) => top.idx += 1,
                Stmt::Compute(n) => {
                    self.work_left = *n;
                    top.idx += 1;
                    return;
                }
                Stmt::Loop(n, body) => {
                    let (n, body): (u32, &'p [Stmt]) = (*n, body);
                    top.idx += 1;
                    if n > 0 && !body.is_empty() {
                        self.frames.push(Frame {
                            stmts: body,
                            idx: 0,
                            exit: Exit::LoopBack { remaining: n - 1 },
                        });
                    }
                }
                Stmt::Read(_) | Stmt::Write(_) | Stmt::Sync(..) | Stmt::Atomic(..) => return,
            }
        }
    }

    /// The next action, assuming the cursor is normalized.
    fn next_action(&self, t: ThreadId) -> NextAction {
        if self.work_left > 0 {
            return NextAction::Work;
        }
        let Some(top) = self.frames.last() else {
            return NextAction::Done;
        };
        if top.idx >= top.stmts.len() {
            return match top.exit {
                Exit::Release(m) => NextAction::Emit(Op::Release { t, m }),
                Exit::End => NextAction::Emit(Op::End { t }),
                _ => unreachable!("normalized cursor has a pending exit"),
            };
        }
        match &top.stmts[top.idx] {
            Stmt::Read(x) => NextAction::Emit(Op::Read { t, x: *x }),
            Stmt::Write(x) => NextAction::Emit(Op::Write { t, x: *x }),
            Stmt::Sync(m, _) => NextAction::Emit(Op::Acquire { t, m: *m }),
            Stmt::Atomic(l, _) => NextAction::Emit(Op::Begin { t, l: *l }),
            Stmt::Loop(..) | Stmt::Compute(_) => {
                unreachable!("normalized cursor points at an emitting statement")
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MainPhase {
    Setup,
    /// About to fork global worker `g`.
    Fork(usize),
    /// About to join global worker `g`.
    Join(usize),
    Teardown,
    Done,
}

/// Outcome of running a program to completion (or deadlock).
#[derive(Debug)]
pub struct RunResult {
    /// The recorded trace.
    pub trace: Trace,
    /// `true` when the run ended with unfinished but blocked threads.
    pub deadlocked: bool,
    /// Scheduler steps taken (events plus compute units).
    pub steps: u64,
}

/// Interprets a [`Program`] under a [`Scheduler`].
pub struct Executor<'p, S> {
    program: &'p Program,
    scheduler: S,
    /// Worker cursors; worker `i` is thread `T(i+1)`.
    cursors: Vec<Cursor<'p>>,
    main_cursor: Cursor<'p>,
    main_phase: MainPhase,
    /// Number of workers the main thread has forked so far.
    forked: usize,
    /// Lock → (holder, re-entrancy depth).
    locks: HashMap<LockId, (ThreadId, u32)>,
    trace: Trace,
    steps: u64,
    max_steps: u64,
    /// Span timer around scheduler picks (`phase.scheduler_step`); the
    /// disabled no-op handle unless telemetry is attached.
    sched_timer: PhaseTimer,
}

impl<'p, S: Scheduler> Executor<'p, S> {
    const MAIN: ThreadId = ThreadId::new(0);

    /// Creates an executor for `program` with the given scheduler.
    pub fn new(program: &'p Program, scheduler: S) -> Self {
        let cursors = program.workers().map(|t| Cursor::new(&t.stmts)).collect();
        let main_cursor = Cursor::new(&program.setup);
        let mut trace = Trace::new();
        *trace.names_mut() = program.names.clone();
        let mut exec = Self {
            program,
            scheduler,
            cursors,
            main_cursor,
            main_phase: MainPhase::Setup,
            forked: 0,
            locks: HashMap::new(),
            trace,
            steps: 0,
            max_steps: 1 << 32,
            sched_timer: PhaseTimer::disabled(),
        };
        exec.settle_main();
        exec
    }

    /// Overrides the runaway-guard step limit.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Attaches a telemetry registry: each scheduler pick is recorded as a
    /// `phase.scheduler_step` span.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.sched_timer = telemetry.phase(names::PHASE_SCHEDULER_STEP);
        self
    }

    fn worker_tid(i: usize) -> ThreadId {
        ThreadId::new(i as u32 + 1)
    }

    /// The `[start, end)` global worker range of the phase containing
    /// global worker `g`.
    fn phase_bounds_of(&self, g: usize) -> (usize, usize) {
        let mut start = 0;
        for phase in &self.program.phases {
            let end = start + phase.len();
            if g < end {
                return (start, end);
            }
            start = end;
        }
        unreachable!("worker {g} out of range");
    }

    /// Eagerly moves the main thread through transitions that need no steps.
    fn settle_main(&mut self) {
        loop {
            match self.main_phase {
                MainPhase::Setup if self.main_cursor.done() => {
                    if self.program.worker_count() == 0 {
                        self.main_cursor = Cursor::new(&self.program.teardown);
                        self.main_phase = MainPhase::Teardown;
                    } else {
                        self.main_phase = MainPhase::Fork(0);
                        return;
                    }
                }
                MainPhase::Teardown if self.main_cursor.done() => {
                    self.main_phase = MainPhase::Done;
                }
                _ => return,
            }
        }
    }

    /// The next action of a thread (main included).
    pub fn next_action(&self, t: ThreadId) -> NextAction {
        if t == Self::MAIN {
            return match self.main_phase {
                MainPhase::Setup | MainPhase::Teardown => self.main_cursor.next_action(t),
                MainPhase::Fork(g) => NextAction::Emit(Op::Fork {
                    t,
                    child: Self::worker_tid(g),
                }),
                MainPhase::Join(g) => NextAction::Emit(Op::Join {
                    t,
                    child: Self::worker_tid(g),
                }),
                MainPhase::Done => NextAction::Done,
            };
        }
        self.cursors[t.index() - 1].next_action(t)
    }

    /// Whether a thread can take its next step now.
    fn runnable(&self, t: ThreadId) -> bool {
        if t != Self::MAIN && t.index() > self.forked {
            return false; // not forked yet
        }
        match self.next_action(t) {
            NextAction::Done => false,
            NextAction::Work => true,
            NextAction::Emit(op) => match op {
                Op::Acquire { m, .. } => match self.locks.get(&m) {
                    Some((holder, _)) => *holder == t,
                    None => true,
                },
                Op::Join { child, .. } => self.cursors[child.index() - 1].done(),
                _ => true,
            },
        }
    }

    fn emit(&mut self, op: Op) {
        let index = self.trace.len();
        self.trace.push(op);
        self.scheduler.observe(index, op);
    }

    fn step(&mut self, t: ThreadId) {
        self.steps += 1;
        if t == Self::MAIN {
            self.step_main();
        } else {
            self.step_cursor(t);
        }
    }

    fn step_main(&mut self) {
        match self.main_phase {
            MainPhase::Setup => self.step_cursor(Self::MAIN),
            MainPhase::Fork(g) => {
                if self.program.emit_fork_join {
                    self.emit(Op::Fork {
                        t: Self::MAIN,
                        child: Self::worker_tid(g),
                    });
                }
                self.forked = g + 1;
                let (start, end) = self.phase_bounds_of(g);
                self.main_phase = if g + 1 < end {
                    MainPhase::Fork(g + 1)
                } else {
                    MainPhase::Join(start)
                };
            }
            MainPhase::Join(g) => {
                debug_assert!(self.cursors[g].done(), "joining an unfinished worker");
                if self.program.emit_fork_join {
                    self.emit(Op::Join {
                        t: Self::MAIN,
                        child: Self::worker_tid(g),
                    });
                }
                let (_, end) = self.phase_bounds_of(g);
                if g + 1 < end {
                    self.main_phase = MainPhase::Join(g + 1);
                } else if end < self.program.worker_count() {
                    // Next phase starts once this one is fully joined.
                    self.main_phase = MainPhase::Fork(end);
                } else {
                    self.main_cursor = Cursor::new(&self.program.teardown);
                    self.main_phase = MainPhase::Teardown;
                }
            }
            MainPhase::Teardown => self.step_cursor(Self::MAIN),
            MainPhase::Done => {}
        }
        self.settle_main();
    }

    fn cursor_mut(&mut self, t: ThreadId) -> &mut Cursor<'p> {
        if t == Self::MAIN {
            &mut self.main_cursor
        } else {
            &mut self.cursors[t.index() - 1]
        }
    }

    fn step_cursor(&mut self, t: ThreadId) {
        let cursor = self.cursor_mut(t);
        if cursor.work_left > 0 {
            cursor.work_left -= 1;
            cursor.normalize();
            return;
        }
        let Some(top) = cursor.frames.last_mut() else {
            return; // Done: stepping is a no-op.
        };
        let stmts: &'p [Stmt] = top.stmts;
        if top.idx >= stmts.len() {
            let exit = top.exit;
            cursor.frames.pop();
            match exit {
                Exit::Release(m) => {
                    let entry = self.locks.get_mut(&m).expect("releasing a held lock");
                    debug_assert_eq!(entry.0, t, "release by non-holder");
                    entry.1 -= 1;
                    if entry.1 == 0 {
                        self.locks.remove(&m);
                        self.emit(Op::Release { t, m });
                    }
                }
                Exit::End => self.emit(Op::End { t }),
                _ => unreachable!("normalized cursor exit"),
            }
        } else {
            match &stmts[top.idx] {
                Stmt::Read(x) => {
                    let x = *x;
                    top.idx += 1;
                    self.emit(Op::Read { t, x });
                }
                Stmt::Write(x) => {
                    let x = *x;
                    top.idx += 1;
                    self.emit(Op::Write { t, x });
                }
                Stmt::Sync(m, body) => {
                    let (m, body): (LockId, &'p [Stmt]) = (*m, body);
                    top.idx += 1;
                    cursor.frames.push(Frame {
                        stmts: body,
                        idx: 0,
                        exit: Exit::Release(m),
                    });
                    let entry = self.locks.entry(m).or_insert((t, 0));
                    debug_assert_eq!(entry.0, t, "scheduler ran a blocked thread");
                    entry.1 += 1;
                    if entry.1 == 1 {
                        self.emit(Op::Acquire { t, m });
                    }
                }
                Stmt::Atomic(l, body) => {
                    let (l, body): (_, &'p [Stmt]) = (*l, body);
                    top.idx += 1;
                    cursor.frames.push(Frame {
                        stmts: body,
                        idx: 0,
                        exit: Exit::End,
                    });
                    self.emit(Op::Begin { t, l });
                }
                Stmt::Loop(..) | Stmt::Compute(_) => unreachable!("normalized cursor"),
            }
        }
        self.cursor_mut(t).normalize();
    }

    /// Runs the program to completion, returning the trace.
    pub fn run(mut self) -> RunResult {
        let mut runnable_ids: Vec<ThreadId> = Vec::new();
        let mut next_ops: Vec<Option<Op>> = Vec::new();
        loop {
            if self.steps >= self.max_steps {
                return RunResult {
                    trace: self.trace,
                    deadlocked: false,
                    steps: self.steps,
                };
            }
            runnable_ids.clear();
            next_ops.clear();
            let mut any_unfinished = self.main_phase != MainPhase::Done;
            for i in 0..=self.program.worker_count() {
                let t = ThreadId::new(i as u32);
                if t != Self::MAIN && !self.cursors[i - 1].done() {
                    any_unfinished = true;
                }
                if self.runnable(t) {
                    runnable_ids.push(t);
                    next_ops.push(match self.next_action(t) {
                        NextAction::Emit(op) => Some(op),
                        _ => None,
                    });
                }
            }
            if runnable_ids.is_empty() {
                return RunResult {
                    trace: self.trace,
                    deadlocked: any_unfinished,
                    steps: self.steps,
                };
            }
            let view = SchedView {
                runnable: &runnable_ids,
                next_ops: &next_ops,
                step: self.steps,
            };
            let span = self.sched_timer.start();
            let choice = self.scheduler.pick(&view).min(runnable_ids.len() - 1);
            drop(span);
            let t = runnable_ids[choice];
            self.step(t);
        }
    }
}

/// Runs `program` under `scheduler` and returns the result.
pub fn run_program<S: Scheduler>(program: &Program, scheduler: S) -> RunResult {
    Executor::new(program, scheduler).run()
}

/// Like [`run_program`], with scheduler picks timed into `telemetry` as
/// `phase.scheduler_step` spans.
pub fn run_program_with_telemetry<S: Scheduler>(
    program: &Program,
    scheduler: S,
    telemetry: &Telemetry,
) -> RunResult {
    Executor::new(program, scheduler)
        .with_telemetry(telemetry)
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Program, ProgramBuilder};
    use crate::sched::RoundRobin;
    use velodrome_events::semantics;

    fn two_worker_program() -> Program {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        let l = b.label("inc");
        let body = vec![Stmt::Loop(
            3,
            vec![Stmt::Atomic(
                l,
                vec![Stmt::Sync(m, vec![Stmt::Read(x), Stmt::Write(x)])],
            )],
        )];
        b.setup(vec![Stmt::Write(x)]);
        b.teardown(vec![Stmt::Read(x)]);
        b.worker(body.clone());
        b.worker(body);
        b.finish()
    }

    #[test]
    fn round_robin_run_is_well_formed() {
        let p = two_worker_program();
        let result = run_program(&p, RoundRobin::new());
        assert!(!result.deadlocked);
        assert_eq!(semantics::validate(&result.trace), Ok(()));
        // setup write + 2 forks + 2 workers * 3 * (begin+acq+rd+wr+rel+end)
        // + 2 joins + teardown read.
        assert_eq!(result.trace.len(), 1 + 2 + 2 * 3 * 6 + 2 + 1);
    }

    #[test]
    fn fork_precedes_worker_ops_and_join_follows() {
        let p = two_worker_program();
        let trace = run_program(&p, RoundRobin::new()).trace;
        let ops = trace.ops();
        let first_fork = ops
            .iter()
            .position(|o| matches!(o, Op::Fork { .. }))
            .unwrap();
        let first_worker = ops
            .iter()
            .position(|o| o.tid() != ThreadId::new(0))
            .unwrap();
        assert!(first_fork < first_worker);
        let last_join = ops
            .iter()
            .rposition(|o| matches!(o, Op::Join { .. }))
            .unwrap();
        let last_worker = ops
            .iter()
            .rposition(|o| o.tid() != ThreadId::new(0))
            .unwrap();
        assert!(last_join > last_worker);
    }

    #[test]
    fn locks_provide_mutual_exclusion_in_trace() {
        let p = two_worker_program();
        let trace = run_program(&p, RoundRobin::new()).trace;
        let mut holder: Option<ThreadId> = None;
        for (_, op) in trace.iter() {
            match op {
                Op::Acquire { t, .. } => {
                    assert_eq!(holder, None);
                    holder = Some(t);
                }
                Op::Release { t, .. } => {
                    assert_eq!(holder, Some(t));
                    holder = None;
                }
                _ => {}
            }
        }
    }

    #[test]
    fn reentrant_sync_emits_outermost_pair_only() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        b.worker(vec![Stmt::Sync(
            m,
            vec![Stmt::Sync(m, vec![Stmt::Write(x)])],
        )]);
        let p = b.finish();
        let trace = run_program(&p, RoundRobin::new()).trace;
        let acquires = trace
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::Acquire { .. }))
            .count();
        let releases = trace
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::Release { .. }))
            .count();
        assert_eq!((acquires, releases), (1, 1));
        assert_eq!(semantics::validate(&trace), Ok(()));
    }

    #[test]
    fn compute_emits_no_events_but_consumes_steps() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.worker(vec![Stmt::Compute(10), Stmt::Write(x)]);
        let p = b.finish();
        let result = run_program(&p, RoundRobin::new());
        // fork + write + join events; 10 extra compute steps.
        assert_eq!(result.trace.len(), 3);
        assert!(result.steps >= 13);
    }

    #[test]
    fn empty_program_terminates() {
        let p = Program::new();
        let result = run_program(&p, RoundRobin::new());
        assert!(!result.deadlocked);
        assert!(result.trace.is_empty());
    }

    #[test]
    fn no_worker_program_runs_setup_and_teardown() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.setup(vec![Stmt::Write(x)]);
        b.teardown(vec![Stmt::Read(x)]);
        let p = b.finish();
        let result = run_program(&p, RoundRobin::new());
        assert!(!result.deadlocked);
        assert_eq!(result.trace.len(), 2);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut b = ProgramBuilder::new();
        let m1 = b.lock("m1");
        let m2 = b.lock("m2");
        let x = b.var("x");
        // Classic lock-order inversion; the compute padding lets round-robin
        // interleave the two outer acquires before the inner ones.
        b.worker(vec![Stmt::Sync(
            m1,
            vec![Stmt::Compute(5), Stmt::Sync(m2, vec![Stmt::Write(x)])],
        )]);
        b.worker(vec![Stmt::Sync(
            m2,
            vec![Stmt::Compute(5), Stmt::Sync(m1, vec![Stmt::Write(x)])],
        )]);
        let p = b.finish();
        let result = run_program(&p, RoundRobin::new());
        assert!(result.deadlocked);
    }

    #[test]
    fn max_steps_guard_stops_runaway() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.worker(vec![Stmt::Loop(1_000_000, vec![Stmt::Write(x)])]);
        let p = b.finish();
        let result = Executor::new(&p, RoundRobin::new())
            .with_max_steps(100)
            .run();
        assert!(result.steps <= 100);
    }

    #[test]
    fn loops_repeat_bodies() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.worker(vec![Stmt::Loop(4, vec![Stmt::Write(x), Stmt::Read(x)])]);
        let p = b.finish();
        let trace = run_program(&p, RoundRobin::new()).trace;
        let accesses = trace.ops().iter().filter(|o| o.is_access()).count();
        assert_eq!(accesses, 8);
    }

    #[test]
    fn setup_runs_before_fork_teardown_after_join() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.setup(vec![Stmt::Write(x)]);
        b.teardown(vec![Stmt::Read(x)]);
        b.worker(vec![Stmt::Read(x)]);
        let p = b.finish();
        let trace = run_program(&p, RoundRobin::new()).trace;
        let kinds: Vec<String> = trace.ops().iter().map(|o| o.to_string()).collect();
        assert_eq!(
            kinds,
            vec![
                "wr(T0, x0)",
                "fork(T0, T1)",
                "rd(T1, x0)",
                "join(T0, T1)",
                "rd(T0, x0)"
            ]
        );
    }

    #[test]
    fn nested_atomic_and_empty_loops_are_handled() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        let p1 = b.label("outer");
        let p2 = b.label("inner");
        b.worker(vec![
            Stmt::Loop(0, vec![Stmt::Write(x)]), // never runs
            Stmt::Atomic(
                p1,
                vec![Stmt::Atomic(p2, vec![Stmt::Read(x)]), Stmt::Write(x)],
            ),
        ]);
        let p = b.finish();
        let trace = run_program(&p, RoundRobin::new()).trace;
        let kinds: Vec<String> = trace.ops().iter().map(|o| o.to_string()).collect();
        assert_eq!(
            kinds,
            vec![
                "fork(T0, T1)",
                "begin_L0(T1)",
                "begin_L1(T1)",
                "rd(T1, x0)",
                "end(T1)",
                "wr(T1, x0)",
                "end(T1)",
                "join(T0, T1)"
            ]
        );
    }
}
