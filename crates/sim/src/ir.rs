//! A small structured concurrent intermediate representation.
//!
//! Programs consist of a main thread (`T0`) that runs a setup prologue,
//! forks a set of worker threads, joins them, and runs a teardown epilogue
//! — the fork/join shape of the paper's benchmarks — while the workers'
//! bodies interleave under a pluggable scheduler. Statements cover exactly
//! the operations the Velodrome event model knows about: shared reads and
//! writes, structured lock regions, structured atomic blocks, loops, and
//! local compute (scheduler steps that emit no events).

use std::collections::HashMap;
use velodrome_events::{Label, LockId, SymbolTable, VarId};

/// One statement of a thread body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Read a shared variable.
    Read(VarId),
    /// Write a shared variable.
    Write(VarId),
    /// `synchronized(m) { body }` — structured lock region.
    Sync(LockId, Vec<Stmt>),
    /// `atomic l { body }` — structured atomic block (candidate method).
    Atomic(Label, Vec<Stmt>),
    /// Repeat the body a fixed number of times.
    Loop(u32, Vec<Stmt>),
    /// Local computation: consumes `n` scheduler steps, emits no events.
    Compute(u32),
}

impl Stmt {
    /// Number of events this statement emits when executed once.
    pub fn event_count(&self) -> u64 {
        match self {
            Stmt::Read(_) | Stmt::Write(_) => 1,
            Stmt::Sync(_, body) => 2 + body.iter().map(Stmt::event_count).sum::<u64>(),
            Stmt::Atomic(_, body) => 2 + body.iter().map(Stmt::event_count).sum::<u64>(),
            Stmt::Loop(n, body) => u64::from(*n) * body.iter().map(Stmt::event_count).sum::<u64>(),
            Stmt::Compute(_) => 0,
        }
    }
}

/// The body of one worker thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadBody {
    /// Statements executed in order.
    pub stmts: Vec<Stmt>,
}

impl ThreadBody {
    /// Creates a body from statements.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Self { stmts }
    }
}

/// A complete concurrent program.
///
/// Workers are organized into sequential *phases*: the main thread forks
/// every worker of a phase, joins them all, then moves to the next phase.
/// Workers within one phase interleave freely; workers of different phases
/// are fork/join-ordered. Most programs have a single phase; multi-phase
/// programs model initialization rounds and barrier-style computations.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Main-thread statements executed before forking the first phase.
    pub setup: Vec<Stmt>,
    /// Worker thread bodies per phase; threads are numbered `T1..=Tn`
    /// consecutively across phases.
    pub phases: Vec<Vec<ThreadBody>>,
    /// Main-thread statements executed after joining the last phase.
    pub teardown: Vec<Stmt>,
    /// Human-readable names for reports.
    pub names: SymbolTable,
    /// Whether main emits explicit fork/join events (default `true`).
    pub emit_fork_join: bool,
}

impl Program {
    /// Creates an empty program with fork/join events enabled.
    pub fn new() -> Self {
        Self {
            emit_fork_join: true,
            ..Self::default()
        }
    }

    /// All worker bodies, flattened across phases in thread-id order.
    pub fn workers(&self) -> impl Iterator<Item = &ThreadBody> {
        self.phases.iter().flatten()
    }

    /// Total number of worker threads across all phases.
    pub fn worker_count(&self) -> usize {
        self.phases.iter().map(Vec::len).sum()
    }

    /// Total events the program emits (excluding fork/join bookkeeping).
    pub fn event_count(&self) -> u64 {
        let body: u64 = self
            .workers()
            .flat_map(|t| t.stmts.iter())
            .map(Stmt::event_count)
            .sum();
        let main: u64 = self
            .setup
            .iter()
            .chain(self.teardown.iter())
            .map(Stmt::event_count)
            .sum();
        body + main
    }
}

/// Builds programs with name interning, mirroring
/// [`velodrome_events::TraceBuilder`].
///
/// # Examples
///
/// ```
/// use velodrome_sim::{ProgramBuilder, Stmt};
///
/// let mut p = ProgramBuilder::new();
/// let x = p.var("counter");
/// let m = p.lock("mutex");
/// let inc = p.label("increment");
/// let body = vec![Stmt::Atomic(
///     inc,
///     vec![Stmt::Sync(m, vec![Stmt::Read(x), Stmt::Write(x)])],
/// )];
/// p.worker(body.clone());
/// p.worker(body);
/// let program = p.finish();
/// assert_eq!(program.worker_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    vars: HashMap<String, VarId>,
    locks: HashMap<String, LockId>,
    labels: HashMap<String, Label>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            program: Program::new(),
            ..Self::default()
        }
    }

    /// Interns a shared-variable name.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&x) = self.vars.get(name) {
            return x;
        }
        let x = VarId::new(self.vars.len() as u32);
        self.vars.insert(name.to_owned(), x);
        self.program.names.name_var(x, name);
        x
    }

    /// Interns a lock name.
    pub fn lock(&mut self, name: &str) -> LockId {
        if let Some(&m) = self.locks.get(name) {
            return m;
        }
        let m = LockId::new(self.locks.len() as u32);
        self.locks.insert(name.to_owned(), m);
        self.program.names.name_lock(m, name);
        m
    }

    /// Interns an atomic-block label.
    pub fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = Label::new(self.labels.len() as u32);
        self.labels.insert(name.to_owned(), l);
        self.program.names.name_label(l, name);
        l
    }

    /// Number of labels interned so far.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Appends a worker thread to the current (last) phase and returns its
    /// global worker index.
    pub fn worker(&mut self, stmts: Vec<Stmt>) -> usize {
        if self.program.phases.is_empty() {
            self.program.phases.push(Vec::new());
        }
        self.program
            .phases
            .last_mut()
            .expect("phase exists")
            .push(ThreadBody::new(stmts));
        self.program.worker_count() - 1
    }

    /// Starts a new phase: workers added afterwards run only after every
    /// worker of the previous phases has been joined.
    pub fn new_phase(&mut self) {
        // Avoid creating empty phases when called before any worker.
        if self.program.phases.last().map_or(true, |p| !p.is_empty()) {
            self.program.phases.push(Vec::new());
        }
    }

    /// Sets the main-thread setup prologue.
    pub fn setup(&mut self, stmts: Vec<Stmt>) {
        self.program.setup = stmts;
    }

    /// Sets the main-thread teardown epilogue.
    pub fn teardown(&mut self, stmts: Vec<Stmt>) {
        self.program.teardown = stmts;
    }

    /// Consumes the builder, returning the program.
    pub fn finish(mut self) -> Program {
        self.program.phases.retain(|p| !p.is_empty());
        let workers = self.program.worker_count();
        let names = &mut self.program.names;
        names.name_thread(velodrome_events::ThreadId::new(0), "main");
        for i in 0..workers {
            let t = velodrome_events::ThreadId::new(i as u32 + 1);
            names.name_thread(t, format!("worker-{}", i + 1));
        }
        self.program
    }
}

/// Convenience constructors for common statement shapes.
pub mod dsl {
    use super::Stmt;
    use velodrome_events::{Label, LockId, VarId};

    /// `synchronized(m) { read x; write x }` — a locked read-modify-write.
    pub fn locked_rmw(m: LockId, x: VarId) -> Stmt {
        Stmt::Sync(m, vec![Stmt::Read(x), Stmt::Write(x)])
    }

    /// `read x; write x` — an unprotected read-modify-write.
    pub fn bare_rmw(x: VarId) -> Stmt {
        Stmt::Loop(1, vec![Stmt::Read(x), Stmt::Write(x)])
    }

    /// An atomic block around a sequence of statements.
    pub fn atomic(l: Label, body: Vec<Stmt>) -> Stmt {
        Stmt::Atomic(l, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_names() {
        let mut b = ProgramBuilder::new();
        let x1 = b.var("x");
        let x2 = b.var("x");
        assert_eq!(x1, x2);
        let y = b.var("y");
        assert_ne!(x1, y);
        let p = b.finish();
        assert_eq!(p.names.var(x1), "x");
        assert_eq!(p.worker_count(), 0);
    }

    #[test]
    fn event_count_accounts_for_structure() {
        let x = VarId::new(0);
        let m = LockId::new(0);
        let l = Label::new(0);
        let stmt = Stmt::Atomic(
            l,
            vec![Stmt::Loop(
                3,
                vec![Stmt::Sync(m, vec![Stmt::Read(x), Stmt::Write(x)])],
            )],
        );
        // begin + end + 3 * (acq + rd + wr + rel)
        assert_eq!(stmt.event_count(), 2 + 3 * 4);
        assert_eq!(Stmt::Compute(10).event_count(), 0);
    }

    #[test]
    fn program_event_count_sums_threads_and_main() {
        let x = VarId::new(0);
        let mut p = Program::new();
        p.setup = vec![Stmt::Write(x)];
        p.teardown = vec![Stmt::Read(x)];
        p.phases
            .push(vec![ThreadBody::new(vec![Stmt::Read(x), Stmt::Write(x)])]);
        assert_eq!(p.event_count(), 4);
    }

    #[test]
    fn phases_group_workers() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.worker(vec![Stmt::Write(x)]);
        b.new_phase();
        b.worker(vec![Stmt::Read(x)]);
        b.worker(vec![Stmt::Read(x)]);
        let p = b.finish();
        assert_eq!(p.phases.len(), 2);
        assert_eq!(p.phases[0].len(), 1);
        assert_eq!(p.phases[1].len(), 2);
        assert_eq!(p.worker_count(), 3);
    }

    #[test]
    fn finish_names_threads() {
        let mut b = ProgramBuilder::new();
        b.worker(vec![]);
        let p = b.finish();
        assert_eq!(p.names.thread(velodrome_events::ThreadId::new(0)), "main");
        assert_eq!(
            p.names.thread(velodrome_events::ThreadId::new(1)),
            "worker-1"
        );
    }
}
