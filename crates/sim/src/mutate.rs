//! Synchronization-elision mutation for the defect-injection study.
//!
//! Section 6 of the paper: *"we injected atomicity defects into two
//! programs … by systematically removing each synchronized statement that
//! induced contention between threads one at a time and then running our
//! analysis on each corrupted program."* This module enumerates the `Sync`
//! statements of a program and produces mutants with one site's lock
//! elided (the region body is inlined without acquire/release).

use crate::ir::{Program, Stmt, ThreadBody};

/// Identifies one `Sync` statement within a program, in the deterministic
/// order produced by [`sync_sites`].
pub type SyncSite = usize;

/// Counts the `Sync` statements in the program (setup, workers in order,
/// teardown; pre-order within each body).
pub fn sync_sites(program: &Program) -> usize {
    let mut count = 0;
    count_sync(&program.setup, &mut count);
    for t in program.workers() {
        count_sync(&t.stmts, &mut count);
    }
    count_sync(&program.teardown, &mut count);
    count
}

fn count_sync(stmts: &[Stmt], count: &mut usize) {
    for s in stmts {
        match s {
            Stmt::Sync(_, body) => {
                *count += 1;
                count_sync(body, count);
            }
            Stmt::Atomic(_, body) | Stmt::Loop(_, body) => count_sync(body, count),
            _ => {}
        }
    }
}

/// Returns a copy of `program` with the `site`-th `Sync` statement replaced
/// by its body (lock elided), or `None` if `site` is out of range.
///
/// # Examples
///
/// ```
/// use velodrome_sim::{mutate, ProgramBuilder, Stmt};
///
/// let mut b = ProgramBuilder::new();
/// let x = b.var("x");
/// let m = b.lock("m");
/// b.worker(vec![Stmt::Sync(m, vec![Stmt::Read(x), Stmt::Write(x)])]);
/// let program = b.finish();
/// assert_eq!(mutate::sync_sites(&program), 1);
/// let mutant = mutate::elide_sync(&program, 0).unwrap();
/// assert_eq!(mutate::sync_sites(&mutant), 0);
/// ```
pub fn elide_sync(program: &Program, site: SyncSite) -> Option<Program> {
    let mut remaining = site;
    let mut hit = false;
    let mut p = program.clone();
    p.setup = elide_in(&program.setup, &mut remaining, &mut hit);
    p.phases = program
        .phases
        .iter()
        .map(|phase| {
            phase
                .iter()
                .map(|t| ThreadBody::new(elide_in(&t.stmts, &mut remaining, &mut hit)))
                .collect()
        })
        .collect();
    p.teardown = elide_in(&program.teardown, &mut remaining, &mut hit);
    hit.then_some(p)
}

fn elide_in(stmts: &[Stmt], remaining: &mut usize, hit: &mut bool) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Sync(m, body) => {
                if !*hit && *remaining == 0 {
                    *hit = true;
                    // Inline the body, recursing in case it contains later
                    // sites that must keep their numbering stable (they are
                    // unaffected once `hit` is set).
                    out.extend(elide_in(body, remaining, hit));
                } else {
                    if !*hit {
                        *remaining -= 1;
                    }
                    out.push(Stmt::Sync(*m, elide_in(body, remaining, hit)));
                }
            }
            Stmt::Atomic(l, body) => out.push(Stmt::Atomic(*l, elide_in(body, remaining, hit))),
            Stmt::Loop(n, body) => out.push(Stmt::Loop(*n, elide_in(body, remaining, hit))),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Yields every single-site elision mutant of the program.
pub fn all_mutants(program: &Program) -> Vec<Program> {
    (0..sync_sites(program))
        .filter_map(|site| elide_sync(program, site))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        let l = b.label("work");
        b.worker(vec![Stmt::Atomic(
            l,
            vec![Stmt::Sync(m, vec![Stmt::Read(x), Stmt::Write(x)])],
        )]);
        b.worker(vec![Stmt::Loop(
            2,
            vec![Stmt::Sync(m, vec![Stmt::Write(x)])],
        )]);
        b.finish()
    }

    #[test]
    fn site_count_is_recursive() {
        let p = sample();
        assert_eq!(sync_sites(&p), 2);
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        b.worker(vec![Stmt::Sync(
            m,
            vec![Stmt::Sync(m, vec![Stmt::Read(x)])],
        )]);
        assert_eq!(sync_sites(&b.finish()), 2, "nested sync counts both");
    }

    #[test]
    fn elide_removes_exactly_one_site() {
        let p = sample();
        for site in 0..sync_sites(&p) {
            let mutant = elide_sync(&p, site).unwrap();
            assert_eq!(sync_sites(&mutant), sync_sites(&p) - 1, "site {site}");
        }
    }

    #[test]
    fn elide_keeps_body() {
        let p = sample();
        let mutant = elide_sync(&p, 0).unwrap();
        // The atomic block now directly contains the read and write.
        match &mutant.phases[0][0].stmts[0] {
            Stmt::Atomic(_, body) => {
                assert_eq!(body.len(), 2);
                assert!(matches!(body[0], Stmt::Read(_)));
                assert!(matches!(body[1], Stmt::Write(_)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn out_of_range_site_returns_none() {
        let p = sample();
        assert!(elide_sync(&p, 99).is_none());
    }

    #[test]
    fn all_mutants_covers_each_site() {
        let p = sample();
        assert_eq!(all_mutants(&p).len(), 2);
    }
}
