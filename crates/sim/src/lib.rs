//! Deterministic multithreaded-program simulator for Velodrome.
//!
//! The paper runs Velodrome over Java programs instrumented by RoadRunner.
//! This crate is the reproduction's substitute substrate: a small structured
//! concurrent IR ([`ir`]), a deterministic interpreter producing event
//! traces ([`exec`]), pluggable schedulers including the paper's
//! *adversarial scheduling* ([`sched`]), a random program generator for
//! differential testing ([`gen`]), and the synchronization-elision mutator
//! used by the defect-injection study ([`mutate`]).
//!
//! # Example
//!
//! ```
//! use velodrome_sim::{run_program, ProgramBuilder, RoundRobin, Stmt};
//!
//! let mut b = ProgramBuilder::new();
//! let x = b.var("counter");
//! let inc = b.label("increment");
//! // Two workers perform an unprotected atomic increment.
//! let body = vec![Stmt::Atomic(inc, vec![Stmt::Read(x), Stmt::Write(x)])];
//! b.worker(body.clone());
//! b.worker(body);
//! let result = run_program(&b.finish(), RoundRobin::new());
//! assert!(!result.deadlocked);
//! ```

pub mod exec;
pub mod explore;
pub mod gen;
pub mod ir;
pub mod mutate;
pub mod replay;
pub mod sched;

pub use exec::{run_program, run_program_with_telemetry, Executor, NextAction, RunResult};
pub use explore::{explore, ExploreLimits, ExploreResult};
pub use gen::{random_program, GenConfig};
pub use ir::{Program, ProgramBuilder, Stmt, ThreadBody};
pub use replay::ReplayScheduler;
pub use sched::{
    AdversarialScheduler, ExemptThreads, NeverDelay, PauseAdvisor, PctScheduler, RandomScheduler,
    RoundRobin, SchedView, Scheduler, Sticky, WatchdogStats,
};
