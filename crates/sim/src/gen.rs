//! Random program generation for differential testing.
//!
//! The soundness/completeness property tests run Velodrome and the offline
//! oracle over traces of randomly generated programs under randomly seeded
//! schedulers; this module produces those programs.

use crate::ir::{Program, ProgramBuilder, Stmt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use velodrome_events::{Label, LockId, VarId};

/// Shape parameters for random program generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Number of shared variables.
    pub vars: usize,
    /// Number of locks.
    pub locks: usize,
    /// Statements per thread body (before expansion).
    pub stmts_per_thread: usize,
    /// Maximum nesting depth of blocks.
    pub max_depth: usize,
    /// Probability that a compound statement is an atomic block.
    pub atomic_prob: f64,
    /// Probability that a compound statement is a lock region.
    pub sync_prob: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            threads: 3,
            vars: 3,
            locks: 2,
            stmts_per_thread: 8,
            max_depth: 3,
            atomic_prob: 0.25,
            sync_prob: 0.25,
        }
    }
}

/// Generates a random program with the given shape and seed.
///
/// Lock regions are always properly nested (the IR is structured), and to
/// avoid trivial deadlocks in generated programs, `Sync` bodies never
/// contain further `Sync` statements on *different* locks.
pub fn random_program(cfg: &GenConfig, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    let vars: Vec<VarId> = (0..cfg.vars).map(|i| b.var(&format!("v{i}"))).collect();
    let locks: Vec<LockId> = (0..cfg.locks).map(|i| b.lock(&format!("m{i}"))).collect();
    let mut label_counter = 0usize;

    for ti in 0..cfg.threads {
        let mut stmts = Vec::new();
        for _ in 0..cfg.stmts_per_thread {
            let stmt = gen_stmt(
                &mut rng,
                cfg,
                &vars,
                &locks,
                &mut b,
                &mut label_counter,
                cfg.max_depth,
                ti,
                None,
            );
            stmts.push(stmt);
        }
        b.worker(stmts);
    }
    // Occasionally add setup/teardown traffic.
    if rng.gen_bool(0.5) && !vars.is_empty() {
        let x = vars[rng.gen_range(0..vars.len())];
        b.setup(vec![Stmt::Write(x)]);
    }
    if rng.gen_bool(0.5) && !vars.is_empty() {
        let x = vars[rng.gen_range(0..vars.len())];
        b.teardown(vec![Stmt::Read(x)]);
    }
    b.finish()
}

#[allow(clippy::too_many_arguments)]
fn gen_stmt(
    rng: &mut StdRng,
    cfg: &GenConfig,
    vars: &[VarId],
    locks: &[LockId],
    b: &mut ProgramBuilder,
    label_counter: &mut usize,
    depth: usize,
    thread: usize,
    held_lock: Option<LockId>,
) -> Stmt {
    let roll: f64 = rng.gen();
    let compound_ok = depth > 0;
    if compound_ok && roll < cfg.atomic_prob {
        let label: Label = {
            let l = b.label(&format!("method_{thread}_{label_counter}"));
            *label_counter += 1;
            l
        };
        let n = rng.gen_range(1..=3);
        let body = (0..n)
            .map(|_| {
                gen_stmt(
                    rng,
                    cfg,
                    vars,
                    locks,
                    b,
                    label_counter,
                    depth - 1,
                    thread,
                    held_lock,
                )
            })
            .collect();
        Stmt::Atomic(label, body)
    } else if compound_ok && roll < cfg.atomic_prob + cfg.sync_prob && !locks.is_empty() {
        // Re-entrancy is fine; different nested locks could deadlock, so
        // nested regions reuse the held lock.
        let m = held_lock.unwrap_or_else(|| locks[rng.gen_range(0..locks.len())]);
        let n = rng.gen_range(1..=3);
        let body = (0..n)
            .map(|_| {
                gen_stmt(
                    rng,
                    cfg,
                    vars,
                    locks,
                    b,
                    label_counter,
                    depth - 1,
                    thread,
                    Some(m),
                )
            })
            .collect();
        Stmt::Sync(m, body)
    } else if vars.is_empty() {
        Stmt::Compute(rng.gen_range(0..3))
    } else {
        let x = vars[rng.gen_range(0..vars.len())];
        match rng.gen_range(0..5) {
            0 | 1 => Stmt::Read(x),
            2 | 3 => Stmt::Write(x),
            _ => Stmt::Loop(rng.gen_range(1..=2), vec![Stmt::Read(x), Stmt::Write(x)]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_program;
    use crate::sched::{RandomScheduler, RoundRobin};
    use velodrome_events::semantics;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let a = random_program(&cfg, 42);
        let b = random_program(&cfg, 42);
        assert_eq!(a.phases, b.phases);
        let c = random_program(&cfg, 43);
        // Overwhelmingly likely to differ somewhere.
        assert!(a.phases != c.phases || a.setup != c.setup || a.teardown != c.teardown);
    }

    #[test]
    fn generated_programs_run_to_valid_traces() {
        let cfg = GenConfig::default();
        for seed in 0..30 {
            let p = random_program(&cfg, seed);
            let result = run_program(&p, RandomScheduler::new(seed ^ 0xdead));
            assert!(!result.deadlocked, "seed {seed} deadlocked");
            assert_eq!(
                semantics::validate(&result.trace),
                Ok(()),
                "seed {seed} produced an ill-formed trace"
            );
        }
    }

    #[test]
    fn generated_programs_have_bounded_but_nonzero_events() {
        let cfg = GenConfig::default();
        let mut total = 0;
        for seed in 0..10 {
            let p = random_program(&cfg, seed);
            let trace = run_program(&p, RoundRobin::new()).trace;
            total += trace.len();
            assert!(trace.len() < 20_000, "seed {seed} unexpectedly huge");
        }
        assert!(total > 50, "generated programs should do some work");
    }
}
