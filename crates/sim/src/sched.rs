//! Schedulers controlling the interleaving of simulated threads.
//!
//! Besides deterministic round-robin and seeded-random schedulers, this
//! module implements the paper's *adversarial scheduling* (Sections 5/6):
//! an analysis running alongside execution flags operations that might lead
//! to an atomicity violation, and the scheduler temporarily suspends the
//! flagged thread so that other threads get a chance to perform conflicting
//! operations — turning a *potential* violation into a concrete witness
//! that the (complete) checker can then report.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use velodrome_events::{Op, ThreadId};

/// Information available to a scheduler when choosing the next thread.
#[derive(Debug)]
pub struct SchedView<'a> {
    /// Threads that can take a step right now.
    pub runnable: &'a [ThreadId],
    /// For each runnable thread, the operation it would emit (or `None` for
    /// a local-compute step).
    pub next_ops: &'a [Option<Op>],
    /// Scheduler steps taken so far.
    pub step: u64,
}

/// Chooses which runnable thread steps next.
pub trait Scheduler {
    /// Returns an index into `view.runnable`.
    fn pick(&mut self, view: &SchedView<'_>) -> usize;

    /// Observes each emitted operation (default: ignored).
    fn observe(&mut self, _index: usize, _op: Op) {}
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        (**self).pick(view)
    }
    fn observe(&mut self, index: usize, op: Op) {
        (**self).observe(index, op)
    }
}

impl Scheduler for Box<dyn Scheduler> {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        (**self).pick(view)
    }
    fn observe(&mut self, index: usize, op: Op) {
        (**self).observe(index, op)
    }
}

/// Deterministic round-robin: repeatedly cycles through thread identifiers.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    last: u32,
}

impl Default for RoundRobin {
    fn default() -> Self {
        // Start "before" thread 0 so the first pick is the lowest id.
        Self { last: u32::MAX }
    }
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        // Choose the runnable thread with the smallest id greater than the
        // last-run thread, wrapping around.
        let chosen = view
            .runnable
            .iter()
            .enumerate()
            .filter(|(_, t)| t.raw() > self.last)
            .min_by_key(|(_, t)| t.raw())
            .or_else(|| {
                view.runnable
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| t.raw())
            })
            .map(|(i, _)| i)
            .expect("pick called with runnable threads");
        self.last = view.runnable[chosen].raw();
        chosen
    }
}

/// Seeded uniform-random scheduler; different seeds explore different
/// interleavings deterministically.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        self.rng.gen_range(0..view.runnable.len())
    }
}

/// A scheduler that greedily runs one thread as long as possible (useful
/// for generating near-serial baseline traces).
#[derive(Debug, Clone, Default)]
pub struct Sticky {
    current: Option<ThreadId>,
}

impl Sticky {
    /// Creates a sticky scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for Sticky {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        if let Some(cur) = self.current {
            if let Some(i) = view.runnable.iter().position(|&t| t == cur) {
                return i;
            }
        }
        self.current = Some(view.runnable[0]);
        0
    }
}

/// PCT-style priority scheduler (Burckhardt et al., *A Randomized Scheduler
/// with Probabilistic Guarantees of Finding Bugs*): every thread gets a
/// random priority; the highest-priority runnable thread always runs, and
/// at `depth - 1` pre-chosen random steps the running thread's priority is
/// demoted below everyone else's. Small `depth` values provide probabilistic
/// coverage guarantees for bugs of small "interleaving depth" — a good
/// match for check-then-act atomicity defects (depth 2).
#[derive(Debug)]
pub struct PctScheduler {
    rng: StdRng,
    priorities: HashMap<ThreadId, u64>,
    change_points: Vec<u64>,
    /// Decreasing counter handing out ever-lower priorities at change points.
    demotion_floor: u64,
}

impl PctScheduler {
    /// Creates a PCT scheduler for runs of roughly `max_steps` steps with
    /// the given bug depth (`depth >= 1`).
    pub fn new(seed: u64, max_steps: u64, depth: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut change_points: Vec<u64> = (1..depth)
            .map(|_| rng.gen_range(0..max_steps.max(1)))
            .collect();
        change_points.sort_unstable();
        Self {
            rng,
            priorities: HashMap::new(),
            change_points,
            demotion_floor: 1 << 16,
        }
    }

    fn priority(&mut self, t: ThreadId) -> u64 {
        if let Some(&p) = self.priorities.get(&t) {
            return p;
        }
        // New threads draw a random priority above the demotion band.
        let p = (1 << 17) + (self.rng.gen_range(0..1u64 << 32) << 4) + u64::from(t.raw() & 0xf);
        self.priorities.insert(t, p);
        p
    }
}

impl Scheduler for PctScheduler {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        // Highest-priority runnable thread.
        let chosen = (0..view.runnable.len())
            .max_by_key(|&i| self.priority(view.runnable[i]))
            .expect("pick called with runnable threads");
        // Priority change point: demote the chosen thread below everyone.
        if self
            .change_points
            .first()
            .is_some_and(|&cp| view.step >= cp)
        {
            self.change_points.remove(0);
            self.demotion_floor -= 1;
            let t = view.runnable[chosen];
            self.priorities.insert(t, self.demotion_floor);
        }
        chosen
    }
}

/// Source of "this operation might lead to an atomicity violation" hints,
/// typically backed by the Atomizer's reduction analysis.
pub trait PauseAdvisor {
    /// Observes each emitted operation to maintain analysis state.
    fn observe(&mut self, index: usize, op: Op);

    /// Should the thread about to perform `op` be suspended for a while to
    /// invite conflicting operations from other threads?
    fn should_delay(&mut self, t: ThreadId, op: Op) -> bool;
}

/// A [`PauseAdvisor`] that never delays (adversarial scheduling disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverDelay;

impl PauseAdvisor for NeverDelay {
    fn observe(&mut self, _index: usize, _op: Op) {}
    fn should_delay(&mut self, _t: ThreadId, _op: Op) -> bool {
        false
    }
}

/// Restricts pausing to non-exempt threads (the paper also explores
/// "allowing some threads to never pause").
#[derive(Debug)]
pub struct ExemptThreads<A> {
    inner: A,
    exempt: std::collections::HashSet<ThreadId>,
}

impl<A: PauseAdvisor> ExemptThreads<A> {
    /// Wraps `inner`; the listed threads are never paused.
    pub fn new(inner: A, exempt: impl IntoIterator<Item = ThreadId>) -> Self {
        Self {
            inner,
            exempt: exempt.into_iter().collect(),
        }
    }
}

impl<A: PauseAdvisor> PauseAdvisor for ExemptThreads<A> {
    fn observe(&mut self, index: usize, op: Op) {
        self.inner.observe(index, op);
    }
    fn should_delay(&mut self, t: ThreadId, op: Op) -> bool {
        !self.exempt.contains(&t) && self.inner.should_delay(t, op)
    }
}

/// Telemetry of the [`AdversarialScheduler`]'s pause watchdog: why pauses
/// ended, so a run can prove no thread was starved indefinitely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Pauses issued on the advisor's suspicion.
    pub pauses_issued: u64,
    /// Pause waivers because the paused thread was the *only* runnable one.
    pub forced_sole_runnable: u64,
    /// Pause waivers because every runnable thread was paused at once.
    pub forced_all_paused: u64,
    /// Pause waivers because the global pause-step deadline expired.
    pub forced_deadline: u64,
}

impl WatchdogStats {
    /// Total forced resumes, across all reasons.
    pub fn forced_total(&self) -> u64 {
        self.forced_sole_runnable + self.forced_all_paused + self.forced_deadline
    }

    /// Mirrors the watchdog counters into a telemetry registry as gauges
    /// under the stable `watchdog.*` names (see
    /// [`velodrome_telemetry::names`]). A no-op on the disabled handle.
    pub fn publish(&self, telemetry: &velodrome_telemetry::Telemetry) {
        use velodrome_telemetry::names;
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.set_gauge(names::WATCHDOG_PAUSES_ISSUED, self.pauses_issued);
        telemetry.set_gauge(
            names::WATCHDOG_FORCED_SOLE_RUNNABLE,
            self.forced_sole_runnable,
        );
        telemetry.set_gauge(names::WATCHDOG_FORCED_ALL_PAUSED, self.forced_all_paused);
        telemetry.set_gauge(names::WATCHDOG_FORCED_DEADLINE, self.forced_deadline);
    }
}

/// The paper's adversarial scheduler: wraps an inner scheduler and suspends
/// threads flagged by a [`PauseAdvisor`] for `pause_steps` scheduler steps
/// (the analogue of the paper's 100 ms delay).
///
/// A *pause watchdog* guarantees the pause logic can never deadlock or
/// starve the host workload:
///
/// * if every runnable thread is paused (including the sole-runnable
///   special case), all pauses are waived immediately — the equivalent of
///   the paper's delay timing out;
/// * a global pause-step deadline (default `4 × pause_steps + 16`, counted
///   from the first outstanding pause) force-resumes every paused thread
///   even when other threads are runnable, bounding the total delay any
///   configuration can inject;
/// * every force-resumed thread backs off exponentially: each forced
///   resume halves that thread's subsequent pause lengths, so a thread the
///   workload keeps depending on stops being re-paused for long. Serving a
///   full pause to expiry resets the backoff.
///
/// Forced resumes are counted per reason in [`WatchdogStats`]. With no
/// forced resume the scheduling stream is identical to the un-hardened
/// scheduler's.
#[derive(Debug)]
pub struct AdversarialScheduler<A, S> {
    advisor: A,
    inner: S,
    pause_steps: u64,
    /// Global deadline: the longest any pause episode may last.
    deadline: u64,
    /// Step at which the current pause episode hits the deadline; set when
    /// the first pause of an episode is issued, cleared when none remain.
    deadline_at: Option<u64>,
    /// Thread → step until which it is paused.
    paused: HashMap<ThreadId, u64>,
    /// Thread → number of consecutive forced resumes (exponent of the
    /// pause-length backoff).
    backoff: HashMap<ThreadId, u32>,
    /// Threads that already served one pause for their current suspicion;
    /// cleared when the advisor stops flagging them.
    served: HashMap<ThreadId, bool>,
    stats: WatchdogStats,
}

impl<A: PauseAdvisor, S: Scheduler> AdversarialScheduler<A, S> {
    /// Wraps `inner`, pausing advisor-flagged threads for `pause_steps`.
    pub fn new(advisor: A, inner: S, pause_steps: u64) -> Self {
        Self {
            advisor,
            inner,
            pause_steps,
            deadline: pause_steps.saturating_mul(4).saturating_add(16),
            deadline_at: None,
            paused: HashMap::new(),
            backoff: HashMap::new(),
            served: HashMap::new(),
            stats: WatchdogStats::default(),
        }
    }

    /// Overrides the global pause-step deadline (default
    /// `4 × pause_steps + 16`).
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = deadline;
        self
    }

    /// Number of pauses issued so far.
    pub fn delays_issued(&self) -> u64 {
        self.stats.pauses_issued
    }

    /// Watchdog telemetry: pauses issued and forced resumes by reason.
    pub fn watchdog_stats(&self) -> WatchdogStats {
        self.stats
    }

    /// Consumes the scheduler, returning the advisor.
    pub fn into_advisor(self) -> A {
        self.advisor
    }

    /// Waives every outstanding pause, charging one backoff step to each
    /// force-resumed thread.
    fn force_resume_all(&mut self) {
        for &t in self.paused.keys() {
            *self.backoff.entry(t).or_insert(0) += 1;
        }
        self.paused.clear();
        self.deadline_at = None;
    }
}

impl<A: PauseAdvisor, S: Scheduler> Scheduler for AdversarialScheduler<A, S> {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        // Flag newly suspicious threads.
        for (i, &t) in view.runnable.iter().enumerate() {
            if let Some(op) = view.next_ops[i] {
                if self.advisor.should_delay(t, op) {
                    if !self.paused.contains_key(&t)
                        && !self.served.get(&t).copied().unwrap_or(false)
                    {
                        // Exponential backoff: each forced resume this
                        // thread has suffered halves its pause length.
                        let steps = self.pause_steps >> self.backoff.get(&t).copied().unwrap_or(0);
                        self.paused.insert(t, view.step.saturating_add(steps));
                        self.served.insert(t, true);
                        self.stats.pauses_issued += 1;
                        if self.deadline_at.is_none() {
                            self.deadline_at = Some(view.step.saturating_add(self.deadline));
                        }
                    }
                } else {
                    self.served.remove(&t);
                }
            }
        }
        let now = view.step;
        // Global deadline: no pause episode may outlive it, no matter how
        // large `pause_steps` is.
        if self.deadline_at.is_some_and(|d| now >= d) && !self.paused.is_empty() {
            self.stats.forced_deadline += 1;
            self.force_resume_all();
        }
        // Drop expired pauses; a pause served to expiry clears the backoff.
        let expired: Vec<ThreadId> = self
            .paused
            .iter()
            .filter(|&(_, &until)| until <= now)
            .map(|(&t, _)| t)
            .collect();
        for t in expired {
            self.paused.remove(&t);
            self.backoff.remove(&t);
        }
        if self.paused.is_empty() {
            self.deadline_at = None;
        }

        let available: Vec<usize> = (0..view.runnable.len())
            .filter(|&i| !self.paused.contains_key(&view.runnable[i]))
            .collect();
        if available.is_empty() {
            // Everyone runnable is paused: waive (the paper's delay
            // timeout), counting why.
            if view.runnable.len() == 1 {
                self.stats.forced_sole_runnable += 1;
            } else {
                self.stats.forced_all_paused += 1;
            }
            self.force_resume_all();
            return self.inner.pick(view);
        }
        let filtered_ids: Vec<ThreadId> = available.iter().map(|&i| view.runnable[i]).collect();
        let filtered_ops: Vec<Option<Op>> = available.iter().map(|&i| view.next_ops[i]).collect();
        let sub = SchedView {
            runnable: &filtered_ids,
            next_ops: &filtered_ops,
            step: view.step,
        };
        let choice = self.inner.pick(&sub).min(available.len() - 1);
        available[choice]
    }

    fn observe(&mut self, index: usize, op: Op) {
        self.advisor.observe(index, op);
        self.inner.observe(index, op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome_events::VarId;

    fn view<'a>(runnable: &'a [ThreadId], next_ops: &'a [Option<Op>], step: u64) -> SchedView<'a> {
        SchedView {
            runnable,
            next_ops,
            step,
        }
    }

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let ids = [t(0), t(1), t(2)];
        let ops = [None, None, None];
        assert_eq!(rr.pick(&view(&ids, &ops, 0)), 0);
        assert_eq!(rr.pick(&view(&ids, &ops, 1)), 1);
        assert_eq!(rr.pick(&view(&ids, &ops, 2)), 2);
        assert_eq!(rr.pick(&view(&ids, &ops, 3)), 0, "wraps around");
    }

    #[test]
    fn round_robin_skips_missing_threads() {
        let mut rr = RoundRobin::new();
        let ids = [t(0), t(2)];
        let ops = [None, None];
        assert_eq!(rr.pick(&view(&ids, &ops, 0)), 0);
        assert_eq!(rr.pick(&view(&ids, &ops, 1)), 1, "t1 not runnable; t2 next");
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let ids = [t(0), t(1), t(2)];
        let ops = [None, None, None];
        let picks = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..20)
                .map(|i| s.pick(&view(&ids, &ops, i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8), "different seeds explore differently");
    }

    #[test]
    fn sticky_stays_on_current_thread() {
        let mut s = Sticky::new();
        let ids = [t(0), t(1)];
        let ops = [None, None];
        assert_eq!(s.pick(&view(&ids, &ops, 0)), 0);
        assert_eq!(s.pick(&view(&ids, &ops, 1)), 0);
        let only_t1 = [t(1)];
        assert_eq!(
            s.pick(&view(&only_t1, &[None], 2)),
            0,
            "switches when blocked"
        );
        assert_eq!(s.pick(&view(&ids, &ops, 3)), 1, "then sticks to t1");
    }

    #[test]
    fn pct_runs_highest_priority_and_demotes() {
        let ids = [t(0), t(1)];
        let ops = [None, None];
        // depth 1: no change points; the same thread always wins.
        let mut s = PctScheduler::new(3, 100, 1);
        let first = s.pick(&view(&ids, &ops, 0));
        for step in 1..10 {
            assert_eq!(s.pick(&view(&ids, &ops, step)), first);
        }
        // depth 2 with an early change point: the winner gets demoted and
        // the other thread takes over.
        let mut s = PctScheduler::new(3, 1, 2);
        let first = s.pick(&view(&ids, &ops, 5));
        let second = s.pick(&view(&ids, &ops, 6));
        assert_ne!(ids[first], ids[second], "demotion switches threads");
    }

    #[test]
    fn pct_is_deterministic_per_seed() {
        let ids = [t(0), t(1), t(2)];
        let ops = [None, None, None];
        let picks = |seed| {
            let mut s = PctScheduler::new(seed, 50, 3);
            (0..30)
                .map(|i| s.pick(&view(&ids, &ops, i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(11), picks(11));
    }

    struct DelayT0;
    impl PauseAdvisor for DelayT0 {
        fn observe(&mut self, _i: usize, _op: Op) {}
        fn should_delay(&mut self, t: ThreadId, _op: Op) -> bool {
            t == ThreadId::new(0)
        }
    }

    #[test]
    fn adversarial_pauses_flagged_thread() {
        let mut s = AdversarialScheduler::new(DelayT0, RoundRobin::new(), 10);
        let ids = [t(0), t(1)];
        let w = Op::Write {
            t: t(0),
            x: VarId::new(0),
        };
        let ops = [
            Some(w),
            Some(Op::Write {
                t: t(1),
                x: VarId::new(0),
            }),
        ];
        // While t0 is paused, t1 runs.
        for step in 0..5 {
            let i = s.pick(&view(&ids, &ops, step));
            assert_eq!(ids[i], t(1), "paused thread must not run");
        }
        assert_eq!(s.delays_issued(), 1, "one pause per suspicion");
        // After expiry, t0 may run again.
        let i = s.pick(&view(&ids, &ops, 50));
        let _ = i; // either is acceptable; the pause has expired
        assert!(!s.paused.contains_key(&t(0)) || s.paused[&t(0)] > 50);
    }

    #[test]
    fn adversarial_waives_when_all_paused() {
        let mut s = AdversarialScheduler::new(DelayT0, RoundRobin::new(), 1_000);
        let ids = [t(0)];
        let ops = [Some(Op::Write {
            t: t(0),
            x: VarId::new(0),
        })];
        // t0 is the only runnable thread: pause must be waived.
        let i = s.pick(&view(&ids, &ops, 0));
        assert_eq!(i, 0);
        assert_eq!(s.watchdog_stats().forced_sole_runnable, 1);
        assert_eq!(s.watchdog_stats().forced_total(), 1);
    }

    struct DelayAll;
    impl PauseAdvisor for DelayAll {
        fn observe(&mut self, _i: usize, _op: Op) {}
        fn should_delay(&mut self, _t: ThreadId, _op: Op) -> bool {
            true
        }
    }

    #[test]
    fn watchdog_counts_all_paused_waiver() {
        let mut s = AdversarialScheduler::new(DelayAll, RoundRobin::new(), 1_000);
        let ids = [t(0), t(1)];
        let w = |i| {
            Some(Op::Write {
                t: t(i),
                x: VarId::new(0),
            })
        };
        let ops = [w(0), w(1)];
        // Both threads get flagged and paused at once: the waiver must fire
        // and progress must continue.
        let i = s.pick(&view(&ids, &ops, 0));
        assert!(i < 2);
        let st = s.watchdog_stats();
        assert_eq!(st.pauses_issued, 2);
        assert_eq!(st.forced_all_paused, 1);
        assert_eq!(st.forced_sole_runnable, 0);
    }

    #[test]
    fn watchdog_deadline_force_resumes_paused_thread() {
        // Pathologically long pause, but a short global deadline: t0 must be
        // force-resumed once the deadline expires even though t1 could keep
        // the run "progressing" forever.
        let mut s =
            AdversarialScheduler::new(DelayT0, RoundRobin::new(), u64::MAX).with_deadline(5);
        let ids = [t(0), t(1)];
        let w = |i| {
            Some(Op::Write {
                t: t(i),
                x: VarId::new(0),
            })
        };
        let ops = [w(0), w(1)];
        for step in 0..5 {
            let i = s.pick(&view(&ids, &ops, step));
            assert_eq!(ids[i], t(1), "t0 paused until the deadline");
        }
        // Deadline reached (issued at step 0 ⇒ deadline_at = 5): t0 runs.
        let i = s.pick(&view(&ids, &ops, 5));
        assert_eq!(ids[i], t(0), "deadline forces t0 back in");
        let st = s.watchdog_stats();
        assert_eq!(st.forced_deadline, 1);
        assert_eq!(st.pauses_issued, 1);
    }

    #[test]
    fn watchdog_backoff_halves_repeat_pauses() {
        // pause_steps 8 with a sole runnable thread: every pick force-resumes
        // t0, and each forced resume halves the next pause. The scheduler
        // must keep making progress (picking t0) the whole time.
        let mut s = AdversarialScheduler::new(DelayT0, RoundRobin::new(), 8);
        let ids = [t(0)];
        let ops = [Some(Op::Write {
            t: t(0),
            x: VarId::new(0),
        })];
        for step in 0..6 {
            // Un-flagging between steps clears `served` so t0 is re-paused.
            s.served.clear();
            assert_eq!(s.pick(&view(&ids, &ops, step)), 0, "always progresses");
        }
        // Steps 0–3 pause for 8, 4, 2, 1 steps and are force-waived each
        // time (backoff 1..=4). At step 4 the effective pause is 8 >> 4 = 0:
        // it expires instantly — no forced resume needed, backoff resets —
        // and step 5 starts the cycle over with a forced full-length pause.
        let st = s.watchdog_stats();
        assert_eq!(st.pauses_issued, 6);
        assert_eq!(st.forced_sole_runnable, 5);
        assert_eq!(
            s.backoff.get(&t(0)).copied(),
            Some(1),
            "reset then re-armed"
        );
    }
}
