//! Structured error reports for serializability violations.
//!
//! When Velodrome rejects a cycle-creating edge, it reconstructs the cycle
//! of transactions, decides via the edge timestamps whether the cycle is
//! *increasing* (Section 4.3) — in which case the current transaction is
//! provably not self-serializable and is blamed — and renders the result in
//! the paper's error-graph format: one box per transaction, each
//! happens-before edge labeled with the operation that generated it, the
//! cycle-closing edge dashed, and the blamed transaction outlined.

use crate::arena::NodeDesc;
use crate::step::Ts;
use serde::Serialize;
use velodrome_events::{Label, Op, SymbolTable, ThreadId};

/// One transaction on a reported cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ReportNode {
    /// Thread executing the transaction.
    pub thread: ThreadId,
    /// Label of the outermost atomic block, if the transaction is one.
    pub label: Option<Label>,
    /// Trace index of the transaction's first operation.
    pub first_op: usize,
}

impl From<&NodeDesc> for ReportNode {
    fn from(d: &NodeDesc) -> Self {
        ReportNode {
            thread: d.thread,
            label: d.label,
            first_op: d.first_op,
        }
    }
}

/// One happens-before edge on a reported cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ReportEdge {
    /// The operation that generated the edge.
    pub op: Op,
    /// Trace index of that operation.
    pub op_index: usize,
    /// Timestamp of the edge's tail operation within its transaction.
    pub from_ts: Ts,
    /// Timestamp of the edge's head operation within its transaction.
    pub to_ts: Ts,
}

/// A detected serializability violation: a cycle in the transactional
/// happens-before graph, with blame assignment.
///
/// `nodes[0]` is the current transaction (the one whose operation completed
/// the cycle); `edges[i]` runs from `nodes[i]` to `nodes[(i + 1) % n]`, so
/// the final edge is the rejected, cycle-closing edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CycleReport {
    /// Transactions on the cycle, starting with the current transaction.
    pub nodes: Vec<ReportNode>,
    /// Edges of the cycle; the last one is the rejected closing edge.
    pub edges: Vec<ReportEdge>,
    /// Whether the cycle is increasing through every node other than the
    /// current transaction — the condition under which the current
    /// transaction is provably not self-serializable.
    pub increasing: bool,
    /// Index into `nodes` of the blamed transaction (always 0 when present).
    pub blamed: Option<usize>,
    /// Labels of the atomic blocks refuted by this cycle, outermost first.
    /// Only blocks containing both the cycle's root and target operations
    /// are refuted.
    pub refuted: Vec<Label>,
    /// Trace index of the operation that completed the cycle.
    pub op_index: usize,
}

impl CycleReport {
    /// The blamed transaction's outermost refuted label, if blame was
    /// assigned.
    pub fn blamed_label(&self) -> Option<Label> {
        self.blamed.and_then(|_| self.refuted.first().copied())
    }

    /// One-line human-readable summary.
    pub fn summary(&self, names: &SymbolTable) -> String {
        let method = self
            .blamed_label()
            .or(self.nodes[0].label)
            .map(|l| names.label(l))
            .unwrap_or_else(|| "<unary>".to_owned());
        let cycle: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                let label = n
                    .label
                    .map(|l| names.label(l))
                    .unwrap_or_else(|| "<unary>".to_owned());
                format!("{}:{}", names.thread(n.thread), label)
            })
            .collect();
        let blame = if self.blamed.is_some() {
            "blamed"
        } else {
            "no single transaction blamed"
        };
        format!(
            "{method} is not atomic: cycle [{}] at op {} ({blame})",
            cycle.join(" -> "),
            self.op_index
        )
    }

    /// Renders the cycle as indented plain text: one line per
    /// happens-before edge, the closing edge marked, blame and refuted
    /// blocks listed.
    pub fn to_text(&self, names: &SymbolTable) -> String {
        let mut out = String::new();
        let show = |n: &ReportNode| {
            let label = n
                .label
                .map(|l| names.label(l))
                .unwrap_or_else(|| "<unary>".to_owned());
            format!("{}:{}", names.thread(n.thread), label)
        };
        let count = self.nodes.len();
        for (i, e) in self.edges.iter().enumerate() {
            let closing = if i + 1 == self.edges.len() {
                "  (closes cycle)"
            } else {
                ""
            };
            out.push_str(&format!(
                "  {} --{}--> {}{closing}\n",
                show(&self.nodes[i]),
                render_op(e.op, names),
                show(&self.nodes[(i + 1) % count]),
            ));
        }
        match self.blamed {
            Some(i) => {
                let refuted: Vec<String> = self.refuted.iter().map(|&l| names.label(l)).collect();
                out.push_str(&format!(
                    "  blame: {} (refuted blocks: {})\n",
                    show(&self.nodes[i]),
                    refuted.join(", ")
                ));
            }
            None => out.push_str("  no single transaction can be blamed\n"),
        }
        out
    }

    /// Renders the cycle as a Graphviz `dot` graph in the paper's format:
    /// boxed transactions, operation-labeled edges, a dashed closing edge,
    /// and a double-outlined blamed transaction.
    pub fn to_dot(&self, names: &SymbolTable) -> String {
        let mut out = String::from("digraph atomicity_violation {\n");
        out.push_str("  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let label = n
                .label
                .map(|l| names.label(l))
                .unwrap_or_else(|| "<unary>".to_owned());
            let peripheries = if self.blamed == Some(i) { 2 } else { 1 };
            out.push_str(&format!(
                "  t{i} [label=\"{}: {}\", peripheries={peripheries}];\n",
                names.thread(n.thread),
                label
            ));
        }
        let n = self.nodes.len();
        for (i, e) in self.edges.iter().enumerate() {
            let style = if i + 1 == self.edges.len() {
                ", style=dashed"
            } else {
                ""
            };
            out.push_str(&format!(
                "  t{} -> t{} [label=\"{}\"{style}];\n",
                i,
                (i + 1) % n,
                render_op(e.op, names)
            ));
        }
        out.push_str("}\n");
        out
    }
}

fn render_op(op: Op, names: &SymbolTable) -> String {
    match op {
        Op::Read { x, .. } => format!("rd({})", names.var(x)),
        Op::Write { x, .. } => format!("wr({})", names.var(x)),
        Op::Acquire { m, .. } => format!("acq({})", names.lock(m)),
        Op::Release { m, .. } => format!("rel({})", names.lock(m)),
        Op::Begin { l, .. } => format!("begin({})", names.label(l)),
        Op::End { .. } => "end".to_owned(),
        Op::Fork { child, .. } => format!("fork({})", names.thread(child)),
        Op::Join { child, .. } => format!("join({})", names.thread(child)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome_events::VarId;

    fn sample() -> CycleReport {
        CycleReport {
            nodes: vec![
                ReportNode {
                    thread: ThreadId::new(0),
                    label: Some(Label::new(0)),
                    first_op: 0,
                },
                ReportNode {
                    thread: ThreadId::new(1),
                    label: None,
                    first_op: 2,
                },
            ],
            edges: vec![
                ReportEdge {
                    op: Op::Write {
                        t: ThreadId::new(1),
                        x: VarId::new(0),
                    },
                    op_index: 2,
                    from_ts: 1,
                    to_ts: 1,
                },
                ReportEdge {
                    op: Op::Write {
                        t: ThreadId::new(0),
                        x: VarId::new(0),
                    },
                    op_index: 3,
                    from_ts: 1,
                    to_ts: 2,
                },
            ],
            increasing: true,
            blamed: Some(0),
            refuted: vec![Label::new(0)],
            op_index: 3,
        }
    }

    #[test]
    fn summary_names_blamed_method() {
        let mut names = SymbolTable::new();
        names.name_label(Label::new(0), "Set.add");
        let s = sample().summary(&names);
        assert!(s.contains("Set.add is not atomic"), "{s}");
        assert!(s.contains("blamed"), "{s}");
    }

    #[test]
    fn dot_marks_blame_and_dashed_closing_edge() {
        let mut names = SymbolTable::new();
        names.name_label(Label::new(0), "Set.add");
        names.name_var(VarId::new(0), "elems");
        let dot = sample().to_dot(&names);
        assert!(dot.contains("peripheries=2"), "{dot}");
        assert!(dot.contains("style=dashed"), "{dot}");
        assert!(dot.contains("wr(elems)"), "{dot}");
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn to_text_lists_edges_and_blame() {
        let mut names = SymbolTable::new();
        names.name_label(Label::new(0), "Set.add");
        names.name_var(VarId::new(0), "elems");
        let text = sample().to_text(&names);
        assert!(text.contains("closes cycle"), "{text}");
        assert!(text.contains("blame:"), "{text}");
        assert!(text.contains("Set.add"), "{text}");
        assert!(text.contains("wr(elems)"), "{text}");
    }

    #[test]
    fn unblamed_report_summary() {
        let mut report = sample();
        report.blamed = None;
        report.refuted.clear();
        let names = SymbolTable::new();
        let s = report.summary(&names);
        assert!(s.contains("no single transaction blamed"), "{s}");
    }

    #[test]
    fn reports_serialize_to_json() {
        let json = serde_json::to_string(&sample()).unwrap();
        assert!(json.contains("\"increasing\":true"), "{json}");
        assert!(json.contains("\"blamed\":0"), "{json}");
    }

    #[test]
    fn blamed_label_requires_blame() {
        let report = sample();
        assert_eq!(report.blamed_label(), Some(Label::new(0)));
        let mut unblamed = report;
        unblamed.blamed = None;
        assert_eq!(unblamed.blamed_label(), None);
    }
}
