//! The transaction-node arena: allocation, recycling, happens-before edges,
//! ancestor sets, and reference-counting garbage collection.
//!
//! This is the data-representation core of Section 4.1 and Section 5:
//!
//! * Nodes live in recyclable *slots*; a step `(slot, ts)` is stale once the
//!   slot's incarnation that issued `ts` has been collected (tracked by a
//!   per-slot timestamp floor) and is then interpreted as `⊥`.
//! * At most one happens-before edge is stored per ordered node pair; adding
//!   another replaces its timestamps (the paper's `H ⊎ G` operator), which
//!   bounds `|H|` by `|Node|²`.
//! * Each node keeps its set of (alive) ancestors, so a cycle-creating edge
//!   is detected *before* insertion; the graph therefore stays acyclic and
//!   plain reference counting collects garbage immediately.
//! * A node is collected once it is finished (not any thread's current
//!   transaction) and has no incoming edges: such a node can never again
//!   appear on a cycle. Collection cascades: removing the node's outgoing
//!   edges may render its successors collectible.

use crate::smallgraph::{SlotMap, SlotSet};
use crate::step::{SlotIdx, Step, Ts, MAX_TS};
use std::fmt;
use velodrome_events::{Label, Op, ThreadId};

/// A happens-before edge between two nodes, annotated with the timestamps of
/// the operations at its tail and head and the operation that generated it
/// (for blame assignment and error graphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeInfo {
    /// Timestamp of the tail operation inside the source node.
    pub from_ts: Ts,
    /// Timestamp of the head operation inside the target node.
    pub to_ts: Ts,
    /// The operation whose processing created the edge.
    pub op: Op,
    /// Trace index of that operation.
    pub op_index: usize,
}

/// Metadata describing one node (transaction) for error reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDesc {
    /// The thread executing the transaction.
    pub thread: ThreadId,
    /// Label of the transaction's outermost atomic block, if any.
    pub label: Option<Label>,
    /// Trace index of the transaction's first operation.
    pub first_op: usize,
}

/// A stored edge: its report metadata plus whether it was transitively
/// implied at insertion time. Implied edges exist only when redundant-edge
/// elision is disabled (the differential baseline); they change no
/// reachability and are skipped during path reconstruction, so the baseline
/// produces byte-identical reports to the eliding configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EdgeRec {
    info: EdgeInfo,
    implied: bool,
}

#[derive(Debug)]
struct Slot {
    alive: bool,
    /// Steps with `ts <= floor` belong to collected incarnations.
    floor: Ts,
    /// Last timestamp issued; monotonic across incarnations.
    counter: Ts,
    /// Whether the node is some thread's current transaction.
    c_ref: bool,
    desc: NodeDesc,
    /// Outgoing edges, keyed by target slot (sorted vec: the per-slot degree
    /// is tiny, and sorted order makes path reconstruction deterministic).
    out: SlotMap<EdgeRec>,
    /// Incoming edges, keyed by source slot.
    inc: SlotMap<EdgeRec>,
    /// Alive nodes with a path to this node (over non-implied edges).
    anc: SlotSet,
}

impl Slot {
    fn collectible(&self) -> bool {
        self.alive && !self.c_ref && self.inc.is_empty()
    }
}

/// Statistics reported in Table 1 of the paper (node counts) plus internal
/// counters used by the ablation benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total nodes ever allocated ("Allocated" in Table 1).
    pub allocated: u64,
    /// Peak simultaneously-alive nodes ("Max. Alive" in Table 1).
    pub max_alive: u64,
    /// Currently alive nodes.
    pub cur_alive: u64,
    /// Nodes reclaimed by garbage collection.
    pub collected: u64,
    /// Edges inserted (not counting timestamp replacements).
    pub edges_added: u64,
    /// Edge insertions that only refreshed timestamps of an existing edge.
    pub edges_replaced: u64,
    /// Edge insertions skipped because the ordering was already implied
    /// transitively (only counted when elision is enabled).
    pub edges_elided: u64,
}

/// Result of attempting to add a happens-before edge that would close a
/// cycle. The edge is *not* added; the graph stays acyclic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleFound {
    /// Source node of the rejected edge.
    pub from: SlotIdx,
    /// Tail timestamp of the rejected edge.
    pub from_ts: Ts,
    /// Target node of the rejected edge (the current transaction).
    pub to: SlotIdx,
    /// Head timestamp of the rejected edge.
    pub to_ts: Ts,
}

/// A recoverable arena capacity failure. Neither variant corrupts the
/// arena: the failed allocation or bump simply did not happen, and the
/// graph, stats, and free list are exactly as before the call. Callers
/// (the engine) map these onto the degradation ladder instead of
/// panicking the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaError {
    /// All 65535 allocatable slots hold simultaneously-live transactions.
    /// Slot index `u16::MAX` is reserved so no allocatable slot can pack a
    /// step colliding with [`Step::NONE`].
    Exhausted,
    /// A slot's timestamp counter reached the 48-bit limit; issuing another
    /// step in that node would not be representable.
    TsOverflow,
}

impl fmt::Display for ArenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaError::Exhausted => write!(
                f,
                "node arena exhausted: 65535 simultaneously-live transactions \
                 (is garbage collection disabled on a large trace?)"
            ),
            ArenaError::TsOverflow => {
                write!(f, "node timestamp counter overflowed 48 bits")
            }
        }
    }
}

impl std::error::Error for ArenaError {}

/// The node arena.
#[derive(Debug)]
pub struct Arena {
    slots: Vec<Slot>,
    free: Vec<SlotIdx>,
    stats: ArenaStats,
    gc_enabled: bool,
    /// Skip insertion of transitively-implied edges (the redundant-edge
    /// elision gate). When disabled, implied edges are stored but tagged,
    /// preserving the exact warnings and reports of the eliding mode while
    /// paying the unoptimized insertion cost — the differential baseline.
    elide: bool,
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl Arena {
    /// Creates an arena with garbage collection and edge elision enabled.
    pub fn new() -> Self {
        Self::with_options(true, true)
    }

    /// Creates an arena, optionally disabling garbage collection (used by
    /// the GC ablation benchmark; without GC the arena holds every node
    /// ever allocated, up to the 16-bit slot limit).
    pub fn with_gc(gc_enabled: bool) -> Self {
        Self::with_options(gc_enabled, true)
    }

    /// Creates an arena with explicit GC and redundant-edge elision flags.
    pub fn with_options(gc_enabled: bool, elide: bool) -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            stats: ArenaStats::default(),
            gc_enabled,
            elide,
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Allocates a fresh node and returns the step of its first operation.
    ///
    /// `current` marks the node as a thread's current transaction (a strong
    /// reference); merge-created nodes pass `false`.
    ///
    /// Fails with [`ArenaError::Exhausted`] when all 65535 allocatable
    /// slots are live (index `u16::MAX` is reserved: it would let a step
    /// collide with [`Step::NONE`] at timestamp [`MAX_TS`]), and with
    /// [`ArenaError::TsOverflow`] when the only recycled slot available has
    /// spent its 48-bit timestamp space. On failure the arena is unchanged.
    pub fn alloc(&mut self, desc: NodeDesc, current: bool) -> Result<Step, ArenaError> {
        let idx = match self.free.pop() {
            Some(idx) => {
                if self.slots[idx as usize].counter >= MAX_TS {
                    // Recycled slot has no timestamps left; put it back so
                    // the failed call leaves the free list intact.
                    self.free.push(idx);
                    return Err(ArenaError::TsOverflow);
                }
                idx
            }
            None => {
                // `>=` reserves slot index u16::MAX (65535): with at most
                // 65535 slots, indices stop at 65534 and no allocatable
                // slot can ever pack a step that collides with `⊥`.
                if self.slots.len() >= SlotIdx::MAX as usize {
                    return Err(ArenaError::Exhausted);
                }
                let idx = self.slots.len() as SlotIdx;
                self.slots.push(Slot {
                    alive: false,
                    floor: 0,
                    counter: 0,
                    c_ref: false,
                    desc: desc.clone(),
                    out: SlotMap::new(),
                    inc: SlotMap::new(),
                    anc: SlotSet::new(),
                });
                idx
            }
        };
        let slot = &mut self.slots[idx as usize];
        debug_assert!(!slot.alive, "allocating an alive slot");
        slot.alive = true;
        slot.c_ref = current;
        slot.desc = desc;
        slot.out.clear();
        slot.inc.clear();
        slot.anc.clear();
        slot.counter += 1;
        self.stats.allocated += 1;
        self.stats.cur_alive += 1;
        self.stats.max_alive = self.stats.max_alive.max(self.stats.cur_alive);
        Ok(Step::new(idx, slot.counter))
    }

    /// Issues the next timestamp within an alive node.
    ///
    /// Fails with [`ArenaError::TsOverflow`] once the node's counter
    /// reaches the 48-bit limit; the counter is not advanced, so the slot's
    /// existing steps stay valid.
    pub fn bump(&mut self, idx: SlotIdx) -> Result<Step, ArenaError> {
        let slot = &mut self.slots[idx as usize];
        debug_assert!(slot.alive, "bump of dead slot");
        if slot.counter >= MAX_TS {
            return Err(ArenaError::TsOverflow);
        }
        slot.counter += 1;
        Ok(Step::new(idx, slot.counter))
    }

    /// Test hook: pins a slot's timestamp counter so overflow paths can be
    /// exercised without issuing 2^48 bumps. Not part of the public API.
    #[doc(hidden)]
    pub fn force_counter_for_test(&mut self, idx: SlotIdx, counter: Ts) {
        self.slots[idx as usize].counter = counter;
    }

    /// Resolves a (weak) step reference: returns `Step::NONE` if the step is
    /// `⊥`, or refers to a collected incarnation of its slot.
    pub fn resolve(&self, step: Step) -> Step {
        match step.slot() {
            None => Step::NONE,
            Some(idx) => {
                let slot = &self.slots[idx as usize];
                let ts = step.ts().expect("non-none step has ts");
                if slot.alive && ts > slot.floor {
                    step
                } else {
                    Step::NONE
                }
            }
        }
    }

    /// Returns `true` when the node is alive.
    pub fn is_alive(&self, idx: SlotIdx) -> bool {
        self.slots[idx as usize].alive
    }

    /// Returns `true` when the node is some thread's current transaction.
    ///
    /// Only current (and freshly allocated) nodes can ever gain incoming
    /// edges, so merging a unary operation into a *current* node of another
    /// thread is unsafe: a later conflicting edge back into that node would
    /// be a filtered self-edge and a real two-transaction cycle would go
    /// undetected.
    pub fn is_current(&self, idx: SlotIdx) -> bool {
        self.slots[idx as usize].c_ref
    }

    /// Descriptor of an alive node.
    pub fn desc(&self, idx: SlotIdx) -> &NodeDesc {
        &self.slots[idx as usize].desc
    }

    /// Does `a` happen (non-strictly) before `b`?
    ///
    /// Steps within one node are ordered by timestamp; across nodes the
    /// question is ancestry in the happens-before graph. Both steps must be
    /// resolved (alive) or `⊥`; `⊥` never happens-before anything.
    pub fn happens_before(&self, a: Step, b: Step) -> bool {
        let (Some(na), Some(nb)) = (a.slot(), b.slot()) else {
            return false;
        };
        if na == nb {
            return a.ts() <= b.ts();
        }
        self.slots[nb as usize].anc.contains(na)
    }

    /// Adds (or refreshes) the happens-before edge `from → to`.
    ///
    /// Returns `Ok(true)` when an edge was inserted or refreshed,
    /// `Ok(false)` when the call was a no-op (a `⊥`/stale endpoint, a
    /// self-edge, or an ordering already implied transitively with elision
    /// enabled), and `Err(CycleFound)` when insertion would create a
    /// cycle — in which case the graph is left unchanged.
    pub fn add_edge(
        &mut self,
        from: Step,
        to: Step,
        op: Op,
        op_index: usize,
    ) -> Result<bool, CycleFound> {
        let from = self.resolve(from);
        let (Some((nf, tf)), Some((nt, tt))) = (
            from.is_some().then(|| from.unpack()),
            to.is_some().then(|| to.unpack()),
        ) else {
            return Ok(false);
        };
        if nf == nt {
            return Ok(false);
        }
        // Edge nf → nt closes a cycle iff a path nt →* nf already exists.
        if self.slots[nf as usize].anc.contains(nt) {
            return Err(CycleFound {
                from: nf,
                from_ts: tf,
                to: nt,
                to_ts: tt,
            });
        }
        let info = EdgeInfo {
            from_ts: tf,
            to_ts: tt,
            op,
            op_index,
        };
        // A stored direct edge is refreshed in place (the paper's `H ⊎ G`
        // keeps the latest timestamps per ordered node pair).
        if let Some(rec) = self.slots[nf as usize].out.get_mut(nt) {
            rec.info = info;
            self.slots[nt as usize]
                .inc
                .get_mut(nf)
                .expect("edge symmetry")
                .info = info;
            self.stats.edges_replaced += 1;
            return Ok(true);
        }
        // Redundant-edge gate: a path nf →* nt already orders the pair, so
        // the edge adds no reachability — eliding it preserves ancestor-set
        // exactness, cycle detection, and GC timing (an implied edge's
        // witness path outlives it: each path node is kept alive by its
        // predecessor's stored edge while `nf` is alive).
        if self.slots[nt as usize].anc.contains(nf) {
            if self.elide {
                self.stats.edges_elided += 1;
                return Ok(false);
            }
            // Baseline mode: store the edge, tagged so path reconstruction
            // skips it. Ancestor propagation would be a no-op (anc(nf) ∪
            // {nf} ⊆ anc(nt) already holds) and is not performed.
            let rec = EdgeRec {
                info,
                implied: true,
            };
            self.slots[nf as usize].out.insert(nt, rec);
            self.slots[nt as usize].inc.insert(nf, rec);
            self.stats.edges_added += 1;
            return Ok(true);
        }
        let rec = EdgeRec {
            info,
            implied: false,
        };
        self.slots[nf as usize].out.insert(nt, rec);
        self.slots[nt as usize].inc.insert(nf, rec);
        self.stats.edges_added += 1;
        // Propagate ancestors: nt (and its descendants) gain anc(nf) ∪ {nf}.
        // Implied edges are skipped: their targets are reached through the
        // non-implied witness path anyway.
        let mut gained = self.slots[nf as usize].anc.clone();
        gained.insert(nf);
        let mut work = vec![nt];
        while let Some(v) = work.pop() {
            let slot = &mut self.slots[v as usize];
            if slot.anc.merge(&gained) {
                work.extend(slot.out.iter().filter(|(_, r)| !r.implied).map(|(s, _)| s));
            }
        }
        Ok(true)
    }

    /// Marks a node as no longer any thread's current transaction and
    /// collects it (and any cascade) if possible.
    pub fn finish(&mut self, idx: SlotIdx) {
        self.slots[idx as usize].c_ref = false;
        self.maybe_collect(idx);
    }

    /// Collects `idx` if it is finished with no incoming edges, cascading to
    /// successors whose last incoming edge disappears.
    pub fn maybe_collect(&mut self, idx: SlotIdx) {
        if !self.gc_enabled || !self.slots[idx as usize].collectible() {
            return;
        }
        let mut work = vec![idx];
        while let Some(v) = work.pop() {
            if !self.slots[v as usize].collectible() {
                continue;
            }
            let slot = &mut self.slots[v as usize];
            slot.alive = false;
            slot.floor = slot.counter;
            let out: Vec<SlotIdx> = slot.out.keys().collect();
            slot.out.clear();
            slot.anc.clear();
            self.stats.cur_alive -= 1;
            self.stats.collected += 1;
            for succ in out {
                let s = &mut self.slots[succ as usize];
                if s.alive {
                    s.inc.remove(v);
                    if s.collectible() {
                        work.push(succ);
                    }
                }
            }
            // Remove the dead node from ancestor sets: edges into it can
            // never be added again, so it cannot participate in a cycle.
            for s in &mut self.slots {
                if s.alive {
                    s.anc.remove(v);
                }
            }
            self.free.push(v);
        }
    }

    /// Finds a path `start →* goal` over alive nodes and non-implied edges,
    /// returning the edges traversed. Used to reconstruct the cycle once
    /// [`CycleFound`] fires (the path exists by the ancestor-set invariant).
    ///
    /// Implied (redundant) edges are skipped so reconstruction is identical
    /// whether the arena elides them or stores them tagged.
    pub fn find_path(&self, start: SlotIdx, goal: SlotIdx) -> Option<Vec<(SlotIdx, EdgeInfo)>> {
        // Iterative DFS; graphs here are tiny (tens of alive nodes).
        // Successor order is ascending by slot (intrinsic to the sorted-vec
        // adjacency), so reports are reproducible run to run.
        let mut visited = SlotSet::new();
        let mut stack: Vec<(SlotIdx, Vec<(SlotIdx, EdgeInfo)>)> = vec![(start, Vec::new())];
        visited.insert(start);
        while let Some((node, path)) = stack.pop() {
            if node == goal {
                return Some(path);
            }
            for (succ, rec) in self.slots[node as usize].out.iter() {
                if rec.implied {
                    continue;
                }
                // Prune: only descend toward nodes that can reach the goal.
                if visited.contains(succ) {
                    continue;
                }
                if succ != goal && !self.slots[goal as usize].anc.contains(succ) {
                    continue;
                }
                visited.insert(succ);
                let mut p = path.clone();
                p.push((succ, rec.info));
                stack.push((succ, p));
            }
        }
        None
    }

    /// The edge `from → to`, if present (stored tagged edges included).
    pub fn edge(&self, from: SlotIdx, to: SlotIdx) -> Option<EdgeInfo> {
        self.slots[from as usize].out.get(to).map(|r| r.info)
    }

    /// Number of alive nodes (for tests and diagnostics).
    pub fn alive_count(&self) -> usize {
        self.stats.cur_alive as usize
    }

    /// Memory footprint of the alive graph: `(edge records, ancestor
    /// entries)` summed over alive slots. Diagnostics for sizing the
    /// sorted-vec adjacency; implied tagged edges are included.
    pub fn footprint(&self) -> (usize, usize) {
        let mut edges = 0;
        let mut ancestors = 0;
        for slot in self.slots.iter().filter(|s| s.alive) {
            edges += slot.out.len();
            ancestors += slot.anc.len();
        }
        (edges, ancestors)
    }

    /// Checks internal invariants; used by tests and debug assertions.
    ///
    /// Verifies edge symmetry, ancestor-set *exactness* in both directions
    /// (against a transitive closure recomputed over non-implied edges),
    /// acyclicity, and that every stored implied edge really is redundant
    /// (its target is reachable from its source without it).
    pub fn check_invariants(&self) {
        // Edge symmetry.
        for (i, slot) in self.slots.iter().enumerate() {
            if !slot.alive {
                continue;
            }
            for (t, e) in slot.out.iter() {
                let target = &self.slots[t as usize];
                assert!(target.alive, "edge to dead slot");
                assert_eq!(target.inc.get(i as SlotIdx), Some(e), "edge asymmetry");
            }
            for f in slot.inc.keys() {
                assert!(
                    self.slots[f as usize].out.contains_key(i as SlotIdx),
                    "in-edge without out-edge"
                );
            }
            // No in-edges (tagged ones included) means no ancestors: the
            // ancestor set is exactly the reachable-from set.
            if slot.inc.is_empty() {
                assert!(slot.anc.is_empty(), "root n{i} has recorded ancestors");
            }
        }
        let alive: Vec<SlotIdx> = (0..self.slots.len() as u32)
            .map(|i| i as SlotIdx)
            .filter(|&i| self.slots[i as usize].alive)
            .collect();
        // Recompute reachability over non-implied edges, check acyclicity,
        // and verify implied edges are genuinely redundant. (Implied edges
        // cannot extend cycles: each parallels a non-implied witness path,
        // so acyclicity of the non-implied subgraph implies acyclicity of
        // the whole graph.)
        for &v in &alive {
            let mut reach = SlotSet::new();
            let mut work = vec![v];
            while let Some(u) = work.pop() {
                for (s, rec) in self.slots[u as usize].out.iter() {
                    if !rec.implied && reach.insert(s) {
                        work.push(s);
                    }
                }
            }
            assert!(!reach.contains(v), "cycle through n{v}");
            for d in reach.iter() {
                assert!(
                    self.slots[d as usize].anc.contains(v),
                    "missing ancestor n{v} of n{d}"
                );
            }
            // Exactness: every recorded ancestor of v is really reachable.
            // (Checked via the forward sweep below using `reach` of each
            // ancestor candidate would be quadratic anyway; reuse this
            // sweep: v must appear in anc(d) exactly for d in reach.)
            for &d in &alive {
                if !reach.contains(d) {
                    assert!(
                        !self.slots[d as usize].anc.contains(v),
                        "stale ancestor n{v} recorded on n{d}"
                    );
                }
            }
            for (s, rec) in self.slots[v as usize].out.iter() {
                if rec.implied {
                    assert!(
                        reach.contains(s),
                        "implied edge n{v} → n{s} lacks a witness path"
                    );
                }
            }
        }
        for &v in &alive {
            for a in self.slots[v as usize].anc.iter() {
                assert!(self.slots[a as usize].alive, "dead ancestor n{a} of n{v}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome_events::VarId;

    fn desc(t: u32) -> NodeDesc {
        NodeDesc {
            thread: ThreadId::new(t),
            label: None,
            first_op: 0,
        }
    }

    fn op() -> Op {
        Op::Read {
            t: ThreadId::new(0),
            x: VarId::new(0),
        }
    }

    #[test]
    fn alloc_issues_valid_steps() {
        let mut a = Arena::new();
        let s = a.alloc(desc(0), true).unwrap();
        assert!(s.is_some());
        assert_eq!(a.resolve(s), s);
        assert_eq!(a.stats().allocated, 1);
        assert_eq!(a.alive_count(), 1);
    }

    #[test]
    fn bump_is_monotonic() {
        let mut a = Arena::new();
        let s = a.alloc(desc(0), true).unwrap();
        let (n, t0) = s.unpack();
        let s1 = a.bump(n).unwrap();
        let s2 = a.bump(n).unwrap();
        assert!(s1.ts().unwrap() > t0);
        assert!(s2.ts() > s1.ts());
    }

    #[test]
    fn finished_node_without_edges_is_collected() {
        let mut a = Arena::new();
        let s = a.alloc(desc(0), true).unwrap();
        let (n, _) = s.unpack();
        a.finish(n);
        assert_eq!(a.alive_count(), 0);
        assert_eq!(a.resolve(s), Step::NONE);
        assert_eq!(a.stats().collected, 1);
    }

    #[test]
    fn incoming_edge_keeps_node_alive() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let s1 = a.alloc(desc(1), true).unwrap();
        let (n0, _) = s0.unpack();
        let (n1, _) = s1.unpack();
        a.add_edge(s0, s1, op(), 0).unwrap();
        a.finish(n1);
        // n1 has an incoming edge from live n0: stays alive.
        assert_eq!(a.alive_count(), 2);
        a.finish(n0);
        // n0 collected; cascade removes the edge, collecting n1 too.
        assert_eq!(a.alive_count(), 0);
        assert_eq!(a.resolve(s1), Step::NONE);
    }

    #[test]
    fn recycled_slot_invalidates_old_steps() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let (n0, _) = s0.unpack();
        a.finish(n0);
        let s1 = a.alloc(desc(1), true).unwrap();
        let (n1, _) = s1.unpack();
        assert_eq!(n0, n1, "slot is recycled");
        assert_eq!(a.resolve(s0), Step::NONE, "old incarnation is stale");
        assert_eq!(a.resolve(s1), s1, "new incarnation is valid");
        assert_eq!(a.stats().allocated, 2);
    }

    #[test]
    fn cycle_is_detected_and_edge_not_added() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let s1 = a.alloc(desc(1), true).unwrap();
        a.add_edge(s0, s1, op(), 0).unwrap();
        let err = a.add_edge(s1, s0, op(), 1).unwrap_err();
        let (n0, _) = s0.unpack();
        let (n1, _) = s1.unpack();
        assert_eq!(err.from, n1);
        assert_eq!(err.to, n0);
        assert_eq!(a.edge(n1, n0), None, "cycle edge must not be inserted");
        a.check_invariants();
    }

    #[test]
    fn transitive_cycle_detected() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let s1 = a.alloc(desc(1), true).unwrap();
        let s2 = a.alloc(desc(2), true).unwrap();
        a.add_edge(s0, s1, op(), 0).unwrap();
        a.add_edge(s1, s2, op(), 1).unwrap();
        assert!(a.add_edge(s2, s0, op(), 2).is_err());
        a.check_invariants();
    }

    #[test]
    fn self_edges_are_filtered() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let (n0, _) = s0.unpack();
        let s0b = a.bump(n0).unwrap();
        assert_eq!(a.add_edge(s0, s0b, op(), 0), Ok(false));
    }

    #[test]
    fn bottom_and_stale_sources_are_skipped() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let (n0, _) = s0.unpack();
        a.finish(n0);
        let s1 = a.alloc(desc(1), true).unwrap();
        assert_eq!(a.add_edge(Step::NONE, s1, op(), 0), Ok(false));
        assert_eq!(
            a.add_edge(s0, s1, op(), 0),
            Ok(false),
            "stale source skipped"
        );
    }

    #[test]
    fn edge_replacement_updates_timestamps() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let s1 = a.alloc(desc(1), true).unwrap();
        let (n0, _) = s0.unpack();
        let (n1, _) = s1.unpack();
        a.add_edge(s0, s1, op(), 0).unwrap();
        let s0b = a.bump(n0).unwrap();
        let s1b = a.bump(n1).unwrap();
        a.add_edge(s0b, s1b, op(), 1).unwrap();
        let e = a.edge(n0, n1).unwrap();
        assert_eq!(e.from_ts, s0b.ts().unwrap());
        assert_eq!(e.to_ts, s1b.ts().unwrap());
        assert_eq!(a.stats().edges_added, 1);
        assert_eq!(a.stats().edges_replaced, 1);
    }

    #[test]
    fn happens_before_within_and_across_nodes() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let s1 = a.alloc(desc(1), true).unwrap();
        let (n0, _) = s0.unpack();
        let s0b = a.bump(n0).unwrap();
        assert!(a.happens_before(s0, s0b));
        assert!(a.happens_before(s0, s0));
        assert!(!a.happens_before(s0b, s0));
        assert!(!a.happens_before(s0, s1));
        a.add_edge(s0, s1, op(), 0).unwrap();
        assert!(a.happens_before(s0, s1));
        assert!(!a.happens_before(s1, s0));
        assert!(!a.happens_before(Step::NONE, s0));
    }

    #[test]
    fn find_path_reconstructs_chain() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let s1 = a.alloc(desc(1), true).unwrap();
        let s2 = a.alloc(desc(2), true).unwrap();
        a.add_edge(s0, s1, op(), 0).unwrap();
        a.add_edge(s1, s2, op(), 1).unwrap();
        let (n0, _) = s0.unpack();
        let (n2, _) = s2.unpack();
        let path = a.find_path(n0, n2).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[1].0, n2);
        assert!(a.find_path(n2, n0).is_none());
    }

    #[test]
    fn gc_disabled_keeps_nodes() {
        let mut a = Arena::with_gc(false);
        let s0 = a.alloc(desc(0), true).unwrap();
        let (n0, _) = s0.unpack();
        a.finish(n0);
        assert_eq!(a.alive_count(), 1);
        assert_eq!(a.resolve(s0), s0);
    }

    #[test]
    fn ancestor_sets_pruned_on_collection() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let s1 = a.alloc(desc(1), true).unwrap();
        a.add_edge(s0, s1, op(), 0).unwrap();
        let (n0, _) = s0.unpack();
        a.finish(n0); // collects n0, cascades nothing (n1 still current)
        a.check_invariants();
        let (n1, _) = s1.unpack();
        a.finish(n1);
        assert_eq!(a.alive_count(), 0);
    }

    #[test]
    fn max_alive_tracks_peak() {
        let mut a = Arena::new();
        let steps: Vec<Step> = (0..5).map(|i| a.alloc(desc(i), true).unwrap()).collect();
        assert_eq!(a.stats().max_alive, 5);
        for s in &steps {
            a.finish(s.unpack().0);
        }
        assert_eq!(a.alive_count(), 0);
        assert_eq!(a.stats().max_alive, 5);
    }

    #[test]
    fn implied_edges_are_elided() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let s1 = a.alloc(desc(1), true).unwrap();
        let s2 = a.alloc(desc(2), true).unwrap();
        a.add_edge(s0, s1, op(), 0).unwrap();
        a.add_edge(s1, s2, op(), 1).unwrap();
        // s0 → s2 is already implied through s1: elided, not stored.
        assert_eq!(a.add_edge(s0, s2, op(), 2), Ok(false));
        let (n0, _) = s0.unpack();
        let (n2, _) = s2.unpack();
        assert_eq!(a.edge(n0, n2), None);
        assert_eq!(a.stats().edges_added, 2);
        assert_eq!(a.stats().edges_elided, 1);
        assert!(a.happens_before(s0, s2), "ordering survives elision");
        assert!(a.add_edge(s2, s0, op(), 3).is_err(), "cycle still detected");
        a.check_invariants();
    }

    #[test]
    fn baseline_stores_tagged_implied_edges() {
        let mut a = Arena::with_options(true, false);
        let s0 = a.alloc(desc(0), true).unwrap();
        let s1 = a.alloc(desc(1), true).unwrap();
        let s2 = a.alloc(desc(2), true).unwrap();
        a.add_edge(s0, s1, op(), 0).unwrap();
        a.add_edge(s1, s2, op(), 1).unwrap();
        assert_eq!(a.add_edge(s0, s2, op(), 2), Ok(true));
        let (n0, _) = s0.unpack();
        let (n2, _) = s2.unpack();
        assert!(a.edge(n0, n2).is_some(), "baseline stores the implied edge");
        assert_eq!(a.stats().edges_added, 3);
        assert_eq!(a.stats().edges_elided, 0);
        // Path reconstruction skips the tagged edge, so reports match the
        // eliding configuration exactly.
        let path = a.find_path(n0, n2).unwrap();
        assert_eq!(path.len(), 2, "witness chain, not the implied shortcut");
        a.check_invariants();
    }

    #[test]
    fn direct_edge_refresh_is_not_elided() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let s1 = a.alloc(desc(1), true).unwrap();
        let s2 = a.alloc(desc(2), true).unwrap();
        // Direct edge first, then a transitive path alongside it.
        a.add_edge(s0, s2, op(), 0).unwrap();
        a.add_edge(s0, s1, op(), 1).unwrap();
        a.add_edge(s1, s2, op(), 2).unwrap();
        // Re-adding the (now also implied) direct edge refreshes timestamps.
        let (n0, _) = s0.unpack();
        let (n2, _) = s2.unpack();
        let s0b = a.bump(n0).unwrap();
        let s2b = a.bump(n2).unwrap();
        assert_eq!(a.add_edge(s0b, s2b, op(), 3), Ok(true));
        let e = a.edge(n0, n2).unwrap();
        assert_eq!(e.to_ts, s2b.ts().unwrap());
        assert_eq!(a.stats().edges_replaced, 1);
        assert_eq!(a.stats().edges_elided, 0);
        a.check_invariants();
    }

    #[test]
    fn elision_does_not_change_collection() {
        for elide in [true, false] {
            let mut a = Arena::with_options(true, elide);
            let s0 = a.alloc(desc(0), true).unwrap();
            let s1 = a.alloc(desc(1), true).unwrap();
            let s2 = a.alloc(desc(2), true).unwrap();
            a.add_edge(s0, s1, op(), 0).unwrap();
            a.add_edge(s1, s2, op(), 1).unwrap();
            let _ = a.add_edge(s0, s2, op(), 2);
            let (n0, _) = s0.unpack();
            let (n1, _) = s1.unpack();
            let (n2, _) = s2.unpack();
            a.finish(n2);
            a.finish(n1);
            assert_eq!(
                a.alive_count(),
                3,
                "n0 keeps the chain alive (elide={elide})"
            );
            a.finish(n0);
            assert_eq!(a.alive_count(), 0, "cascade collects all (elide={elide})");
            a.check_invariants();
        }
    }

    #[test]
    fn diamond_ancestors_exact() {
        let mut a = Arena::new();
        let s0 = a.alloc(desc(0), true).unwrap();
        let s1 = a.alloc(desc(1), true).unwrap();
        let s2 = a.alloc(desc(2), true).unwrap();
        let s3 = a.alloc(desc(3), true).unwrap();
        a.add_edge(s0, s1, op(), 0).unwrap();
        a.add_edge(s0, s2, op(), 1).unwrap();
        a.add_edge(s1, s3, op(), 2).unwrap();
        a.add_edge(s2, s3, op(), 3).unwrap();
        a.check_invariants();
        // Closing any back edge must fail.
        assert!(a.add_edge(s3, s0, op(), 4).is_err());
        assert!(a.add_edge(s3, s1, op(), 5).is_err());
    }
}
