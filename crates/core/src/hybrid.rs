//! Two-tier checking: vector-clock screen online, graph engine on demand.
//!
//! [`HybridVelodrome`] runs the AeroDrome-style vector-clock screen
//! ([`velodrome_vclock::AeroDrome`]) over every event and keeps the full
//! [`Velodrome`] graph engine dormant. Events are buffered as they are
//! screened; the first time the screen raises an escalation flag (a
//! definite own-time violation, or a join that grows the clock of an
//! observed active transaction — see the screen's module docs for why
//! those flags form a sound superset of the engine's detections), the
//! buffered window is replayed through a freshly constructed engine and
//! every subsequent event goes straight to it. The engine therefore sees
//! exactly the event stream (with original indices) an always-on run
//! would have seen, and its warnings, blame assignment, increasing-cycle
//! refutation, and [`CycleReport`]s are **byte-identical** to pure
//! Velodrome's — while serializable traces never pay for a single graph
//! node or edge.
//!
//! # Escalation window semantics
//!
//! With [`HybridConfig::max_window`] `0` (the default) the buffer is
//! unbounded and escalation replays the entire prefix: full fidelity.
//! A bounded window caps memory by evicting the oldest events; if any
//! were evicted by escalation time the replay starts mid-stream, the
//! checker emits a `Degraded` warning naming the number of lost events,
//! and completeness (never soundness — the engine only ever reports real
//! cycles of whatever suffix it sees) may be lost.
//!
//! # Interaction with the degradation ladder
//!
//! The engine's [`ResourceBudget`](velodrome_monitor::ResourceBudget)
//! drives its degradation ladder from the moment it is constructed. A
//! screened run would start that clock only at escalation, making ladder
//! transitions (and their `Degraded` warnings) diverge from a pure run's.
//! A configured budget therefore disables screening entirely: the engine
//! is engaged from the first operation and behaves — byte for byte —
//! like pure Velodrome, ladder and all.

use crate::engine::{Velodrome, VelodromeConfig, VelodromeStats};
use crate::report::CycleReport;
use std::collections::VecDeque;
use std::fmt;
use velodrome_events::Op;
use velodrome_monitor::tool::{replay_ops, Tool, Warning, WarningCategory};
use velodrome_telemetry::{names, Telemetry};
use velodrome_vclock::{AeroDrome, AeroDromeStats};

/// Configuration for the two-tier checker.
#[derive(Debug, Clone, Default)]
pub struct HybridConfig {
    /// Configuration for the graph engine constructed at escalation. A
    /// non-unlimited [`budget`](VelodromeConfig::budget) disables
    /// screening (see the module docs).
    pub engine: VelodromeConfig,
    /// Maximum buffered events for the escalation replay; `0` (default)
    /// buffers the whole prefix and guarantees byte-identical output.
    pub max_window: usize,
    /// Report warnings under the `aerodrome` tool name with details
    /// stripped: the verdict-only linear-time backend. The default
    /// (`false`) reproduces pure Velodrome's warnings verbatim.
    pub verdict_only: bool,
}

/// Counters for one hybrid run.
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridStats {
    /// Operations observed.
    pub ops: u64,
    /// Screen counters (meaningful up to the escalation point).
    pub screen: AeroDromeStats,
    /// Escalations taken (`0` or `1`; the engine stays engaged).
    pub escalations: u64,
    /// Trace index at which the engine was engaged, if it was.
    pub escalated_at: Option<usize>,
    /// Peak events held in the replay buffer.
    pub buffered_peak: u64,
    /// Events evicted from a bounded window before escalation.
    pub truncated: u64,
    /// Engine statistics, present once escalated.
    pub engine: Option<VelodromeStats>,
}

impl HybridStats {
    /// Graph node + edge operations actually performed: zero while the
    /// screen holds, the engaged engine's [`VelodromeStats::graph_ops`]
    /// after escalation.
    pub fn graph_ops(&self) -> u64 {
        self.engine.map(|e| e.graph_ops()).unwrap_or(0)
    }
}

impl fmt::Display for HybridStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ops, screen: {}", self.ops, self.screen)?;
        match self.escalated_at {
            Some(at) => write!(
                f,
                "; escalated at op {at} ({} buffered, {} truncated), engine: {}",
                self.buffered_peak,
                self.truncated,
                self.engine.unwrap_or_default()
            ),
            None => write!(f, "; never escalated"),
        }
    }
}

/// The two-tier screen-then-diagnose atomicity checker.
///
/// # Examples
///
/// ```
/// use velodrome::hybrid::HybridVelodrome;
/// use velodrome_events::TraceBuilder;
/// use velodrome_monitor::run_tool;
///
/// let mut b = TraceBuilder::new();
/// b.begin("T1", "inc").read("T1", "x");
/// b.write("T2", "x");
/// b.write("T1", "x").end("T1");
/// let mut hybrid = HybridVelodrome::new();
/// let warnings = run_tool(&mut hybrid, &b.finish());
/// assert_eq!(warnings.len(), 1);
/// assert_eq!(hybrid.stats().escalations, 1);
/// ```
#[derive(Debug)]
pub struct HybridVelodrome {
    cfg: HybridConfig,
    screen: AeroDrome,
    engine: Option<Velodrome>,
    buffer: VecDeque<(usize, Op)>,
    /// Warnings owned by the hybrid itself (window truncation).
    own_warnings: Vec<Warning>,
    ops: u64,
    escalations: u64,
    escalated_at: Option<usize>,
    buffered_peak: u64,
    truncated: u64,
}

impl Default for HybridVelodrome {
    fn default() -> Self {
        Self::new()
    }
}

impl HybridVelodrome {
    /// Creates a hybrid checker with the default configuration.
    pub fn new() -> Self {
        Self::with_config(HybridConfig::default())
    }

    /// Creates a hybrid checker with an explicit configuration.
    pub fn with_config(cfg: HybridConfig) -> Self {
        let mut this = Self {
            cfg,
            screen: AeroDrome::new(),
            engine: None,
            buffer: VecDeque::new(),
            own_warnings: Vec::new(),
            ops: 0,
            escalations: 0,
            escalated_at: None,
            buffered_peak: 0,
            truncated: 0,
        };
        if !this.cfg.engine.budget.is_unlimited() {
            // Budgets govern the graph engine's degradation ladder from
            // op 0; engage it immediately so ladder behavior is identical
            // to a pure run (see the module docs).
            this.engage(0);
        }
        this
    }

    /// Counters for the run so far.
    pub fn stats(&self) -> HybridStats {
        HybridStats {
            ops: self.ops,
            screen: self.screen.stats(),
            escalations: self.escalations,
            escalated_at: self.escalated_at,
            buffered_peak: self.buffered_peak,
            truncated: self.truncated,
            engine: self.engine.as_ref().map(|e| e.stats()),
        }
    }

    /// Full cycle reports from the engaged engine (empty while the screen
    /// holds — a never-escalated run found no cycles).
    pub fn reports(&self) -> &[CycleReport] {
        self.engine.as_ref().map(|e| e.reports()).unwrap_or(&[])
    }

    /// Whether the graph engine has been engaged.
    pub fn escalated(&self) -> bool {
        self.engine.is_some()
    }

    /// Constructs the engine and replays the buffered window through it.
    fn engage(&mut self, idx: usize) {
        debug_assert!(self.engine.is_none());
        self.escalations += 1;
        self.escalated_at = Some(idx);
        let mut engine = Velodrome::with_config(self.cfg.engine.clone());
        if self.truncated > 0 {
            self.own_warnings.push(Warning {
                tool: self.name(),
                category: WarningCategory::Degraded,
                label: None,
                thread: self
                    .buffer
                    .front()
                    .map(|&(_, op)| op.tid())
                    .unwrap_or(velodrome_events::ThreadId::new(0)),
                op_index: idx,
                message: format!(
                    "escalation window truncated: {} events preceding op {} \
                     were evicted before the graph engine was engaged; \
                     completeness over the lost prefix is not guaranteed",
                    self.truncated,
                    self.buffer.front().map(|&(i, _)| i).unwrap_or(idx),
                ),
                details: None,
            });
        }
        let buffered: Vec<(usize, Op)> = self.buffer.drain(..).collect();
        replay_ops(&mut engine, &buffered);
        self.engine = Some(engine);
    }

    /// Mirrors the checker's statistics into a telemetry registry under
    /// the stable names in [`velodrome_telemetry::names`]. The engine's
    /// gauge surface is always published — zeroed while the screen holds —
    /// so metrics contracts written against pure Velodrome keep verifying
    /// against hybrid runs.
    pub fn publish_telemetry_to(&self, t: &Telemetry) {
        if !t.is_enabled() {
            return;
        }
        let s = self.screen.stats();
        t.set_gauge(names::AERODROME_EVENTS, s.events);
        t.set_gauge(names::AERODROME_JOINS, s.joins);
        t.set_gauge(names::AERODROME_LIVE_JOINS, s.live_joins);
        t.set_gauge(names::AERODROME_EPOCH_HITS, s.epoch_hits);
        t.set_gauge(names::AERODROME_VIOLATIONS, s.violations);
        t.set_gauge(names::AERODROME_POTENTIAL_FLAGS, s.potential_flags);
        t.set_gauge(names::HYBRID_ESCALATIONS, self.escalations);
        t.set_gauge(names::HYBRID_BUFFERED_EVENTS, self.buffered_peak);
        t.set_gauge(names::HYBRID_TRUNCATED_EVENTS, self.truncated);
        t.set_gauge(names::HYBRID_GRAPH_OPS, self.stats().graph_ops());
        match &self.engine {
            Some(e) => e.publish_telemetry_to(t),
            None => {
                // Dormant engine: publish its surface as explicit zeros.
                for name in [
                    names::ARENA_ALLOCATED,
                    names::ARENA_MAX_ALIVE,
                    names::ARENA_CUR_ALIVE,
                    names::ARENA_COLLECTED,
                    names::ARENA_EDGES_ADDED,
                    names::ARENA_EDGES_REPLACED,
                    names::ARENA_EDGES_ELIDED,
                    names::ENGINE_EPOCH_HITS,
                    names::ENGINE_MERGES_REUSED,
                    names::ENGINE_MERGES_BOTTOM,
                    names::ENGINE_CYCLES_DETECTED,
                    names::ENGINE_WARNINGS_SUPPRESSED,
                    names::ENGINE_VARS_QUARANTINED,
                    names::ENGINE_LADDER,
                ] {
                    t.set_gauge(name, 0);
                }
                // The op count is real even while the engine is dormant.
                t.set_gauge(names::ENGINE_OPS, self.ops);
            }
        }
    }
}

impl Tool for HybridVelodrome {
    fn name(&self) -> &'static str {
        if self.cfg.verdict_only {
            "aerodrome"
        } else {
            "velodrome-hybrid"
        }
    }

    fn op(&mut self, index: usize, op: Op) {
        self.ops += 1;
        if let Some(engine) = &mut self.engine {
            engine.op(index, op);
            return;
        }
        if self.cfg.max_window > 0 && self.buffer.len() >= self.cfg.max_window {
            self.buffer.pop_front();
            self.truncated += 1;
        }
        self.buffer.push_back((index, op));
        self.buffered_peak = self.buffered_peak.max(self.buffer.len() as u64);
        if self.screen.step(index, op).escalate {
            self.engage(index);
        }
    }

    fn end_of_trace(&mut self) {
        if let Some(engine) = &mut self.engine {
            engine.end_of_trace();
        }
    }

    fn take_warnings(&mut self) -> Vec<Warning> {
        let engine_warnings = self
            .engine
            .as_mut()
            .map(|e| e.take_warnings())
            .unwrap_or_default();
        let mut all = if self.own_warnings.is_empty() {
            // The common (unbounded-window) path: pure Velodrome's
            // warnings, byte for byte.
            engine_warnings
        } else {
            let mut merged = std::mem::take(&mut self.own_warnings);
            merged.extend(engine_warnings);
            merged.sort_by_key(|w| w.op_index);
            merged
        };
        if self.cfg.verdict_only {
            for w in &mut all {
                w.tool = "aerodrome";
                w.details = None;
            }
        }
        all
    }
}

/// Runs the hybrid checker over a recorded trace with default
/// configuration (names taken from the trace) and returns the warnings.
pub fn check_trace_hybrid(trace: &velodrome_events::Trace) -> Vec<Warning> {
    let cfg = HybridConfig {
        engine: VelodromeConfig {
            names: trace.names().clone(),
            ..VelodromeConfig::default()
        },
        ..HybridConfig::default()
    };
    let mut h = HybridVelodrome::with_config(cfg);
    velodrome_monitor::run_tool(&mut h, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::check_trace_with;
    use velodrome_events::{Trace, TraceBuilder};
    use velodrome_monitor::run_tool;

    fn violating_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc").read("T1", "x");
        b.write("T2", "x");
        b.write("T1", "x").end("T1");
        b.finish()
    }

    fn serializable_trace() -> Trace {
        let mut b = TraceBuilder::new();
        for t in ["T1", "T2"] {
            b.begin(t, "inc")
                .acquire(t, "m")
                .read(t, "x")
                .write(t, "x")
                .release(t, "m")
                .end(t);
        }
        b.finish()
    }

    fn pure_run(trace: &Trace) -> (Vec<Warning>, Vec<CycleReport>) {
        let cfg = VelodromeConfig {
            names: trace.names().clone(),
            ..VelodromeConfig::default()
        };
        let (warnings, engine) = check_trace_with(trace, cfg);
        (warnings, engine.reports().to_vec())
    }

    #[test]
    fn violating_trace_escalates_and_matches_pure_velodrome() {
        let trace = violating_trace();
        let (pure_warnings, pure_reports) = pure_run(&trace);
        let mut h = HybridVelodrome::with_config(HybridConfig {
            engine: VelodromeConfig {
                names: trace.names().clone(),
                ..VelodromeConfig::default()
            },
            ..HybridConfig::default()
        });
        let warnings = run_tool(&mut h, &trace);
        assert_eq!(
            serde_json::to_string(&warnings).unwrap(),
            serde_json::to_string(&pure_warnings).unwrap()
        );
        assert_eq!(h.reports(), &pure_reports[..]);
        assert_eq!(h.stats().escalations, 1);
    }

    #[test]
    fn serializable_trace_never_engages_the_engine() {
        let trace = serializable_trace();
        let mut h = HybridVelodrome::new();
        let warnings = run_tool(&mut h, &trace);
        assert!(warnings.is_empty());
        let stats = h.stats();
        assert!(!h.escalated());
        assert_eq!(stats.graph_ops(), 0, "no graph work on the fast path");
        assert!(h.reports().is_empty());
    }

    #[test]
    fn verdict_only_relabels_warnings() {
        let trace = violating_trace();
        let mut h = HybridVelodrome::with_config(HybridConfig {
            engine: VelodromeConfig {
                names: trace.names().clone(),
                ..VelodromeConfig::default()
            },
            verdict_only: true,
            ..HybridConfig::default()
        });
        let warnings = run_tool(&mut h, &trace);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].tool, "aerodrome");
        assert!(warnings[0].details.is_none());
        assert!(warnings[0].label.is_some(), "blame label preserved");
    }

    #[test]
    fn bounded_window_truncation_is_reported() {
        // Pad the prefix so a 4-op window must evict before the violation.
        let mut b = TraceBuilder::new();
        for _ in 0..8 {
            b.read("T3", "pad");
        }
        b.begin("T1", "inc").read("T1", "x");
        b.write("T2", "x");
        b.write("T1", "x").end("T1");
        let trace = b.finish();
        let mut h = HybridVelodrome::with_config(HybridConfig {
            engine: VelodromeConfig {
                names: trace.names().clone(),
                ..VelodromeConfig::default()
            },
            max_window: 4,
            ..HybridConfig::default()
        });
        let warnings = run_tool(&mut h, &trace);
        assert!(h.stats().truncated > 0);
        assert!(warnings
            .iter()
            .any(|w| w.category == WarningCategory::Degraded
                && w.message.contains("escalation window truncated")));
        // The violation is inside the window, so it is still found.
        assert!(warnings
            .iter()
            .any(|w| w.category == WarningCategory::Atomicity));
    }

    #[test]
    fn configured_budget_disables_screening() {
        use velodrome_monitor::ResourceBudget;
        let trace = serializable_trace();
        let cfg = VelodromeConfig {
            names: trace.names().clone(),
            budget: ResourceBudget {
                max_alive_nodes: 1,
                ..ResourceBudget::UNLIMITED
            },
            ..VelodromeConfig::default()
        };
        let (pure_warnings, _) = check_trace_with(&trace, cfg.clone());
        let mut h = HybridVelodrome::with_config(HybridConfig {
            engine: cfg,
            ..HybridConfig::default()
        });
        let warnings = run_tool(&mut h, &trace);
        assert!(h.escalated(), "budgeted runs engage the engine from op 0");
        assert_eq!(h.stats().escalated_at, Some(0));
        assert_eq!(
            serde_json::to_string(&warnings).unwrap(),
            serde_json::to_string(&pure_warnings).unwrap(),
            "ladder transitions must match a pure budgeted run"
        );
    }

    #[test]
    fn telemetry_surface_is_published_even_while_dormant() {
        let t = Telemetry::registry();
        let trace = serializable_trace();
        let mut h = HybridVelodrome::new();
        run_tool(&mut h, &trace);
        assert!(!h.escalated());
        h.publish_telemetry_to(&t);
        let snap = t.snapshot(0, h.stats().ops).unwrap();
        let get = |n: &str| match snap.metrics.get(n) {
            Some(velodrome_telemetry::MetricValue::Gauge(v)) => *v,
            other => panic!("gauge {n} missing or wrong type: {other:?}"),
        };
        assert_eq!(get(names::HYBRID_ESCALATIONS), 0);
        assert_eq!(get(names::ARENA_ALLOCATED), 0);
        assert_eq!(get(names::ENGINE_OPS), h.stats().ops);
        assert!(get(names::AERODROME_JOINS) > 0);
    }
}
