//! The Velodrome online analysis (Figures 2 and 4 of the paper).
//!
//! The engine maintains the instrumentation store
//! `(C, L, U, R, W, H)` over packed [`Step`]s:
//!
//! * `C` — per-thread stack of open atomic blocks plus the current
//!   transaction node;
//! * `L` — per-thread step of the thread's last operation;
//! * `U` — per-lock step of the last release;
//! * `R` — per-variable, per-thread step of the last read (since the last
//!   write — older reads are transitively ordered through the write chain);
//! * `W` — per-variable step of the last write;
//! * `H` — the happens-before graph, held in the [`Arena`] with ancestor
//!   sets, timestamped edges, and reference-counting GC.
//!
//! With [`VelodromeConfig::merge`] enabled the engine uses the optimized
//! Figure 4 rules: operations outside any transaction allocate a node only
//! when they have two or more incomparable predecessors, and otherwise
//! merge with a dominating predecessor (or vanish entirely when every
//! predecessor is `⊥`). With `merge` disabled it reproduces the naive
//! `[INS OUTSIDE]` rule of Figure 2 — one fresh node per non-transactional
//! operation — which Table 1 reports as "Without Merge".
//!
//! The analysis is *sound and complete*: it reports a violation iff the
//! observed trace is not conflict-serializable (Theorem 1).

use crate::arena::{Arena, ArenaError, CycleFound, NodeDesc};
use crate::report::{CycleReport, ReportEdge, ReportNode};
use crate::step::{SlotIdx, Step, Ts};
use std::collections::{BTreeMap, HashMap, HashSet};
use velodrome_events::{Label, LockId, Op, SymbolTable, ThreadId, Trace, VarId};
use velodrome_monitor::budget::{DegradationLevel, ResourceBudget};
use velodrome_monitor::tool::{PerLabelDedup, Tool, Warning, WarningCategory};
use velodrome_telemetry::{names, Counter, Gauge, PhaseTimer, Telemetry};

/// Configuration of the [`Velodrome`] engine.
#[derive(Debug, Clone)]
pub struct VelodromeConfig {
    /// Use the Figure 4 merge optimization for non-transactional operations
    /// (`true`, the default) or the naive Figure 2 `[INS OUTSIDE]` rule.
    pub merge: bool,
    /// Garbage collect transaction nodes (default `true`). Disabling this
    /// reproduces the "no GC" ablation; large traces will exhaust the
    /// 16-bit node arena.
    pub gc: bool,
    /// Skip happens-before edges whose ordering is already implied
    /// (default `true`): transitively-redundant edges are elided in the
    /// arena, and a per-thread epoch cache short-circuits repeated no-op
    /// predecessors within a transaction. Disabling this reproduces the
    /// unoptimized insertion behavior — same warnings, reports, and cycle
    /// counts, but every redundant edge pays full insertion cost (the
    /// differential-testing baseline).
    pub elide_redundant_edges: bool,
    /// Report at most one warning per atomic-block label (default `true`),
    /// matching how the paper counts non-atomic *methods*.
    ///
    /// Interaction with [`max_warnings`](Self::max_warnings): a duplicate
    /// label never consumes warning budget, and a report suppressed because
    /// the budget is full does **not** mark its label as seen — the budget
    /// check runs first, so once warnings are drained the label can still
    /// produce its one warning.
    pub dedup_per_label: bool,
    /// Hard cap on *stored* (undrained) warnings; `0` means unlimited.
    /// Suppressed reports are still recorded in [`Velodrome::reports`],
    /// and every suppression is counted in
    /// [`VelodromeStats::warnings_suppressed`] so a capped run is
    /// distinguishable from a clean one.
    pub max_warnings: usize,
    /// Resource budget (default: unlimited — zero behavior change). When a
    /// cap trips, the engine steps down the [`DegradationLevel`] ladder
    /// instead of growing without bound:
    ///
    /// * `max_tracked_vars` exceeded → [`DegradationLevel::VarQuarantine`]:
    ///   the hottest variables are excluded from happens-before edge
    ///   creation until at most the budgeted number remain tracked;
    /// * `max_alive_nodes` exceeded → `VarQuarantine` first; if the graph
    ///   is still over budget after a grace window, →
    ///   [`DegradationLevel::RecorderOnly`] (analysis stops, events are
    ///   only counted);
    /// * `max_trace_events` is enforced by the monitoring runtime, not the
    ///   engine (the engine retains no trace).
    ///
    /// Every transition is counted in [`VelodromeStats`] and surfaced as a
    /// [`WarningCategory::Degraded`] warning carrying the event index, so
    /// the soundness downgrade is explicit, never silent. Warnings emitted
    /// *before* the first transition are byte-identical to an unbudgeted
    /// run.
    pub budget: ResourceBudget,
    /// Symbol table used to render warnings and error graphs.
    pub names: SymbolTable,
    /// Telemetry registry the engine reports into (default: the disabled
    /// no-op handle — zero overhead, see the `velodrome-telemetry` crate).
    /// When enabled, the engine registers phase timers around its hot spots
    /// plus counters for arena capacity failures and ladder transitions,
    /// and [`Velodrome::publish_telemetry`] mirrors the full
    /// [`VelodromeStats`]/[`crate::arena::ArenaStats`] surface as gauges.
    pub telemetry: Telemetry,
}

impl Default for VelodromeConfig {
    fn default() -> Self {
        Self {
            merge: true,
            gc: true,
            elide_redundant_edges: true,
            dedup_per_label: true,
            max_warnings: 10_000,
            budget: ResourceBudget::UNLIMITED,
            names: SymbolTable::new(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Pre-resolved telemetry handles for the engine's hot paths. All handles
/// are no-ops when the configured [`Telemetry`] is disabled.
#[derive(Debug)]
struct EngineTele {
    /// Span timer per operation reaching the happens-before machinery.
    advance: PhaseTimer,
    /// Span timer around `Arena::add_edge`.
    add_edge: PhaseTimer,
    /// Span timer around cycle reconstruction and blame assignment.
    cycle_check: PhaseTimer,
    /// Span timer around GC cascades (`Arena::finish`).
    gc: PhaseTimer,
    /// Arena slot-exhaustion events.
    exhausted: Counter,
    /// Arena 48-bit timestamp overflows.
    ts_overflow: Counter,
    /// Degradation-ladder transitions.
    degradations: Counter,
    /// Current ladder rung (monotone non-decreasing over a run).
    ladder: Gauge,
}

impl EngineTele {
    fn new(t: &Telemetry) -> Self {
        Self {
            advance: t.phase(names::PHASE_ADVANCE),
            add_edge: t.phase(names::PHASE_ADD_EDGE),
            cycle_check: t.phase(names::PHASE_CYCLE_CHECK),
            gc: t.phase(names::PHASE_GC),
            exhausted: t.counter(names::ARENA_EXHAUSTED),
            ts_overflow: t.counter(names::ARENA_TS_OVERFLOW),
            degradations: t.counter(names::ENGINE_DEGRADATIONS),
            ladder: t.gauge(names::ENGINE_LADDER),
        }
    }
}

/// Aggregate statistics of an analysis run.
#[derive(Debug, Clone, Copy, Default)]
pub struct VelodromeStats {
    /// Operations processed.
    pub ops: u64,
    /// Total transaction nodes allocated (Table 1 "Allocated").
    pub nodes_allocated: u64,
    /// Peak simultaneously-alive nodes (Table 1 "Max. Alive").
    pub max_alive: u64,
    /// Nodes reclaimed by GC.
    pub collected: u64,
    /// Happens-before edges inserted.
    pub edges_added: u64,
    /// Edges skipped by the arena's redundant-edge elision gate.
    pub edges_elided: u64,
    /// Edge insertions short-circuited by the per-thread epoch cache
    /// (repeated no-op predecessor within one transaction).
    pub epoch_hits: u64,
    /// Non-transactional operations that merged into an existing node.
    pub merges_reused: u64,
    /// Non-transactional operations that vanished (all predecessors `⊥`).
    pub merges_bottom: u64,
    /// Cycles detected (before per-label deduplication).
    pub cycles_detected: u64,
    /// Warnings dropped because [`VelodromeConfig::max_warnings`] was
    /// exhausted (the full [`CycleReport`]s are still retained).
    pub warnings_suppressed: u64,
    /// Degradation-ladder transitions taken (see
    /// [`VelodromeConfig::budget`]).
    pub degradations: u64,
    /// Variables quarantined from happens-before edge creation.
    pub vars_quarantined: u64,
    /// Current rung of the degradation ladder.
    pub ladder: DegradationLevel,
}

impl VelodromeStats {
    /// Graph node + edge operations performed: nodes allocated plus edge
    /// insertions attempted (stored or elided). This is the per-event
    /// graph-maintenance cost the hybrid backend's vector-clock screen
    /// avoids on serializable traces; the `hotpath` benchmark compares it
    /// across backends.
    pub fn graph_ops(&self) -> u64 {
        self.nodes_allocated + self.edges_added + self.edges_elided
    }
}

impl std::fmt::Display for VelodromeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ops, {} nodes allocated ({} max alive, {} collected), \
             {} edges ({} elided, {} epoch hits), {} merges reused, \
             {} vanished, {} cycles",
            self.ops,
            self.nodes_allocated,
            self.max_alive,
            self.collected,
            self.edges_added,
            self.edges_elided,
            self.epoch_hits,
            self.merges_reused,
            self.merges_bottom,
            self.cycles_detected
        )?;
        if self.warnings_suppressed > 0 {
            write!(
                f,
                ", {} warnings suppressed (budget)",
                self.warnings_suppressed
            )?;
        }
        if self.ladder != DegradationLevel::Full {
            write!(
                f,
                ", degraded to {} ({} transitions, {} vars quarantined)",
                self.ladder, self.degradations, self.vars_quarantined
            )?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Block {
    label: Label,
    start_ts: Ts,
    #[allow(dead_code)]
    begin_op: usize,
}

#[derive(Debug, Default)]
struct ThreadState {
    /// `L(t)`: step of the thread's last operation (weak).
    l: Step,
    /// Current transaction node; meaningful only when `stack` is non-empty.
    node: SlotIdx,
    /// Open atomic blocks, outermost first.
    stack: Vec<Block>,
    /// Epoch cache: the last predecessor step whose edge into the current
    /// transaction was a no-op (`⊥`/stale source, self-edge, or elided as
    /// transitively implied). Repeats of the same predecessor within the
    /// same transaction — e.g. a read loop whose `W(x)` never changes — are
    /// skipped without touching the arena: all four no-op conditions are
    /// stable while the transaction node is fixed (timestamps are never
    /// reissued per slot, ancestor sets only shrink when the ancestor
    /// itself dies and turns the step stale). Cleared on transaction entry,
    /// when the node changes.
    skip: Option<Step>,
}

/// The sound and complete dynamic serializability analysis.
///
/// Feed it operations through the [`Tool`] interface (usually via
/// [`velodrome_monitor::run_tool`] or [`check_trace`]); it reports one
/// [`Warning`] per detected violation and keeps the full [`CycleReport`]s
/// for inspection.
#[derive(Debug)]
pub struct Velodrome {
    cfg: VelodromeConfig,
    arena: Arena,
    threads: Vec<ThreadState>,
    /// `U`: last release step per lock.
    u: HashMap<LockId, Step>,
    /// `W`: last write step per variable.
    w: HashMap<VarId, Step>,
    /// `R`: last read step per variable and thread (since the last write).
    /// Ordered by thread so edge-insertion order (and thus reports and
    /// statistics) is deterministic.
    r: HashMap<VarId, BTreeMap<ThreadId, Step>>,
    warnings: Vec<Warning>,
    reports: Vec<CycleReport>,
    dedup: PerLabelDedup,
    stats: VelodromeStats,
    /// Variables excluded from happens-before edge creation after the
    /// tracked-variable (or alive-node) budget tripped. Reads and writes of
    /// a quarantined variable are ignored entirely — dropping edges can only
    /// lose real cycles (completeness), never invent false ones (soundness).
    quarantined: HashSet<VarId>,
    /// Access counts per still-tracked variable; maintained only when a
    /// budget is configured, and used to pick the *hottest* variables for
    /// quarantine (ties broken by lower raw id, so runs are deterministic).
    var_heat: HashMap<VarId, u64>,
    /// After an alive-node-triggered quarantine, escalation to
    /// recorder-only waits until this many ops have been processed, giving
    /// GC a window to reclaim nodes the quarantine unpinned.
    grace_until: u64,
    /// Pre-resolved telemetry handles (no-ops when telemetry is disabled).
    tele: EngineTele,
}

impl Default for Velodrome {
    fn default() -> Self {
        Self::new()
    }
}

impl Velodrome {
    /// Creates an engine with the default (fully optimized) configuration.
    pub fn new() -> Self {
        Self::with_config(VelodromeConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(cfg: VelodromeConfig) -> Self {
        let arena = Arena::with_options(cfg.gc, cfg.elide_redundant_edges);
        let tele = EngineTele::new(&cfg.telemetry);
        Self {
            cfg,
            arena,
            threads: Vec::new(),
            u: HashMap::new(),
            w: HashMap::new(),
            r: HashMap::new(),
            warnings: Vec::new(),
            reports: Vec::new(),
            dedup: PerLabelDedup::new(),
            stats: VelodromeStats::default(),
            quarantined: HashSet::new(),
            var_heat: HashMap::new(),
            grace_until: 0,
            tele,
        }
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> VelodromeStats {
        let a = self.arena.stats();
        VelodromeStats {
            nodes_allocated: a.allocated,
            max_alive: a.max_alive,
            collected: a.collected,
            edges_added: a.edges_added,
            edges_elided: a.edges_elided,
            ..self.stats
        }
    }

    /// Mirrors the engine's statistics surface into the configured
    /// telemetry registry as gauges under the stable names in
    /// [`velodrome_telemetry::names`]. The counters the engine updates live
    /// (`arena.exhausted`, `arena.ts_overflow`, `engine.degradations`) are
    /// not touched. A no-op when telemetry is disabled; callers invoke this
    /// before each snapshot (pull-model publishing keeps the hot path free
    /// of per-op gauge stores).
    pub fn publish_telemetry(&self) {
        self.publish_telemetry_to(&self.cfg.telemetry);
    }

    /// [`publish_telemetry`](Self::publish_telemetry) into an explicit
    /// registry. Lets a benchmark run the engine with telemetry fully
    /// disabled (no per-op phase-timer clock reads) and still read the
    /// run's final numbers back through registry gauges.
    pub fn publish_telemetry_to(&self, t: &Telemetry) {
        if !t.is_enabled() {
            return;
        }
        let a = self.arena.stats();
        t.set_gauge(names::ARENA_ALLOCATED, a.allocated);
        t.set_gauge(names::ARENA_MAX_ALIVE, a.max_alive);
        t.set_gauge(names::ARENA_CUR_ALIVE, a.cur_alive);
        t.set_gauge(names::ARENA_COLLECTED, a.collected);
        t.set_gauge(names::ARENA_EDGES_ADDED, a.edges_added);
        t.set_gauge(names::ARENA_EDGES_REPLACED, a.edges_replaced);
        t.set_gauge(names::ARENA_EDGES_ELIDED, a.edges_elided);
        let s = &self.stats;
        t.set_gauge(names::ENGINE_OPS, s.ops);
        t.set_gauge(names::ENGINE_EPOCH_HITS, s.epoch_hits);
        t.set_gauge(names::ENGINE_MERGES_REUSED, s.merges_reused);
        t.set_gauge(names::ENGINE_MERGES_BOTTOM, s.merges_bottom);
        t.set_gauge(names::ENGINE_CYCLES_DETECTED, s.cycles_detected);
        t.set_gauge(names::ENGINE_WARNINGS_SUPPRESSED, s.warnings_suppressed);
        t.set_gauge(names::ENGINE_VARS_QUARANTINED, s.vars_quarantined);
        t.set_gauge(names::ENGINE_LADDER, s.ladder.rung());
    }

    /// Full cycle reports collected so far (not drained by
    /// [`Tool::take_warnings`]).
    pub fn reports(&self) -> &[CycleReport] {
        &self.reports
    }

    /// Number of currently alive transaction nodes.
    pub fn alive_nodes(&self) -> usize {
        self.arena.alive_count()
    }

    /// Current rung of the degradation ladder (see
    /// [`VelodromeConfig::budget`]).
    pub fn ladder(&self) -> DegradationLevel {
        self.stats.ladder
    }

    /// Variables currently quarantined from happens-before edge creation.
    pub fn quarantined_vars(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self.quarantined.iter().copied().collect();
        vars.sort_by_key(|x| x.raw());
        vars
    }

    /// Exposes the arena's internal invariant checker (tests only).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.arena.check_invariants();
    }

    /// Test hook: pins an arena slot's timestamp counter so overflow paths
    /// can be exercised without issuing 2^48 bumps (see
    /// [`Arena::force_counter_for_test`]).
    #[doc(hidden)]
    pub fn force_arena_counter_for_test(&mut self, slot: SlotIdx, counter: Ts) {
        self.arena.force_counter_for_test(slot, counter);
    }

    fn thread_mut(&mut self, t: ThreadId) -> &mut ThreadState {
        let idx = t.index();
        if idx >= self.threads.len() {
            self.threads.resize_with(idx + 1, ThreadState::default);
        }
        &mut self.threads[idx]
    }

    fn in_txn(&mut self, t: ThreadId) -> bool {
        !self.thread_mut(t).stack.is_empty()
    }

    /// Timed wrapper around [`Arena::add_edge`].
    fn add_edge(&mut self, from: Step, to: Step, op: Op, idx: usize) -> Result<bool, CycleFound> {
        let _span = self.tele.add_edge.start();
        self.arena.add_edge(from, to, op, idx)
    }

    /// Timed wrapper around [`Arena::finish`] (the GC cascade entry point).
    fn finish_node(&mut self, slot: SlotIdx) {
        let _span = self.tele.gc.start();
        self.arena.finish(slot);
    }

    /// Maps a recoverable arena capacity failure onto the degradation
    /// ladder: count it in telemetry, step straight to recorder-only with a
    /// `Degraded` warning, and release the instrumentation store (its steps
    /// are never consulted again; events are only counted from here on).
    /// The host keeps running — this is the crash class the ladder exists
    /// to absorb.
    fn degrade_fatal(&mut self, err: ArenaError, t: ThreadId, idx: usize) {
        match err {
            ArenaError::Exhausted => self.tele.exhausted.incr(),
            ArenaError::TsOverflow => self.tele.ts_overflow.incr(),
        }
        self.degrade(DegradationLevel::RecorderOnly, t, idx, &err.to_string());
        self.u.clear();
        self.w.clear();
        self.r.clear();
        self.var_heat.clear();
    }

    /// Advances thread `t` by one operation with happens-before
    /// predecessors `preds`, returning the operation's step (possibly `⊥`
    /// for vanishing non-transactional operations).
    fn advance(&mut self, t: ThreadId, preds: &[Step], op: Op, idx: usize) -> Step {
        if self.in_txn(t) {
            let node = self.thread_mut(t).node;
            let s = match self.arena.bump(node) {
                Ok(s) => s,
                Err(e) => {
                    self.degrade_fatal(e, t, idx);
                    return Step::NONE;
                }
            };
            let elide = self.cfg.elide_redundant_edges;
            for &p in preds {
                // Epoch fast path: a predecessor that was a no-op for this
                // transaction stays one (see `ThreadState::skip`).
                if elide && self.threads[t.index()].skip == Some(p) {
                    self.stats.epoch_hits += 1;
                    continue;
                }
                match self.add_edge(p, s, op, idx) {
                    Ok(true) => {}
                    Ok(false) => {
                        if elide {
                            self.threads[t.index()].skip = Some(p);
                        }
                    }
                    Err(c) => self.report_cycle(c, t, op, idx),
                }
            }
            self.thread_mut(t).l = s;
            return s;
        }
        // Non-transactional operation: gather the resolved predecessors,
        // including the thread-order predecessor L(t), deduplicated per node
        // (keeping the latest timestamp).
        let l = self.thread_mut(t).l;
        let mut args: Vec<Step> = Vec::with_capacity(preds.len() + 1);
        for &p in preds.iter().chain(std::iter::once(&l)) {
            let p = self.arena.resolve(p);
            if let Some((n, ts)) = p.is_some().then(|| p.unpack()) {
                match args.iter_mut().find(|a| a.slot() == Some(n)) {
                    Some(a) => {
                        if ts > a.ts().expect("resolved step") {
                            *a = p;
                        }
                    }
                    None => args.push(p),
                }
            }
        }
        let s = if !self.cfg.merge {
            // Figure 2 [INS OUTSIDE]: wrap the operation in a fresh unary
            // transaction.
            let desc = NodeDesc {
                thread: t,
                label: None,
                first_op: idx,
            };
            let s = match self.arena.alloc(desc, true) {
                Ok(s) => s,
                Err(e) => {
                    self.degrade_fatal(e, t, idx);
                    return Step::NONE;
                }
            };
            for &a in &args {
                // The target node is fresh, so no cycle is possible.
                let _ = self.add_edge(a, s, op, idx);
            }
            let (slot, _) = s.unpack();
            self.finish_node(slot);
            s
        } else if args.is_empty() {
            // All predecessors are ⊥: the unary transaction would be
            // collected immediately, so it is never allocated (merge case 1).
            self.stats.merges_bottom += 1;
            Step::NONE
        } else if let Some(&sj) = args.iter().find(|&&sj| {
            // Reuse is safe only for nodes that can never gain another
            // incoming edge: merging into another thread's *current*
            // transaction would turn a later conflicting edge back into it
            // into a filtered self-edge, hiding a real cycle.
            !self.arena.is_current(sj.unpack().0)
                && args.iter().all(|&si| self.arena.happens_before(si, sj))
        }) {
            // A dominating, non-current predecessor exists: reuse its node
            // (merge case 2).
            self.stats.merges_reused += 1;
            let (slot, _) = sj.unpack();
            match self.arena.bump(slot) {
                Ok(s) => s,
                Err(e) => {
                    self.degrade_fatal(e, t, idx);
                    return Step::NONE;
                }
            }
        } else {
            // Two or more incomparable predecessors: allocate a merge node
            // with edges from each (merge case 3). The node is fresh, so no
            // cycle is possible.
            let desc = NodeDesc {
                thread: t,
                label: None,
                first_op: idx,
            };
            let s = match self.arena.alloc(desc, false) {
                Ok(s) => s,
                Err(e) => {
                    self.degrade_fatal(e, t, idx);
                    return Step::NONE;
                }
            };
            for &a in &args {
                let _ = self.add_edge(a, s, op, idx);
            }
            s
        };
        self.thread_mut(t).l = s;
        s
    }

    fn on_begin(&mut self, t: ThreadId, l: Label, idx: usize) {
        if self.in_txn(t) {
            // [INS2 RE-ENTER]: nested block within the current transaction.
            let node = self.thread_mut(t).node;
            let s = match self.arena.bump(node) {
                Ok(s) => s,
                Err(e) => {
                    self.degrade_fatal(e, t, idx);
                    return;
                }
            };
            let ts = s.ts().expect("bumped step");
            let st = self.thread_mut(t);
            st.l = s;
            st.stack.push(Block {
                label: l,
                start_ts: ts,
                begin_op: idx,
            });
        } else {
            // [INS2 ENTER]: allocate a fresh transaction node, ordered after
            // the thread's previous transaction.
            let prev = self.thread_mut(t).l;
            let desc = NodeDesc {
                thread: t,
                label: Some(l),
                first_op: idx,
            };
            let s = match self.arena.alloc(desc, true) {
                Ok(s) => s,
                Err(e) => {
                    self.degrade_fatal(e, t, idx);
                    return;
                }
            };
            let op = Op::Begin { t, l };
            let _ = self.add_edge(prev, s, op, idx);
            let (slot, ts) = s.unpack();
            let st = self.thread_mut(t);
            st.l = s;
            st.node = slot;
            // The cache is only valid for one fixed transaction node: the
            // previous node's slot may since have been recycled.
            st.skip = None;
            st.stack = vec![Block {
                label: l,
                start_ts: ts,
                begin_op: idx,
            }];
        }
    }

    fn on_end(&mut self, t: ThreadId, idx: usize) {
        if !self.in_txn(t) {
            return; // Stray end: tolerated, as in the trace semantics.
        }
        let node = self.thread_mut(t).node;
        // On timestamp overflow the end step is `⊥` (L(t) keeps its last
        // valid step) but the block is still popped and the node finished,
        // so the graph stays consistent while the engine degrades.
        let s = match self.arena.bump(node) {
            Ok(s) => s,
            Err(e) => {
                self.degrade_fatal(e, t, idx);
                Step::NONE
            }
        };
        let st = self.thread_mut(t);
        if s.is_some() {
            st.l = s;
        }
        st.stack.pop();
        if st.stack.is_empty() {
            // [INS2 EXIT] of the outermost block: the transaction is
            // finished and becomes collectible once unreferenced.
            self.finish_node(node);
        }
    }

    fn on_read(&mut self, t: ThreadId, x: VarId, op: Op, idx: usize) {
        let w = self.w.get(&x).copied().unwrap_or(Step::NONE);
        let s = self.advance(t, &[w], op, idx);
        // A `⊥` step must not materialize an empty per-variable map:
        // `advance` may just have degraded and released the whole store.
        if s.is_some() {
            self.r.entry(x).or_default().insert(t, s);
        } else if let Some(per_var) = self.r.get_mut(&x) {
            per_var.remove(&t);
        }
    }

    fn on_write(&mut self, t: ThreadId, x: VarId, op: Op, idx: usize) {
        let mut preds: Vec<Step> = Vec::new();
        if let Some(per_var) = self.r.get(&x) {
            preds.extend(per_var.values().copied());
        }
        preds.push(self.w.get(&x).copied().unwrap_or(Step::NONE));
        let s = self.advance(t, &preds, op, idx);
        if s.is_some() {
            self.w.insert(x, s);
        } else {
            self.w.remove(&x);
        }
        // Older reads are now transitively ordered through this write.
        if let Some(per_var) = self.r.get_mut(&x) {
            per_var.clear();
        }
    }

    fn on_acquire(&mut self, t: ThreadId, m: LockId, op: Op, idx: usize) {
        let u = self.u.get(&m).copied().unwrap_or(Step::NONE);
        let _ = self.advance(t, &[u], op, idx);
    }

    fn on_release(&mut self, t: ThreadId, m: LockId, op: Op, idx: usize) {
        let s = self.advance(t, &[], op, idx);
        if s.is_some() {
            self.u.insert(m, s);
        } else {
            self.u.remove(&m);
        }
    }

    fn on_fork(&mut self, t: ThreadId, child: ThreadId, op: Op, idx: usize) {
        let s = self.advance(t, &[], op, idx);
        // The child's first operation is ordered after the fork: seed its
        // thread-order predecessor.
        self.thread_mut(child).l = s;
    }

    fn on_join(&mut self, t: ThreadId, child: ThreadId, op: Op, idx: usize) {
        let lc = self.thread_mut(child).l;
        let _ = self.advance(t, &[lc], op, idx);
    }

    /// Steps the ladder down to `to` (monotonic; a repeat at the same rung
    /// is a no-op). The transition warning bypasses both `max_warnings` and
    /// per-label dedup: a soundness downgrade must never be silently
    /// dropped.
    fn degrade(&mut self, to: DegradationLevel, t: ThreadId, idx: usize, reason: &str) {
        if to <= self.stats.ladder {
            return;
        }
        self.stats.ladder = to;
        self.stats.degradations += 1;
        self.tele.degradations.incr();
        self.tele.ladder.set(to.rung());
        self.warnings.push(Warning {
            tool: "velodrome",
            category: WarningCategory::Degraded,
            label: None,
            thread: t,
            op_index: idx,
            message: format!("degraded to {to}: {reason}"),
            details: None,
        });
    }

    /// Quarantines the hottest variables until at most `target` remain
    /// tracked. Hotter first; ties broken by lower raw id so runs are
    /// deterministic. Quarantined variables drop their `R`/`W` entries,
    /// unpinning any transaction nodes those steps kept alive.
    fn quarantine_hottest(&mut self, target: usize) {
        if self.var_heat.len() <= target {
            return;
        }
        let mut by_heat: Vec<(VarId, u64)> = self.var_heat.iter().map(|(&x, &h)| (x, h)).collect();
        by_heat.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.raw().cmp(&b.0.raw())));
        for (x, _) in by_heat.drain(..self.var_heat.len() - target) {
            self.var_heat.remove(&x);
            self.quarantined.insert(x);
            self.w.remove(&x);
            self.r.remove(&x);
            self.stats.vars_quarantined += 1;
        }
    }

    /// Budget enforcement, run before each operation when a budget is
    /// configured. Returns `true` if `op` should be dropped (quarantined
    /// variable or recorder-only mode).
    fn enforce_budgets(&mut self, op: Op, idx: usize) -> bool {
        let b = self.cfg.budget;
        let var = match op {
            Op::Read { x, .. } | Op::Write { x, .. } => Some(x),
            _ => None,
        };
        if let Some(x) = var {
            if self.quarantined.contains(&x) {
                return true;
            }
            *self.var_heat.entry(x).or_insert(0) += 1;
        }
        if b.max_tracked_vars > 0 && self.var_heat.len() > b.max_tracked_vars {
            self.quarantine_hottest(b.max_tracked_vars);
            self.degrade(
                DegradationLevel::VarQuarantine,
                op.tid(),
                idx,
                "tracked-variable budget exhausted",
            );
            // The current op's variable may itself have been quarantined.
            if let Some(x) = var {
                if self.quarantined.contains(&x) {
                    return true;
                }
            }
        }
        if b.max_alive_nodes > 0 && self.arena.alive_count() > b.max_alive_nodes {
            if self.grace_until == 0 {
                // First trip: quarantine the hotter half of the tracked
                // variables and give GC a grace window to reclaim the nodes
                // their R/W steps were pinning.
                self.quarantine_hottest((self.var_heat.len() / 2).max(1));
                self.degrade(
                    DegradationLevel::VarQuarantine,
                    op.tid(),
                    idx,
                    "alive-node budget exhausted",
                );
                self.grace_until = self.stats.ops + 2 * b.max_alive_nodes as u64 + 16;
            } else if self.stats.ops >= self.grace_until {
                self.degrade(
                    DegradationLevel::RecorderOnly,
                    op.tid(),
                    idx,
                    "alive-node budget still exhausted after quarantine",
                );
                // Analysis is over: release the store so memory stops
                // growing. Events are still counted in `stats.ops`.
                self.u.clear();
                self.w.clear();
                self.r.clear();
                self.var_heat.clear();
                return true;
            }
        }
        false
    }

    fn report_cycle(&mut self, c: CycleFound, t: ThreadId, op: Op, idx: usize) {
        let _span = self.tele.cycle_check.start();
        self.stats.cycles_detected += 1;
        // Reconstruct the existing path current-txn →* edge-source; the
        // rejected edge closes the cycle.
        let path = self
            .arena
            .find_path(c.to, c.from)
            .expect("cycle detection implies a path back to the edge source");
        let mut nodes: Vec<ReportNode> = vec![self.arena.desc(c.to).into()];
        let mut edges: Vec<ReportEdge> = Vec::with_capacity(path.len() + 1);
        for (slot, e) in &path {
            edges.push(ReportEdge {
                op: e.op,
                op_index: e.op_index,
                from_ts: e.from_ts,
                to_ts: e.to_ts,
            });
            nodes.push(self.arena.desc(*slot).into());
        }
        edges.push(ReportEdge {
            op,
            op_index: idx,
            from_ts: c.from_ts,
            to_ts: c.to_ts,
        });

        // Increasing-cycle check (Section 4.3): for every node other than
        // the current transaction, the incoming timestamp must not exceed
        // the outgoing timestamp.
        let increasing = (1..nodes.len()).all(|i| edges[i - 1].to_ts <= edges[i].from_ts);

        // Blame: the cycle leaves the current transaction at the root
        // timestamp; every enclosing atomic block whose begin precedes the
        // root contains both root and target operations and is refuted.
        let root_ts = edges[0].from_ts;
        let stack = &self.threads[t.index()].stack;
        let refuted: Vec<Label> = if increasing {
            stack
                .iter()
                .filter(|b| b.start_ts <= root_ts)
                .map(|b| b.label)
                .collect()
        } else {
            Vec::new()
        };
        let blamed = increasing.then_some(0);
        let outermost = stack.first().map(|b| b.label);
        let report = CycleReport {
            nodes,
            edges,
            increasing,
            blamed,
            refuted,
            op_index: idx,
        };

        let attribution = report.blamed_label().or(outermost);
        // Budget first, dedup second: the budget check consumes nothing, so
        // a label whose first report arrives while the budget is exhausted
        // is not marked as seen and can still warn once warnings drain.
        // Conversely a duplicate label returns here without ever counting
        // against the budget.
        if self.cfg.max_warnings > 0 && self.warnings.len() >= self.cfg.max_warnings {
            self.stats.warnings_suppressed += 1;
            self.reports.push(report);
            return;
        }
        if self.cfg.dedup_per_label && !self.dedup.first_report(attribution) {
            self.reports.push(report);
            return;
        }
        let warning = Warning {
            tool: "velodrome",
            category: WarningCategory::Atomicity,
            label: attribution,
            thread: t,
            op_index: idx,
            message: report.summary(&self.cfg.names),
            details: Some(report.to_dot(&self.cfg.names)),
        };
        self.warnings.push(warning);
        self.reports.push(report);
    }
}

impl Tool for Velodrome {
    fn name(&self) -> &'static str {
        "velodrome"
    }

    fn op(&mut self, index: usize, op: Op) {
        self.stats.ops += 1;
        // Recorder-only is reachable without a budget (arena capacity
        // failures degrade directly), so the check is unconditional.
        if self.stats.ladder == DegradationLevel::RecorderOnly {
            return;
        }
        // Budget enforcement is gated on a configured budget so the default
        // (unlimited) path has zero extra state and identical behavior.
        if !self.cfg.budget.is_unlimited() && self.enforce_budgets(op, index) {
            return;
        }
        let _span = self.tele.advance.start();
        match op {
            Op::Read { t, x } => self.on_read(t, x, op, index),
            Op::Write { t, x } => self.on_write(t, x, op, index),
            Op::Acquire { t, m } => self.on_acquire(t, m, op, index),
            Op::Release { t, m } => self.on_release(t, m, op, index),
            Op::Begin { t, l } => self.on_begin(t, l, index),
            Op::End { t } => self.on_end(t, index),
            Op::Fork { t, child } => self.on_fork(t, child, op, index),
            Op::Join { t, child } => self.on_join(t, child, op, index),
        }
    }

    fn take_warnings(&mut self) -> Vec<Warning> {
        std::mem::take(&mut self.warnings)
    }
}

/// Runs Velodrome over a recorded trace with default configuration (names
/// taken from the trace) and returns the warnings.
pub fn check_trace(trace: &Trace) -> Vec<Warning> {
    let cfg = VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    };
    let mut v = Velodrome::with_config(cfg);
    velodrome_monitor::run_tool(&mut v, trace)
}

/// Like [`check_trace`], but also returns the engine for inspecting
/// statistics and full cycle reports.
pub fn check_trace_with(trace: &Trace, cfg: VelodromeConfig) -> (Vec<Warning>, Velodrome) {
    let mut v = Velodrome::with_config(cfg);
    let warnings = velodrome_monitor::run_tool(&mut v, trace);
    (warnings, v)
}
