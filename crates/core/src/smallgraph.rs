//! Compact adjacency containers for the transaction graph.
//!
//! The arena's per-slot edge maps and ancestor sets are small (the graph
//! stays within tens of alive nodes thanks to merging and GC) and sit on
//! the hot path of every `add_edge`. Sorted vectors beat `HashMap`/`HashSet`
//! here: membership is a binary search over a contiguous `u16` run (one or
//! two cache lines), iteration is linear and allocation-free, and the order
//! is deterministic — so path reconstruction and collection cascades no
//! longer need defensive re-sorting.

use crate::step::SlotIdx;

/// A map from slot index to `V`, stored as parallel sorted vectors.
#[derive(Debug, Clone, Default)]
pub(crate) struct SlotMap<V> {
    keys: Vec<SlotIdx>,
    vals: Vec<V>,
}

impl<V> SlotMap<V> {
    pub(crate) fn new() -> Self {
        SlotMap {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub(crate) fn clear(&mut self) {
        self.keys.clear();
        self.vals.clear();
    }

    pub(crate) fn get(&self, key: SlotIdx) -> Option<&V> {
        self.keys.binary_search(&key).ok().map(|i| &self.vals[i])
    }

    pub(crate) fn get_mut(&mut self, key: SlotIdx) -> Option<&mut V> {
        self.keys
            .binary_search(&key)
            .ok()
            .map(|i| &mut self.vals[i])
    }

    pub(crate) fn contains_key(&self, key: SlotIdx) -> bool {
        self.keys.binary_search(&key).is_ok()
    }

    /// Inserts `val` under `key`, returning the previous value if any.
    pub(crate) fn insert(&mut self, key: SlotIdx, val: V) -> Option<V> {
        match self.keys.binary_search(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.vals[i], val)),
            Err(i) => {
                self.keys.insert(i, key);
                self.vals.insert(i, val);
                None
            }
        }
    }

    pub(crate) fn remove(&mut self, key: SlotIdx) -> Option<V> {
        match self.keys.binary_search(&key) {
            Ok(i) => {
                self.keys.remove(i);
                Some(self.vals.remove(i))
            }
            Err(_) => None,
        }
    }

    /// Entries in ascending key order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (SlotIdx, &V)> + '_ {
        self.keys.iter().copied().zip(self.vals.iter())
    }

    /// Keys in ascending order.
    pub(crate) fn keys(&self) -> impl Iterator<Item = SlotIdx> + '_ {
        self.keys.iter().copied()
    }
}

/// A set of slot indices, stored as a sorted vector.
#[derive(Debug, Clone, Default)]
pub(crate) struct SlotSet {
    items: Vec<SlotIdx>,
}

impl SlotSet {
    pub(crate) fn new() -> Self {
        SlotSet { items: Vec::new() }
    }

    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub(crate) fn clear(&mut self) {
        self.items.clear();
    }

    pub(crate) fn contains(&self, item: SlotIdx) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Inserts one item; returns `true` if it was not already present.
    pub(crate) fn insert(&mut self, item: SlotIdx) -> bool {
        match self.items.binary_search(&item) {
            Ok(_) => false,
            Err(i) => {
                self.items.insert(i, item);
                true
            }
        }
    }

    /// Removes one item; returns `true` if it was present.
    pub(crate) fn remove(&mut self, item: SlotIdx) -> bool {
        match self.items.binary_search(&item) {
            Ok(i) => {
                self.items.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Items in ascending order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = SlotIdx> + '_ {
        self.items.iter().copied()
    }

    /// Adds every item of `other`; returns `true` if the set grew.
    ///
    /// Fast-paths the no-op case (all items already present), which is the
    /// common outcome during ancestor propagation once the graph is warm.
    pub(crate) fn merge(&mut self, other: &SlotSet) -> bool {
        if other.items.iter().all(|&x| self.contains(x)) {
            return false;
        }
        let mut merged = Vec::with_capacity(self.items.len() + other.items.len());
        let (a, b) = (&self.items, &other.items);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.items = merged;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_get_remove() {
        let mut m: SlotMap<u32> = SlotMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, 50), None);
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(9, 90), None);
        assert_eq!(m.insert(5, 55), Some(50), "replacement returns old value");
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(5), Some(&55));
        assert_eq!(m.get(2), None);
        assert!(m.contains_key(1));
        let keys: Vec<SlotIdx> = m.keys().collect();
        assert_eq!(keys, vec![1, 5, 9], "keys stay sorted");
        assert_eq!(m.remove(5), Some(55));
        assert_eq!(m.remove(5), None);
        assert_eq!(m.len(), 2);
        *m.get_mut(1).unwrap() += 1;
        assert_eq!(m.get(1), Some(&11));
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn map_iter_is_sorted_pairs() {
        let mut m: SlotMap<&str> = SlotMap::new();
        m.insert(3, "c");
        m.insert(1, "a");
        m.insert(2, "b");
        let pairs: Vec<(SlotIdx, &str)> = m.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(pairs, vec![(1, "a"), (2, "b"), (3, "c")]);
    }

    #[test]
    fn set_insert_contains_remove() {
        let mut s = SlotSet::new();
        assert!(s.insert(4));
        assert!(s.insert(2));
        assert!(!s.insert(4), "duplicate insert is a no-op");
        assert!(s.contains(2));
        assert!(!s.contains(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 4]);
        assert!(s.remove(2));
        assert!(!s.remove(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_merge_reports_growth() {
        let mut a = SlotSet::new();
        for x in [1, 3, 5] {
            a.insert(x);
        }
        let mut b = SlotSet::new();
        for x in [3, 5] {
            b.insert(x);
        }
        assert!(!a.merge(&b), "subset merge is a no-op");
        b.insert(4);
        assert!(a.merge(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        assert!(!a.merge(&b), "idempotent");
    }
}
