//! Packed step representation.
//!
//! Section 5 of the paper: "Each step is represented as a 64-bit integer
//! whose top 16 bits identify a particular Node object, and whose lower 48
//! bits represent a timestamp within that Node." A step is a pair of a
//! transaction node and the timestamp of one operation inside it; `⊥` (no
//! step) is a distinguished value.
//!
//! Node slots are recycled: when a node is garbage collected, the slot
//! records the last timestamp it handed out, and any later dereference of a
//! step whose timestamp falls at or below that floor is interpreted as `⊥`.

use std::fmt;

/// Index of a node slot in the arena (the top 16 bits of a step).
pub type SlotIdx = u16;

/// A timestamp within a node (the low 48 bits of a step).
pub type Ts = u64;

/// Largest representable timestamp.
pub const MAX_TS: Ts = (1 << 48) - 1;

/// A packed `(node, timestamp)` pair, or `⊥`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step(u64);

impl Step {
    /// The distinguished "no step" value (`⊥`).
    pub const NONE: Step = Step(u64::MAX);

    /// Packs a slot index and timestamp into a step.
    ///
    /// # Panics
    ///
    /// Panics if `ts` exceeds 48 bits or the packed value would collide
    /// with [`Step::NONE`].
    pub fn new(slot: SlotIdx, ts: Ts) -> Self {
        assert!(ts <= MAX_TS, "timestamp overflow: {ts}");
        let packed = ((slot as u64) << 48) | ts;
        assert_ne!(packed, u64::MAX, "step collides with NONE");
        Step(packed)
    }

    /// Returns `true` for the `⊥` step.
    pub const fn is_none(self) -> bool {
        self.0 == u64::MAX
    }

    /// Returns `true` for any step other than `⊥`.
    pub const fn is_some(self) -> bool {
        !self.is_none()
    }

    /// The node slot, or `None` for `⊥`.
    pub fn slot(self) -> Option<SlotIdx> {
        if self.is_none() {
            None
        } else {
            Some((self.0 >> 48) as SlotIdx)
        }
    }

    /// The timestamp, or `None` for `⊥`.
    pub fn ts(self) -> Option<Ts> {
        if self.is_none() {
            None
        } else {
            Some(self.0 & MAX_TS)
        }
    }

    /// Unpacks into `(slot, ts)`.
    ///
    /// # Panics
    ///
    /// Panics on `⊥`.
    pub fn unpack(self) -> (SlotIdx, Ts) {
        assert!(self.is_some(), "unpack of bottom step");
        ((self.0 >> 48) as SlotIdx, self.0 & MAX_TS)
    }

    /// The raw 64-bit representation.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl Default for Step {
    fn default() -> Self {
        Step::NONE
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.slot(), self.ts()) {
            (Some(slot), Some(ts)) => write!(f, "(n{slot}, {ts})"),
            _ => write!(f, "⊥"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let s = Step::new(42, 123_456_789);
        assert_eq!(s.unpack(), (42, 123_456_789));
        assert_eq!(s.slot(), Some(42));
        assert_eq!(s.ts(), Some(123_456_789));
        assert!(s.is_some());
    }

    #[test]
    fn none_is_bottom() {
        assert!(Step::NONE.is_none());
        assert_eq!(Step::NONE.slot(), None);
        assert_eq!(Step::NONE.ts(), None);
        assert_eq!(Step::default(), Step::NONE);
    }

    #[test]
    fn extreme_values_roundtrip() {
        let s = Step::new(u16::MAX, MAX_TS - 1);
        assert_eq!(s.unpack(), (u16::MAX, MAX_TS - 1));
        let s = Step::new(0, 0);
        assert_eq!(s.unpack(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "timestamp overflow")]
    fn timestamp_overflow_panics() {
        let _ = Step::new(0, MAX_TS + 1);
    }

    #[test]
    #[should_panic(expected = "collides with NONE")]
    fn max_slot_max_ts_collides_with_none() {
        let _ = Step::new(u16::MAX, MAX_TS);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Step::new(3, 7).to_string(), "(n3, 7)");
        assert_eq!(Step::NONE.to_string(), "⊥");
    }
}
