//! # Velodrome: sound and complete dynamic atomicity checking
//!
//! A reproduction of *"Velodrome: A Sound and Complete Dynamic Atomicity
//! Checker for Multithreaded Programs"* (Flanagan, Freund & Yi, PLDI 2008).
//!
//! Velodrome observes the event stream of a multithreaded execution
//! (reads, writes, lock acquires/releases, atomic-block entry/exit) and
//! decides whether every transaction in the observed trace is
//! **conflict-serializable**. The analysis is:
//!
//! * **sound** — it reports an error whenever the observed trace is not
//!   serializable, and
//! * **complete** — it reports an error *only* for non-serializable traces
//!   (zero false alarms),
//!
//! because it tracks the exact transactional happens-before relation and a
//! trace is serializable iff that relation is acyclic.
//!
//! ## Architecture
//!
//! * [`step`] — packed 64-bit `(node, timestamp)` steps with slot
//!   recycling and staleness detection (Section 5);
//! * [`arena`] — the transaction-node arena: timestamped edges, ancestor
//!   sets for O(1)-amortized cycle detection *before* edge insertion, and
//!   reference-counting garbage collection (Section 4.1);
//! * [`engine`] — the online analysis rules (Figures 2 and 4), including
//!   the merge optimization for non-transactional operations (Section
//!   4.2), nested atomic blocks, and blame assignment (Section 4.3);
//! * [`report`] — structured [`CycleReport`]s with increasing-cycle blame
//!   and Graphviz rendering in the paper's error-graph format.
//!
//! ## Quick start
//!
//! ```
//! use velodrome::check_trace;
//! use velodrome_events::TraceBuilder;
//!
//! // Thread 2's write interleaves with thread 1's read-modify-write.
//! let mut b = TraceBuilder::new();
//! b.begin("T1", "increment").read("T1", "counter");
//! b.write("T2", "counter");
//! b.write("T1", "counter").end("T1");
//!
//! let warnings = check_trace(&b.finish());
//! assert_eq!(warnings.len(), 1);
//! assert!(warnings[0].message.contains("increment is not atomic"));
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod engine;
pub mod hybrid;
pub mod report;
mod smallgraph;
pub mod step;

pub use arena::{Arena, ArenaError, ArenaStats, CycleFound, EdgeInfo, NodeDesc};
pub use engine::{check_trace, check_trace_with, Velodrome, VelodromeConfig, VelodromeStats};
pub use hybrid::{check_trace_hybrid, HybridConfig, HybridStats, HybridVelodrome};
pub use report::{CycleReport, ReportEdge, ReportNode};
pub use step::Step;
