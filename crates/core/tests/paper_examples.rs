//! End-to-end tests of the Velodrome engine on the paper's worked examples.

use velodrome::{check_trace, check_trace_with, Velodrome, VelodromeConfig};
use velodrome_events::{oracle, Trace, TraceBuilder};
use velodrome_monitor::{run_tool, Tool};

fn check_all(trace: &Trace) -> (Vec<velodrome_monitor::Warning>, Velodrome) {
    let cfg = VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    };
    check_trace_with(trace, cfg)
}

/// The introduction's three-transaction cycle: A → B via rel/acq(m),
/// B → C via wr/rd(y), C → A via wr/rd(x); blame falls on A.
#[test]
fn intro_cycle_blames_transaction_a() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "A").acquire("T1", "m").release("T1", "m");
    b.begin("T2", "B")
        .acquire("T2", "m")
        .write("T2", "y")
        .end("T2");
    b.begin("T3", "C")
        .read("T3", "y")
        .write("T3", "x")
        .end("T3");
    b.read("T1", "x").end("T1");
    let trace = b.finish();
    assert!(
        !oracle::is_serializable(&trace),
        "oracle agrees the trace is bad"
    );

    let (warnings, engine) = check_all(&trace);
    assert_eq!(warnings.len(), 1, "exactly one violation: {warnings:?}");
    let report = &engine.reports()[0];
    assert_eq!(report.nodes.len(), 3, "cycle has three transactions");
    assert!(report.increasing, "cycle is increasing");
    assert_eq!(report.blamed, Some(0));
    let names = trace.names();
    assert_eq!(names.label(report.blamed_label().unwrap()), "A");
    assert!(
        warnings[0].message.contains("A is not atomic"),
        "{}",
        warnings[0].message
    );
}

/// The Section 1 `Set.add` example: race-free but not atomic.
#[test]
fn set_add_is_race_free_but_not_atomic() {
    let mut b = TraceBuilder::new();
    // Two threads run Set.add concurrently; every elems access holds the
    // vector's monitor, but the check-then-act spans two critical sections.
    b.begin("T1", "Set.add");
    b.acquire("T1", "this")
        .read("T1", "elems")
        .release("T1", "this"); // contains
    b.begin("T2", "Set.add");
    b.acquire("T2", "this")
        .read("T2", "elems")
        .release("T2", "this"); // contains
    b.acquire("T2", "this")
        .read("T2", "elems")
        .write("T2", "elems"); // add
    b.release("T2", "this").end("T2");
    b.acquire("T1", "this")
        .read("T1", "elems")
        .write("T1", "elems"); // add
    b.release("T1", "this").end("T1");
    let trace = b.finish();
    assert!(!oracle::is_serializable(&trace));

    let (warnings, engine) = check_all(&trace);
    assert_eq!(warnings.len(), 1);
    assert!(
        warnings[0].message.contains("Set.add is not atomic"),
        "{}",
        warnings[0].message
    );
    let dot = warnings[0].details.as_ref().unwrap();
    assert!(dot.contains("digraph"));
    assert!(
        dot.contains("style=dashed"),
        "closing edge is dashed: {dot}"
    );
    assert!(
        dot.contains("peripheries=2"),
        "blamed box is outlined: {dot}"
    );
    assert!(engine.reports()[0].increasing);
}

/// Section 2's interleaved read-modify-write.
#[test]
fn interleaved_rmw_is_reported_and_blamed() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "inc").read("T1", "x");
    b.write("T2", "x");
    b.write("T1", "x").end("T1");
    let trace = b.finish();

    let (warnings, engine) = check_all(&trace);
    assert_eq!(warnings.len(), 1);
    let report = &engine.reports()[0];
    assert!(report.increasing);
    assert_eq!(report.blamed, Some(0));
    assert_eq!(trace.names().label(report.refuted[0]), "inc");
}

/// Section 2's volatile-flag handoff: serializable, so Velodrome must stay
/// silent (the Atomizer false-alarms here).
#[test]
fn flag_handoff_produces_no_warnings() {
    let mut b = TraceBuilder::new();
    // Initially thread 1 owns x (b == 1). Two full handoff rounds, with
    // thread 2 spinning on the flag while thread 1 is in its critical block.
    for _round in 0..2 {
        b.read("T1", "b"); // sees 1: proceed
        b.begin("T1", "crit1").read("T1", "x").write("T1", "x");
        b.read("T2", "b"); // spinning: still 1
        b.write("T1", "b"); // b = 2 inside the block, as in the paper
        b.end("T1");
        b.read("T2", "b"); // sees 2: proceed
        b.begin("T2", "crit2").read("T2", "x").write("T2", "x");
        b.read("T1", "b"); // spinning: still 2
        b.write("T2", "b"); // b = 1
        b.end("T2");
    }
    let trace = b.finish();
    assert!(
        oracle::is_serializable(&trace),
        "handoff trace is serializable"
    );

    let (warnings, _) = check_all(&trace);
    assert!(
        warnings.is_empty(),
        "complete analysis must not false-alarm: {warnings:?}"
    );
}

/// Section 4.3's nested-block example: the cycle refutes blocks `p` and `q`
/// but not the innermost `r`, which is serial in the trace.
#[test]
fn nested_blocks_refute_p_and_q_but_not_r() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "p").begin("T1", "q").read("T1", "x");
    b.write("T2", "x");
    b.begin("T1", "r")
        .write("T1", "x")
        .end("T1")
        .end("T1")
        .end("T1");
    let trace = b.finish();

    let (warnings, engine) = check_all(&trace);
    assert_eq!(warnings.len(), 1);
    let report = &engine.reports()[0];
    assert!(report.increasing);
    let names = trace.names();
    let refuted: Vec<String> = report.refuted.iter().map(|&l| names.label(l)).collect();
    assert_eq!(refuted, vec!["p", "q"], "r must not be refuted");
    // The warning is attributed to the outermost refuted block.
    assert_eq!(names.label(warnings[0].label.unwrap()), "p");
}

/// Section 4.3's two self-serializable transactions whose combination is
/// not serializable: the cycle is not increasing, so no single transaction
/// is blamed — but the violation is still reported.
#[test]
fn self_serializable_pair_reported_without_blame() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "D").write("T1", "x");
    b.begin("T2", "E").write("T2", "y");
    b.read("T1", "y").end("T1");
    b.read("T2", "x").end("T2");
    let trace = b.finish();
    assert!(!oracle::is_serializable(&trace));

    let (warnings, engine) = check_all(&trace);
    assert_eq!(warnings.len(), 1, "violation must still be reported");
    let report = &engine.reports()[0];
    assert!(!report.increasing, "cycle is not increasing");
    assert_eq!(report.blamed, None, "no single transaction can be blamed");
    assert!(warnings[0].message.contains("no single transaction blamed"));
}

/// Lock-protected increments are serializable: no warnings.
#[test]
fn lock_protected_counter_is_atomic() {
    let mut b = TraceBuilder::new();
    for round in 0..50 {
        let t = if round % 2 == 0 { "T1" } else { "T2" };
        b.begin(t, "inc")
            .acquire(t, "m")
            .read(t, "x")
            .write(t, "x")
            .release(t, "m")
            .end(t);
    }
    let (warnings, engine) = check_all(&b.finish());
    assert!(warnings.is_empty());
    engine.check_invariants();
}

/// Garbage collection keeps only a handful of nodes alive even over long
/// traces (Section 4.1 / Table 1).
#[test]
fn gc_keeps_alive_count_tiny() {
    let mut b = TraceBuilder::new();
    for i in 0..2_000 {
        let t = if i % 2 == 0 { "T1" } else { "T2" };
        b.begin(t, "work")
            .acquire(t, "m")
            .read(t, "x")
            .write(t, "x")
            .release(t, "m")
            .end(t);
    }
    let (warnings, engine) = check_all(&b.finish());
    assert!(warnings.is_empty());
    let stats = engine.stats();
    assert!(
        stats.max_alive <= 8,
        "max alive {} should be tiny",
        stats.max_alive
    );
    assert_eq!(
        engine.alive_nodes(),
        0,
        "everything collected at quiescence"
    );
}

/// The merge optimization eliminates node allocation for unary operations
/// (Section 4.2 / Table 1 "Without Merge" vs "With Merge").
#[test]
fn merge_eliminates_unary_allocations() {
    let mut b = TraceBuilder::new();
    // Mostly non-transactional traffic on thread-disjoint variables.
    for i in 0..1_000 {
        let t = if i % 2 == 0 { "T1" } else { "T2" };
        let x = if i % 2 == 0 { "u" } else { "v" };
        b.read(t, x);
        b.write(t, x);
    }
    let trace = b.finish();

    let merged = VelodromeConfig {
        merge: true,
        ..VelodromeConfig::default()
    };
    let unmerged = VelodromeConfig {
        merge: false,
        ..VelodromeConfig::default()
    };
    let (w1, e1) = check_trace_with(&trace, merged);
    let (w2, e2) = check_trace_with(&trace, unmerged);
    assert!(w1.is_empty() && w2.is_empty());
    let with_merge = e1.stats().nodes_allocated;
    let without = e2.stats().nodes_allocated;
    assert_eq!(without, 2_000, "naive rule allocates per operation");
    assert!(
        with_merge <= without / 100,
        "merge should eliminate allocations: {with_merge} vs {without}"
    );
    assert!(
        e2.stats().max_alive <= 4,
        "GC keeps the naive variant small too"
    );
}

/// Merge and no-merge configurations agree on every verdict.
#[test]
fn merge_and_basic_agree_on_violations() {
    let traces: Vec<Trace> = vec![
        {
            let mut b = TraceBuilder::new();
            b.begin("T1", "inc").read("T1", "x");
            b.write("T2", "x");
            b.write("T1", "x").end("T1");
            b.finish()
        },
        {
            let mut b = TraceBuilder::new();
            b.read("T1", "x").write("T2", "x").read("T1", "x");
            b.finish()
        },
        {
            let mut b = TraceBuilder::new();
            b.begin("T1", "a").write("T1", "x").end("T1");
            b.begin("T2", "b")
                .read("T2", "x")
                .write("T2", "y")
                .end("T2");
            b.read("T1", "y");
            b.finish()
        },
    ];
    for trace in &traces {
        let (w1, _) = check_trace_with(
            trace,
            VelodromeConfig {
                merge: true,
                ..Default::default()
            },
        );
        let (w2, _) = check_trace_with(
            trace,
            VelodromeConfig {
                merge: false,
                ..Default::default()
            },
        );
        assert_eq!(
            w1.is_empty(),
            w2.is_empty(),
            "merge/no-merge disagree on:\n{trace}"
        );
        assert_eq!(
            w1.is_empty(),
            oracle::is_serializable(trace),
            "vs oracle on:\n{trace}"
        );
    }
}

/// A violation through a unary (non-transactional) write is caught: the
/// conflicting writer never enters an atomic block.
#[test]
fn unary_writer_breaks_transaction() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "update").read("T1", "x");
    b.write("T2", "x"); // plain unprotected write, outside any block
    b.write("T1", "x").end("T1");
    let (warnings, _) = check_all(&b.finish());
    assert_eq!(warnings.len(), 1);
}

/// Per-label deduplication reports each non-atomic method once, however
/// often it misbehaves.
#[test]
fn dedup_reports_each_method_once() {
    let mut b = TraceBuilder::new();
    for _ in 0..10 {
        b.begin("T1", "inc").read("T1", "x");
        b.write("T2", "x");
        b.write("T1", "x").end("T1");
    }
    let trace = b.finish();
    let (warnings, engine) = check_all(&trace);
    assert_eq!(warnings.len(), 1, "one warning for `inc`");
    assert!(
        engine.stats().cycles_detected >= 10,
        "but every cycle is detected"
    );

    let cfg = VelodromeConfig {
        dedup_per_label: false,
        ..VelodromeConfig::default()
    };
    let (all, _) = check_trace_with(&trace, cfg);
    assert_eq!(all.len(), 10, "without dedup every occurrence is reported");
}

/// The analysis continues soundly after a violation: later, independent
/// violations are still found.
#[test]
fn analysis_continues_after_first_violation() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "first").read("T1", "x");
    b.write("T2", "x");
    b.write("T1", "x").end("T1");
    // Unrelated second violation on different variables and labels.
    b.begin("T2", "second").read("T2", "y");
    b.write("T1", "y");
    b.write("T2", "y").end("T2");
    let (warnings, _) = check_all(&b.finish());
    assert_eq!(warnings.len(), 2);
    let labels: Vec<_> = warnings.iter().map(|w| w.label.unwrap().index()).collect();
    assert_ne!(labels[0], labels[1]);
}

/// Fork/join edges order transactions: a parent-child pipeline is
/// serializable, and Velodrome does not false-alarm on fork-join idioms
/// (which defeat the Atomizer, per Section 6).
#[test]
fn fork_join_synchronization_is_understood() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "prepare").write("T1", "x").end("T1");
    b.fork("T1", "T2");
    b.begin("T2", "consume")
        .read("T2", "x")
        .write("T2", "y")
        .end("T2");
    b.join("T1", "T2");
    b.begin("T1", "collect")
        .read("T1", "y")
        .write("T1", "x")
        .end("T1");
    let trace = b.finish();
    assert!(oracle::is_serializable(&trace));
    let (warnings, _) = check_all(&trace);
    assert!(warnings.is_empty(), "{warnings:?}");
}

/// Without the fork edge the same interleaving *is* a violation — the
/// ordering really comes from fork/join, not luck.
#[test]
fn missing_fork_edge_would_be_a_violation() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "outer").write("T1", "x");
    b.begin("T2", "consume")
        .read("T2", "x")
        .write("T2", "y")
        .end("T2");
    b.read("T1", "y").end("T1");
    let (warnings, _) = check_all(&b.finish());
    assert_eq!(warnings.len(), 1);
}

/// An open (unclosed) transaction at the end of the trace still has its
/// violations detected before the trace ends.
#[test]
fn unclosed_transaction_violation_detected() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "open").read("T1", "x");
    b.write("T2", "x");
    b.write("T1", "x"); // no end: trace stops here
    let (warnings, _) = check_all(&b.finish());
    assert_eq!(warnings.len(), 1);
}

/// Re-running the default entry point works on a trace without names.
#[test]
fn check_trace_smoke() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "inc").read("T1", "x");
    b.write("T2", "x");
    b.write("T1", "x").end("T1");
    assert_eq!(check_trace(&b.finish()).len(), 1);
}

/// Long-running interleaved workload with locks, unary traffic, and nested
/// blocks keeps all internal invariants.
#[test]
fn stress_invariants_hold() {
    let mut b = TraceBuilder::new();
    for i in 0..500 {
        match i % 5 {
            0 => {
                b.begin("T1", "m1").acquire("T1", "l").read("T1", "s");
                b.write("T1", "s").release("T1", "l").end("T1");
            }
            1 => {
                b.begin("T2", "m2").acquire("T2", "l").read("T2", "s");
                b.write("T2", "s").release("T2", "l").end("T2");
            }
            2 => {
                b.read("T3", "s");
            }
            3 => {
                b.begin("T3", "m3").begin("T3", "m4").read("T3", "t");
                b.write("T3", "t").end("T3").end("T3");
            }
            _ => {
                b.write("T1", "private1");
                b.write("T2", "private2");
            }
        }
    }
    let trace = b.finish();
    let cfg = VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    };
    let mut engine = Velodrome::with_config(cfg);
    for (i, op) in trace.iter() {
        engine.op(i, op);
        if i % 100 == 0 {
            engine.check_invariants();
        }
    }
    engine.check_invariants();
    let warnings = run_tool(&mut engine, &Trace::new());
    assert!(warnings.is_empty(), "{warnings:?}");
}
