//! Corner cases of configuration and labeling: `Only` specs, recursive
//! (re-entrant) atomic blocks, labels shared across threads, and warning
//! attribution.

use velodrome::{check_trace_with, Velodrome, VelodromeConfig};
use velodrome_events::{Label, TraceBuilder};
use velodrome_monitor::{run_tool, AtomicitySpec, SpecFilter};

/// Checking *only* one method silences violations of the others but still
/// reports the selected one.
#[test]
fn only_spec_selects_single_method() {
    let mut b = TraceBuilder::new();
    // Two independent violations on two methods.
    b.begin("T1", "first").read("T1", "x");
    b.write("T2", "x");
    b.write("T1", "x").end("T1");
    b.begin("T2", "second").read("T2", "y");
    b.write("T1", "y");
    b.write("T2", "y").end("T2");
    let trace = b.finish();

    let first = Label::new(0);
    let mut tool = SpecFilter::new(AtomicitySpec::only([first]), Velodrome::new());
    let warnings = run_tool(&mut tool, &trace);
    assert_eq!(warnings.len(), 1);
    assert_eq!(warnings[0].label, Some(first));
}

/// A recursive atomic method (same label nested in itself) stays one
/// transaction and is blamed once.
#[test]
fn recursive_atomic_blocks() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "recurse")
        .begin("T1", "recurse")
        .read("T1", "x");
    b.write("T2", "x");
    b.write("T1", "x").end("T1").end("T1");
    let trace = b.finish();
    let cfg = VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    };
    let (warnings, engine) = check_trace_with(&trace, cfg);
    assert_eq!(warnings.len(), 1);
    let report = &engine.reports()[0];
    // Both stack entries carry the same label and are refuted.
    assert_eq!(report.refuted.len(), 2);
    assert!(report.refuted.iter().all(|&l| l == Label::new(0)));
}

/// The same label executed by different threads is one *method*: the
/// per-label deduplication counts it once even when both threads violate.
#[test]
fn shared_labels_across_threads_dedup_as_one_method() {
    let mut b = TraceBuilder::new();
    for (t, o) in [("T1", "T2"), ("T2", "T1")] {
        b.begin(t, "Set.add").read(t, "elems");
        b.write(o, "elems");
        b.write(t, "elems").end(t);
    }
    let trace = b.finish();
    let (warnings, engine) = check_trace_with(&trace, VelodromeConfig::default());
    assert_eq!(warnings.len(), 1, "one method, one warning");
    assert_eq!(
        engine.stats().cycles_detected,
        2,
        "both dynamic violations detected"
    );
}

/// Zero-length transactions (`begin` immediately followed by `end`) are
/// trivially serializable and never warned about, alone or nested.
#[test]
fn empty_transactions_are_harmless() {
    let mut b = TraceBuilder::new();
    for _ in 0..100 {
        b.begin("T1", "noop").end("T1");
        b.begin("T2", "noop")
            .begin("T2", "inner")
            .end("T2")
            .end("T2");
    }
    let trace = b.finish();
    let (warnings, engine) = check_trace_with(&trace, VelodromeConfig::default());
    assert!(warnings.is_empty());
    assert_eq!(engine.alive_nodes(), 0);
}

/// Attribution without blame: a non-increasing cycle still names the
/// current transaction's outermost label so Table 2 can count the method.
#[test]
fn unblamed_warnings_still_carry_a_label() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "D").write("T1", "x");
    b.begin("T2", "E").write("T2", "y");
    b.read("T1", "y").end("T1");
    b.read("T2", "x").end("T2");
    let trace = b.finish();
    let (warnings, engine) = check_trace_with(&trace, VelodromeConfig::default());
    assert_eq!(warnings.len(), 1);
    assert!(engine.reports()[0].blamed.is_none());
    assert!(
        warnings[0].label.is_some(),
        "attribution survives missing blame"
    );
}
