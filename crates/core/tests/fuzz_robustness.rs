//! Robustness fuzzing: the engine must never panic and must keep its
//! internal invariants on *arbitrary* operation sequences — including
//! ill-formed ones (stray ends, unmatched acquires, re-entrant locking,
//! forks of running threads) that a buggy front end might deliver.

use proptest::prelude::*;
use velodrome::{Velodrome, VelodromeConfig};
use velodrome_events::{Label, LockId, Op, ThreadId, VarId};
use velodrome_monitor::Tool;

fn arb_op() -> impl Strategy<Value = Op> {
    let t = (0u32..5).prop_map(ThreadId::new);
    let x = (0u32..4).prop_map(VarId::new);
    let m = (0u32..3).prop_map(LockId::new);
    let l = (0u32..4).prop_map(Label::new);
    prop_oneof![
        (t.clone(), x.clone()).prop_map(|(t, x)| Op::Read { t, x }),
        (t.clone(), x).prop_map(|(t, x)| Op::Write { t, x }),
        (t.clone(), m.clone()).prop_map(|(t, m)| Op::Acquire { t, m }),
        (t.clone(), m).prop_map(|(t, m)| Op::Release { t, m }),
        (t.clone(), l).prop_map(|(t, l)| Op::Begin { t, l }),
        t.clone().prop_map(|t| Op::End { t }),
        (t.clone(), (0u32..5).prop_map(ThreadId::new)).prop_map(|(t, child)| Op::Fork { t, child }),
        (t, (0u32..5).prop_map(ThreadId::new)).prop_map(|(t, child)| Op::Join { t, child }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary op soup: no panics, invariants hold throughout, and the
    /// merge and no-merge engines agree on whether a cycle exists.
    #[test]
    fn engine_is_total_on_arbitrary_input(ops in prop::collection::vec(arb_op(), 0..120)) {
        let mut merged = Velodrome::with_config(VelodromeConfig {
            dedup_per_label: false,
            ..VelodromeConfig::default()
        });
        let mut basic = Velodrome::with_config(VelodromeConfig {
            merge: false,
            dedup_per_label: false,
            ..VelodromeConfig::default()
        });
        for (i, &op) in ops.iter().enumerate() {
            merged.op(i, op);
            basic.op(i, op);
        }
        merged.check_invariants();
        basic.check_invariants();
        prop_assert_eq!(
            merged.stats().cycles_detected > 0,
            basic.stats().cycles_detected > 0,
            "merge and basic disagree on arbitrary input"
        );
    }

    /// GC never changes what is detected, even on garbage input.
    #[test]
    fn gc_is_transparent_on_arbitrary_input(ops in prop::collection::vec(arb_op(), 0..80)) {
        let run = |gc: bool| {
            let mut engine = Velodrome::with_config(VelodromeConfig {
                gc,
                dedup_per_label: false,
                ..VelodromeConfig::default()
            });
            for (i, &op) in ops.iter().enumerate() {
                engine.op(i, op);
            }
            engine.check_invariants();
            engine.stats().cycles_detected
        };
        prop_assert_eq!(run(true), run(false));
    }
}
