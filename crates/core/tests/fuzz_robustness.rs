//! Robustness fuzzing: the engine must never panic and must keep its
//! internal invariants on *arbitrary* operation sequences — including
//! ill-formed ones (stray ends, unmatched acquires, re-entrant locking,
//! forks of running threads) that a buggy front end might deliver.

use proptest::prelude::*;
use velodrome::{Velodrome, VelodromeConfig};
use velodrome_events::{Label, LockId, Op, ThreadId, VarId};
use velodrome_monitor::{DegradationLevel, ResourceBudget, Tool, WarningCategory};

fn arb_op() -> impl Strategy<Value = Op> {
    let t = (0u32..5).prop_map(ThreadId::new);
    let x = (0u32..4).prop_map(VarId::new);
    let m = (0u32..3).prop_map(LockId::new);
    let l = (0u32..4).prop_map(Label::new);
    prop_oneof![
        (t.clone(), x.clone()).prop_map(|(t, x)| Op::Read { t, x }),
        (t.clone(), x).prop_map(|(t, x)| Op::Write { t, x }),
        (t.clone(), m.clone()).prop_map(|(t, m)| Op::Acquire { t, m }),
        (t.clone(), m).prop_map(|(t, m)| Op::Release { t, m }),
        (t.clone(), l).prop_map(|(t, l)| Op::Begin { t, l }),
        t.clone().prop_map(|t| Op::End { t }),
        (t.clone(), (0u32..5).prop_map(ThreadId::new)).prop_map(|(t, child)| Op::Fork { t, child }),
        (t, (0u32..5).prop_map(ThreadId::new)).prop_map(|(t, child)| Op::Join { t, child }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary op soup: no panics, invariants hold throughout, and the
    /// merge and no-merge engines agree on whether a cycle exists.
    #[test]
    fn engine_is_total_on_arbitrary_input(ops in prop::collection::vec(arb_op(), 0..120)) {
        let mut merged = Velodrome::with_config(VelodromeConfig {
            dedup_per_label: false,
            ..VelodromeConfig::default()
        });
        let mut basic = Velodrome::with_config(VelodromeConfig {
            merge: false,
            dedup_per_label: false,
            ..VelodromeConfig::default()
        });
        for (i, &op) in ops.iter().enumerate() {
            merged.op(i, op);
            basic.op(i, op);
        }
        merged.check_invariants();
        basic.check_invariants();
        prop_assert_eq!(
            merged.stats().cycles_detected > 0,
            basic.stats().cycles_detected > 0,
            "merge and basic disagree on arbitrary input"
        );
    }

    /// A budgeted engine is total on garbage input, keeps its invariants,
    /// and always lands in the ladder state its statistics declare.
    #[test]
    fn budgeted_engine_is_total_on_arbitrary_input(
        ops in prop::collection::vec(arb_op(), 0..120),
        max_alive in 0usize..6,
        max_vars in 0usize..4,
    ) {
        let mut engine = Velodrome::with_config(VelodromeConfig {
            dedup_per_label: false,
            budget: ResourceBudget {
                max_alive_nodes: max_alive,
                max_tracked_vars: max_vars,
                ..ResourceBudget::UNLIMITED
            },
            ..VelodromeConfig::default()
        });
        for (i, &op) in ops.iter().enumerate() {
            engine.op(i, op);
        }
        engine.check_invariants();
        let warnings = engine.take_warnings();
        let stats = engine.stats();
        // Ladder state and transition count agree, and every transition
        // produced exactly one (never-suppressed) Degraded warning.
        let degraded = warnings
            .iter()
            .filter(|w| w.category == WarningCategory::Degraded)
            .count() as u64;
        prop_assert_eq!(degraded, stats.degradations);
        prop_assert_eq!(stats.ladder != DegradationLevel::Full, stats.degradations > 0);
        if stats.vars_quarantined > 0 {
            prop_assert!(stats.ladder >= DegradationLevel::VarQuarantine);
        }
    }

    /// Warnings emitted before the first degradation are byte-identical to
    /// an unbudgeted run's.
    #[test]
    fn budget_preserves_pre_degradation_verdicts(
        ops in prop::collection::vec(arb_op(), 0..120),
        max_vars in 1usize..3,
    ) {
        let run = |budget: ResourceBudget| {
            let mut engine = Velodrome::with_config(VelodromeConfig {
                dedup_per_label: false,
                budget,
                ..VelodromeConfig::default()
            });
            for (i, &op) in ops.iter().enumerate() {
                engine.op(i, op);
            }
            engine.take_warnings()
        };
        let clean = run(ResourceBudget::UNLIMITED);
        let budgeted = run(ResourceBudget {
            max_tracked_vars: max_vars,
            ..ResourceBudget::UNLIMITED
        });
        let cut = budgeted
            .iter()
            .filter(|w| w.category == WarningCategory::Degraded)
            .map(|w| w.op_index)
            .min()
            .unwrap_or(usize::MAX);
        let verdicts = |ws: &[velodrome_monitor::Warning]| -> Vec<String> {
            ws.iter()
                .filter(|w| w.category != WarningCategory::Degraded && w.op_index < cut)
                .map(|w| format!("{w}|{}", w.details.as_deref().unwrap_or("")))
                .collect()
        };
        prop_assert_eq!(verdicts(&clean), verdicts(&budgeted));
    }

    /// GC never changes what is detected, even on garbage input.
    #[test]
    fn gc_is_transparent_on_arbitrary_input(ops in prop::collection::vec(arb_op(), 0..80)) {
        let run = |gc: bool| {
            let mut engine = Velodrome::with_config(VelodromeConfig {
                gc,
                dedup_per_label: false,
                ..VelodromeConfig::default()
            });
            for (i, &op) in ops.iter().enumerate() {
                engine.op(i, op);
            }
            engine.check_invariants();
            engine.stats().cycles_detected
        };
        prop_assert_eq!(run(true), run(false));
    }
}

/// When `max_warnings` trips, the overflow is counted, never silent.
#[test]
fn warning_budget_overflow_is_counted() {
    let t1 = ThreadId::new(0);
    let t2 = ThreadId::new(1);
    let x = VarId::new(0);
    let mut engine = Velodrome::with_config(VelodromeConfig {
        dedup_per_label: false,
        max_warnings: 1,
        ..VelodromeConfig::default()
    });
    // Two copies of the classic non-serializable pattern: a transaction
    // whose read and write of `x` straddle another thread's write.
    let mut i = 0;
    for round in 0..2u32 {
        let l = Label::new(round);
        for op in [
            Op::Begin { t: t1, l },
            Op::Read { t: t1, x },
            Op::Write { t: t2, x },
            Op::Write { t: t1, x },
            Op::End { t: t1 },
        ] {
            engine.op(i, op);
            i += 1;
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.cycles_detected, 2, "both cycles are detected");
    assert_eq!(
        engine.take_warnings().len(),
        1,
        "budget caps stored warnings"
    );
    assert_eq!(stats.warnings_suppressed, 1, "the overflow is counted");
    assert_eq!(engine.reports().len(), 2, "full reports are still retained");
    assert!(
        stats.to_string().contains("1 warnings suppressed (budget)"),
        "{stats}"
    );
}
