//! Regression tests for the arena's hard resource limits.
//!
//! Slot exhaustion and 48-bit timestamp overflow used to be `assert!`s that
//! brought the whole process down; they are now recoverable [`ArenaError`]s
//! that the engine maps onto the degradation ladder (recorder-only mode
//! plus a `Degraded` warning), counted in telemetry. Slot index `u16::MAX`
//! is reserved so a maximal slot/timestamp pair can never collide with the
//! `Step::NONE` encoding.

use proptest::prelude::*;
use velodrome::step::MAX_TS;
use velodrome::{Arena, ArenaError, NodeDesc, Velodrome, VelodromeConfig};
use velodrome_events::{Label, LockId, Op, ThreadId, VarId};
use velodrome_monitor::{DegradationLevel, Tool, Warning, WarningCategory};
use velodrome_telemetry::{names, Telemetry};

fn desc(i: usize) -> NodeDesc {
    NodeDesc {
        thread: ThreadId::new(i as u32),
        label: None,
        first_op: i,
    }
}

/// Every slot index below `u16::MAX` allocates; the reserved index does
/// not. With the old `<= 65536` bound the 65536th allocation handed out
/// slot `u16::MAX`, and `Step::new(u16::MAX, MAX_TS)` is the bit pattern of
/// `Step::NONE` — a panic waiting in `Step::new`.
#[test]
fn slot_u16_max_is_reserved() {
    let mut a = Arena::with_gc(false);
    let mut last = None;
    for i in 0..usize::from(u16::MAX) {
        let s = a.alloc(desc(i), true).expect("slot below reserved index");
        assert!(s.is_some(), "allocated step must not be ⊥");
        last = s.slot();
    }
    assert_eq!(last, Some(u16::MAX - 1), "indices stop one short of MAX");
    let err = a.alloc(desc(usize::from(u16::MAX)), true).unwrap_err();
    assert_eq!(err, ArenaError::Exhausted);
    // The message states the true capacity (the old text said "more than
    // 65536" while the bound admitted exactly 65536).
    assert!(err.to_string().contains("65535"), "{err}");
    assert_eq!(
        a.stats().allocated,
        u64::from(u16::MAX),
        "failed alloc not counted"
    );
}

/// `bump` refuses to push a slot's timestamp past 48 bits instead of
/// tripping the `Step::new` assert.
#[test]
fn ts_overflow_is_a_recoverable_error() {
    let mut a = Arena::new();
    let s = a.alloc(desc(0), true).unwrap();
    let slot = s.slot().unwrap();
    a.force_counter_for_test(slot, MAX_TS);
    assert_eq!(a.bump(slot).unwrap_err(), ArenaError::TsOverflow);
    // The slot is still intact: the error is reported, not a poisoned state.
    assert_eq!(a.bump(slot).unwrap_err(), ArenaError::TsOverflow);
    a.check_invariants();
}

/// A tiny trace with one genuine atomicity violation, used to check that
/// verdicts reached before a mid-trace degradation are unaffected by it.
fn rmw_violation_ops() -> Vec<Op> {
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    let x = VarId::new(0);
    vec![
        Op::Begin {
            t: t0,
            l: Label::new(0),
        },
        Op::Read { t: t0, x },
        Op::Write { t: t1, x },
        Op::Write { t: t0, x },
        Op::End { t: t0 },
    ]
}

/// Exhausting the arena (GC disabled, no configured budget) lands the
/// engine in recorder-only mode with a single `Degraded` warning; verdicts
/// reached before the degradation point are byte-identical to an
/// unconstrained run, and telemetry counts the event.
#[test]
fn slot_exhaustion_degrades_to_recorder_only() {
    let mut ops = rmw_violation_ops();
    // Flood: one empty transaction per fresh thread. With GC off every
    // Begin allocates a slot that is never reclaimed; distinct threads keep
    // the happens-before graph edge-free, so the run stays linear.
    for i in 2..80_000u32 {
        let t = ThreadId::new(i);
        ops.push(Op::Begin {
            t,
            l: Label::new(1),
        });
        ops.push(Op::End { t });
    }

    let telemetry = Telemetry::registry();
    let mut constrained = Velodrome::with_config(VelodromeConfig {
        gc: false,
        telemetry: telemetry.clone(),
        ..VelodromeConfig::default()
    });
    let mut unconstrained = Velodrome::with_config(VelodromeConfig::default());
    for (i, &op) in ops.iter().enumerate() {
        constrained.op(i, op);
        unconstrained.op(i, op);
    }
    constrained.end_of_trace();
    unconstrained.end_of_trace();
    // No `check_invariants` here: its exactness check is quadratic in live
    // nodes, and this arena deliberately holds all 65,535 of them.

    let stats = constrained.stats();
    assert_eq!(stats.ladder, DegradationLevel::RecorderOnly);
    assert_eq!(stats.degradations, 1);
    assert_eq!(
        stats.ops as usize,
        ops.len(),
        "the recorder keeps counting after degradation"
    );

    let warnings = constrained.take_warnings();
    let degraded: Vec<&Warning> = warnings
        .iter()
        .filter(|w| w.category == WarningCategory::Degraded)
        .collect();
    assert_eq!(degraded.len(), 1, "exactly one degradation warning");
    assert!(
        degraded[0].message.contains("node arena exhausted"),
        "{}",
        degraded[0].message
    );
    let degrade_at = degraded[0].op_index;

    // Pre-degradation verdicts are byte-identical to the unconstrained run.
    let pre: Vec<Warning> = warnings
        .iter()
        .filter(|w| w.category != WarningCategory::Degraded && w.op_index < degrade_at)
        .cloned()
        .collect();
    assert!(
        !pre.is_empty(),
        "the seeded violation fires before exhaustion"
    );
    let reference: Vec<Warning> = unconstrained
        .take_warnings()
        .into_iter()
        .filter(|w| w.op_index < degrade_at)
        .collect();
    assert_eq!(
        serde_json::to_string(&pre).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "pre-degradation verdicts must not change"
    );

    constrained.publish_telemetry();
    let snap = telemetry.snapshot(0, ops.len() as u64).unwrap();
    assert_eq!(snap.scalar(names::ARENA_EXHAUSTED), Some(1));
    assert_eq!(snap.scalar(names::ARENA_TS_OVERFLOW), Some(0));
    assert_eq!(snap.scalar(names::ENGINE_DEGRADATIONS), Some(1));
    assert_eq!(
        snap.scalar(names::ENGINE_LADDER),
        Some(DegradationLevel::RecorderOnly.rung())
    );
}

/// A timestamp counter at its 48-bit ceiling degrades the engine on the
/// next in-transaction operation instead of panicking.
#[test]
fn ts_overflow_degrades_to_recorder_only() {
    let telemetry = Telemetry::registry();
    let mut engine = Velodrome::with_config(VelodromeConfig {
        telemetry: telemetry.clone(),
        ..VelodromeConfig::default()
    });
    let t = ThreadId::new(0);
    let x = VarId::new(0);
    engine.op(
        0,
        Op::Begin {
            t,
            l: Label::new(0),
        },
    );
    // The first transaction lives in slot 0; push its counter to the edge.
    engine.force_arena_counter_for_test(0, MAX_TS);
    engine.op(1, Op::Write { t, x });
    engine.op(2, Op::End { t });
    engine.end_of_trace();
    engine.check_invariants();

    let stats = engine.stats();
    assert_eq!(stats.ladder, DegradationLevel::RecorderOnly);
    let warnings = engine.take_warnings();
    assert!(
        warnings
            .iter()
            .any(|w| w.category == WarningCategory::Degraded
                && w.message.contains("timestamp counter overflowed")),
        "{warnings:?}"
    );

    engine.publish_telemetry();
    let snap = telemetry.snapshot(0, 3).unwrap();
    assert_eq!(snap.scalar(names::ARENA_TS_OVERFLOW), Some(1));
    assert_eq!(snap.scalar(names::ARENA_EXHAUSTED), Some(0));
}

fn arb_op() -> impl Strategy<Value = Op> {
    let t = (0u32..5).prop_map(ThreadId::new);
    let x = (0u32..4).prop_map(VarId::new);
    let m = (0u32..3).prop_map(LockId::new);
    let l = (0u32..4).prop_map(Label::new);
    prop_oneof![
        (t.clone(), x.clone()).prop_map(|(t, x)| Op::Read { t, x }),
        (t.clone(), x).prop_map(|(t, x)| Op::Write { t, x }),
        (t.clone(), m.clone()).prop_map(|(t, m)| Op::Acquire { t, m }),
        (t.clone(), m).prop_map(|(t, m)| Op::Release { t, m }),
        (t.clone(), l).prop_map(|(t, l)| Op::Begin { t, l }),
        t.clone().prop_map(|t| Op::End { t }),
        (t.clone(), (0u32..5).prop_map(ThreadId::new)).prop_map(|(t, child)| Op::Fork { t, child }),
        (t, (0u32..5).prop_map(ThreadId::new)).prop_map(|(t, child)| Op::Join { t, child }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After an arbitrary (possibly ill-formed) trace, a registry snapshot
    /// agrees with the engine's recomputed statistics surface on every
    /// mirrored gauge.
    #[test]
    fn snapshot_agrees_with_stats(ops in prop::collection::vec(arb_op(), 0..120)) {
        let telemetry = Telemetry::registry();
        let mut engine = Velodrome::with_config(VelodromeConfig {
            dedup_per_label: false,
            telemetry: telemetry.clone(),
            ..VelodromeConfig::default()
        });
        for (i, &op) in ops.iter().enumerate() {
            engine.op(i, op);
        }
        engine.publish_telemetry();
        let snap = telemetry.snapshot(0, ops.len() as u64).unwrap();
        let stats = engine.stats();
        prop_assert_eq!(snap.scalar(names::ENGINE_OPS), Some(stats.ops));
        prop_assert_eq!(snap.scalar(names::ARENA_ALLOCATED), Some(stats.nodes_allocated));
        prop_assert_eq!(snap.scalar(names::ARENA_MAX_ALIVE), Some(stats.max_alive));
        prop_assert_eq!(snap.scalar(names::ARENA_COLLECTED), Some(stats.collected));
        prop_assert_eq!(snap.scalar(names::ARENA_EDGES_ADDED), Some(stats.edges_added));
        prop_assert_eq!(snap.scalar(names::ARENA_EDGES_ELIDED), Some(stats.edges_elided));
        prop_assert_eq!(snap.scalar(names::ENGINE_EPOCH_HITS), Some(stats.epoch_hits));
        prop_assert_eq!(snap.scalar(names::ENGINE_MERGES_REUSED), Some(stats.merges_reused));
        prop_assert_eq!(snap.scalar(names::ENGINE_MERGES_BOTTOM), Some(stats.merges_bottom));
        prop_assert_eq!(snap.scalar(names::ENGINE_CYCLES_DETECTED), Some(stats.cycles_detected));
        prop_assert_eq!(snap.scalar(names::ENGINE_VARS_QUARANTINED), Some(stats.vars_quarantined));
        prop_assert_eq!(snap.scalar(names::ENGINE_LADDER), Some(stats.ladder.rung()));
    }

    /// The `engine.ladder` gauge is monotone over any trace: the engine
    /// only ever steps *down* the ladder, and the live gauge (updated at
    /// each transition, not just at publish time) reflects that.
    #[test]
    fn ladder_gauge_is_monotone(
        ops in prop::collection::vec(arb_op(), 0..120),
        max_alive in 0usize..6,
        max_vars in 0usize..4,
    ) {
        let telemetry = Telemetry::registry();
        let mut engine = Velodrome::with_config(VelodromeConfig {
            dedup_per_label: false,
            telemetry: telemetry.clone(),
            budget: velodrome_monitor::ResourceBudget {
                max_alive_nodes: max_alive,
                max_tracked_vars: max_vars,
                ..velodrome_monitor::ResourceBudget::UNLIMITED
            },
            ..VelodromeConfig::default()
        });
        let mut prev = 0u64;
        for (i, &op) in ops.iter().enumerate() {
            engine.op(i, op);
            let snap = telemetry.snapshot(i as u64, i as u64 + 1).unwrap();
            let rung = snap.scalar(names::ENGINE_LADDER).unwrap_or(0);
            prop_assert!(rung >= prev, "ladder went back up: {} -> {} at op {}", prev, rung, i);
            prop_assert!(rung <= DegradationLevel::RecorderOnly.rung());
            prev = rung;
        }
        prop_assert_eq!(prev, engine.stats().ladder.rung());
    }
}
