//! A third, independent implementation of the analysis: a *literal
//! transcription* of the paper's Figure 2 instrumentation relation, with
//! explicit node numbers, the un-optimized `[INS OUTSIDE]` rule, no
//! garbage collection, no merging, and cycle detection by brute-force
//! reachability over the full happens-before relation `H`.
//!
//! Differentially testing the production engine against this transcription
//! validates the *rules* themselves (not just the conflict-graph
//! characterization the offline oracle implements).

use std::collections::{HashMap, HashSet};
use velodrome::{Velodrome, VelodromeConfig};
use velodrome_events::{oracle, LockId, Op, ThreadId, Trace, VarId};
use velodrome_monitor::Tool;
use velodrome_sim::{random_program, run_program, GenConfig, RandomScheduler, RoundRobin};

type Node = usize;

/// Figure 2, written down as plainly as possible.
#[derive(Default)]
struct Figure2 {
    /// `C(t)`: current transaction node, with the nesting depth extension.
    c: HashMap<ThreadId, (Node, usize)>,
    /// `L(t)`: node of the thread's last operation.
    l: HashMap<ThreadId, Node>,
    /// `U(m)`: node of the last release of each lock.
    u: HashMap<LockId, Node>,
    /// `R(x, t)`: node of the last read of `x` by `t`.
    r: HashMap<(VarId, ThreadId), Node>,
    /// `W(x)`: node of the last write to `x`.
    w: HashMap<VarId, Node>,
    /// The happens-before relation (not transitively closed).
    h: HashSet<(Node, Node)>,
    /// Pending fork edge for threads that have not yet run.
    pending_fork: HashMap<ThreadId, Node>,
    next_node: Node,
    error: bool,
}

impl Figure2 {
    fn fresh(&mut self) -> Node {
        self.next_node += 1;
        self.next_node
    }

    /// `H ⊎ E`: add edges, filtering self-edges and ⊥ endpoints (`⊥` is
    /// represented by absence from the maps, so only present values arrive
    /// here).
    fn add_edge(&mut self, n1: Option<Node>, n2: Node) {
        if let Some(n1) = n1 {
            if n1 != n2 {
                self.h.insert((n1, n2));
            }
        }
    }

    /// Does `H*` contain a non-trivial cycle?
    fn has_cycle(&self) -> bool {
        // Brute force: for every edge (a, b), is a reachable from b?
        let mut succs: HashMap<Node, Vec<Node>> = HashMap::new();
        for &(a, b) in &self.h {
            succs.entry(a).or_default().push(b);
        }
        let reaches = |from: Node, to: Node| -> bool {
            let mut seen = HashSet::new();
            let mut stack = vec![from];
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if seen.insert(n) {
                    if let Some(next) = succs.get(&n) {
                        stack.extend(next.iter().copied());
                    }
                }
            }
            false
        };
        self.h.iter().any(|&(a, b)| reaches(b, a))
    }

    /// The node performing the next operation of `t`, entering a fresh
    /// unary transaction if outside any block ([INS OUTSIDE]).
    fn step(&mut self, t: ThreadId, op: Op) {
        // Deliver a pending fork edge on the thread's first operation.
        let fork_pred = self.pending_fork.remove(&t);
        match op {
            Op::Begin { .. } => {
                if let Some((node, depth)) = self.c.get_mut(&t) {
                    let _ = node;
                    *depth += 1; // nested: same transaction
                    return;
                }
                let n = self.fresh(); // [INS ENTER]
                self.add_edge(self.l.get(&t).copied(), n);
                self.add_edge(fork_pred, n);
                self.c.insert(t, (n, 1));
            }
            Op::End { .. } => {
                let Some((node, depth)) = self.c.get_mut(&t) else {
                    return; // stray end: tolerated
                };
                let node = *node;
                *depth -= 1;
                if self.c[&t].1 == 0 {
                    self.c.remove(&t); // [INS EXIT]
                    self.l.insert(t, node);
                }
            }
            _ => {
                // Current node: inside rules use C(t); outside, open a
                // fresh unary transaction, perform, and close it.
                let (n, unary) = match self.c.get(&t) {
                    Some((n, _)) => (*n, false),
                    None => {
                        let n = self.fresh();
                        self.add_edge(self.l.get(&t).copied(), n);
                        (n, true)
                    }
                };
                self.add_edge(fork_pred, n);
                match op {
                    Op::Acquire { m, .. } => {
                        self.add_edge(self.u.get(&m).copied(), n); // [INS ACQUIRE]
                    }
                    Op::Release { m, .. } => {
                        self.u.insert(m, n); // [INS RELEASE]
                    }
                    Op::Read { x, .. } => {
                        self.r.insert((x, t), n); // [INS READ]
                        self.add_edge(self.w.get(&x).copied(), n);
                    }
                    Op::Write { x, .. } => {
                        // [INS WRITE]: edges from every R(x, t') and W(x).
                        let readers: Vec<Node> = self
                            .r
                            .iter()
                            .filter(|((rx, _), _)| *rx == x)
                            .map(|(_, &node)| node)
                            .collect();
                        for reader in readers {
                            self.add_edge(Some(reader), n);
                        }
                        self.add_edge(self.w.get(&x).copied(), n);
                        self.w.insert(x, n);
                    }
                    Op::Fork { child, .. } => {
                        self.pending_fork.insert(child, n);
                    }
                    Op::Join { child, .. } => {
                        self.add_edge(self.l.get(&child).copied(), n);
                        let pending = self.pending_fork.remove(&child);
                        self.add_edge(pending, n);
                    }
                    Op::Begin { .. } | Op::End { .. } => unreachable!(),
                }
                if unary {
                    self.l.insert(t, n);
                }
            }
        }
    }

    fn run(trace: &Trace) -> bool {
        let mut f = Figure2::default();
        for (_, op) in trace.iter() {
            f.step(op.tid(), op);
        }
        f.error = f.has_cycle();
        f.error
    }
}

fn engine_verdict(trace: &Trace) -> bool {
    let mut engine = Velodrome::with_config(VelodromeConfig::default());
    for (i, op) in trace.iter() {
        engine.op(i, op);
    }
    engine.stats().cycles_detected > 0
}

#[test]
fn figure2_transcription_matches_engine_and_oracle() {
    let cfg = GenConfig::default();
    let mut nonserializable = 0;
    for seed in 0..150u64 {
        let program = random_program(&cfg, seed);
        let result = run_program(&program, RandomScheduler::new(seed ^ 0x777));
        if result.deadlocked {
            continue;
        }
        let trace = result.trace;
        let fig2 = Figure2::run(&trace);
        let engine = engine_verdict(&trace);
        let ora = !oracle::is_serializable(&trace);
        assert_eq!(fig2, ora, "Figure 2 vs oracle on seed {seed}:\n{trace}");
        assert_eq!(engine, ora, "engine vs oracle on seed {seed}");
        if ora {
            nonserializable += 1;
        }
    }
    assert!(
        nonserializable >= 10,
        "want both verdict classes, saw {nonserializable}"
    );
}

#[test]
fn figure2_matches_on_paper_examples() {
    use velodrome_events::TraceBuilder;
    let cases: Vec<(Trace, bool)> = vec![
        (
            {
                let mut b = TraceBuilder::new();
                b.begin("T1", "inc").read("T1", "x");
                b.write("T2", "x");
                b.write("T1", "x").end("T1");
                b.finish()
            },
            true,
        ),
        (
            {
                let mut b = TraceBuilder::new();
                b.begin("T1", "A").acquire("T1", "m").release("T1", "m");
                b.begin("T2", "B")
                    .acquire("T2", "m")
                    .write("T2", "y")
                    .end("T2");
                b.begin("T3", "C")
                    .read("T3", "y")
                    .write("T3", "x")
                    .end("T3");
                b.read("T1", "x").end("T1");
                b.finish()
            },
            true,
        ),
        (
            {
                let mut b = TraceBuilder::new();
                for i in 0..10 {
                    let t = if i % 2 == 0 { "T1" } else { "T2" };
                    b.begin(t, "ok").acquire(t, "m").read(t, "x").write(t, "x");
                    b.release(t, "m").end(t);
                }
                b.finish()
            },
            false,
        ),
    ];
    for (trace, expected) in cases {
        assert_eq!(Figure2::run(&trace), expected, "{trace}");
        assert_eq!(engine_verdict(&trace), expected);
    }
}

#[test]
fn figure2_matches_under_round_robin_workload_shapes() {
    let cfg = GenConfig {
        threads: 2,
        vars: 2,
        locks: 1,
        ..GenConfig::default()
    };
    for seed in 0..80u64 {
        let program = random_program(&cfg, seed);
        let result = run_program(&program, RoundRobin::new());
        if result.deadlocked {
            continue;
        }
        let fig2 = Figure2::run(&result.trace);
        let ora = !oracle::is_serializable(&result.trace);
        assert_eq!(fig2, ora, "seed {seed}:\n{}", result.trace);
    }
}
