//! Robustness tests for the engine's data-representation machinery:
//! slot recycling, GC ablation, warning caps, deep nesting, many threads,
//! and long-running stability.

use velodrome::{check_trace_with, Velodrome, VelodromeConfig};
use velodrome_events::{oracle, Trace, TraceBuilder};
use velodrome_monitor::{run_tool, Tool};

/// Millions of transactions force heavy slot recycling: stale steps from
/// prior incarnations must never be misinterpreted.
#[test]
fn slot_recycling_under_sustained_load() {
    let mut b = TraceBuilder::new();
    for i in 0..20_000u32 {
        let t = format!("T{}", i % 3);
        // Rotating variables so predecessors constantly go stale.
        let x = format!("v{}", i % 7);
        b.begin(&t, "work")
            .acquire(&t, "m")
            .read(&t, &x)
            .write(&t, &x);
        b.release(&t, "m").end(&t);
    }
    let trace = b.finish();
    let (warnings, engine) = check_trace_with(&trace, VelodromeConfig::default());
    assert!(warnings.is_empty(), "{warnings:?}");
    let stats = engine.stats();
    assert_eq!(stats.ops, trace.len() as u64);
    assert!(stats.max_alive <= 8, "max alive {}", stats.max_alive);
    assert!(stats.collected >= stats.nodes_allocated - 8);
    engine.check_invariants();
}

/// With GC disabled the verdicts are unchanged; only memory behavior
/// differs (the ablation configuration).
#[test]
fn gc_ablation_preserves_verdicts() {
    let cases: Vec<(Trace, bool)> = vec![
        (
            {
                let mut b = TraceBuilder::new();
                b.begin("T1", "inc").read("T1", "x");
                b.write("T2", "x");
                b.write("T1", "x").end("T1");
                b.finish()
            },
            false,
        ),
        (
            {
                let mut b = TraceBuilder::new();
                for i in 0..200 {
                    let t = if i % 2 == 0 { "T1" } else { "T2" };
                    b.begin(t, "ok")
                        .acquire(t, "m")
                        .write(t, "x")
                        .release(t, "m")
                        .end(t);
                }
                b.finish()
            },
            true,
        ),
    ];
    for (trace, serializable) in cases {
        for gc in [true, false] {
            let cfg = VelodromeConfig {
                gc,
                ..VelodromeConfig::default()
            };
            let (warnings, engine) = check_trace_with(&trace, cfg);
            assert_eq!(warnings.is_empty(), serializable, "gc={gc}");
            if !gc {
                assert_eq!(engine.stats().collected, 0);
                assert_eq!(
                    engine.alive_nodes() as u64,
                    engine.stats().nodes_allocated,
                    "nothing freed without GC"
                );
            }
        }
    }
}

/// The warning cap bounds stored warnings but never detection.
#[test]
fn max_warnings_caps_storage_not_detection() {
    let mut b = TraceBuilder::new();
    for i in 0..20 {
        let label = format!("method_{i}");
        b.begin("T1", &label).read("T1", "x");
        b.write("T2", "x");
        b.write("T1", "x").end("T1");
    }
    let trace = b.finish();
    let cfg = VelodromeConfig {
        max_warnings: 5,
        dedup_per_label: false,
        ..VelodromeConfig::default()
    };
    let (warnings, engine) = check_trace_with(&trace, cfg);
    assert_eq!(warnings.len(), 5, "storage capped");
    assert_eq!(engine.stats().cycles_detected, 20, "detection not capped");
    assert_eq!(engine.reports().len(), 20, "reports kept for inspection");
}

/// Deeply nested atomic blocks: blame refutes exactly the prefix of the
/// stack whose begins precede the cycle root.
#[test]
fn deep_nesting_refutation_prefix() {
    let depth = 12;
    let mut b = TraceBuilder::new();
    for i in 0..depth {
        b.begin("T1", &format!("level_{i}"));
    }
    b.read("T1", "x");
    b.write("T2", "x");
    // Open more blocks after the root read; they must not be refuted.
    for i in depth..depth + 3 {
        b.begin("T1", &format!("level_{i}"));
    }
    b.write("T1", "x");
    for _ in 0..depth + 3 {
        b.end("T1");
    }
    let trace = b.finish();
    let cfg = VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    };
    let (warnings, engine) = check_trace_with(&trace, cfg);
    assert_eq!(warnings.len(), 1);
    let report = &engine.reports()[0];
    let refuted: Vec<String> = report
        .refuted
        .iter()
        .map(|&l| trace.names().label(l))
        .collect();
    let expected: Vec<String> = (0..depth).map(|i| format!("level_{i}")).collect();
    assert_eq!(
        refuted, expected,
        "only blocks enclosing the root are refuted"
    );
}

/// Dozens of threads with mixed disciplines: verdict matches the oracle.
#[test]
fn many_threads_agree_with_oracle() {
    let mut b = TraceBuilder::new();
    for round in 0..4 {
        for t in 0..24 {
            let name = format!("T{t}");
            if t % 3 == 0 {
                b.begin(&name, "locked");
                b.acquire(&name, "global").read(&name, "shared");
                b.write(&name, "shared").release(&name, "global");
                b.end(&name);
            } else if t % 3 == 1 {
                b.read(&name, &format!("private_{t}_{round}"));
            } else {
                b.begin(&name, "reader").read(&name, "config").end(&name);
            }
        }
    }
    let trace = b.finish();
    let (warnings, engine) = check_trace_with(&trace, VelodromeConfig::default());
    assert_eq!(warnings.is_empty(), oracle::is_serializable(&trace));
    engine.check_invariants();
}

/// Stats rendering and engine Debug exist and are stable.
#[test]
fn stats_display_and_debug() {
    let mut engine = Velodrome::new();
    let mut b = TraceBuilder::new();
    b.begin("T1", "p").read("T1", "x").end("T1");
    for (i, op) in b.finish().iter() {
        engine.op(i, op);
    }
    let shown = engine.stats().to_string();
    assert!(shown.contains("3 ops"), "{shown}");
    assert!(shown.contains("nodes allocated"), "{shown}");
    let debugged = format!("{engine:?}");
    assert!(debugged.contains("Velodrome"), "{debugged}");
}

/// A trace consisting solely of unary operations allocates nothing with
/// merge, and everything collects immediately without it.
#[test]
fn pure_unary_trace_extremes() {
    let mut b = TraceBuilder::new();
    for i in 0..5_000u32 {
        let t = format!("T{}", i % 4);
        b.write(&t, &format!("own_{}", i % 4));
    }
    let trace = b.finish();
    let merged = check_trace_with(&trace, VelodromeConfig::default())
        .1
        .stats();
    assert_eq!(merged.nodes_allocated, 0, "fully-⊥ unary ops vanish");
    assert_eq!(merged.merges_bottom, 5_000);
    let basic = check_trace_with(
        &trace,
        VelodromeConfig {
            merge: false,
            ..VelodromeConfig::default()
        },
    )
    .1
    .stats();
    assert_eq!(basic.nodes_allocated, 5_000, "naive rule allocates per op");
    assert!(basic.max_alive <= 2);
}

/// End-of-trace with still-open transactions is clean: no panic, state
/// remains inspectable, warnings already flushed.
#[test]
fn open_transactions_at_end_of_trace() {
    let mut b = TraceBuilder::new();
    b.begin("T1", "open1").read("T1", "x");
    b.begin("T2", "open2").write("T2", "x");
    let trace = b.finish();
    let mut engine = Velodrome::new();
    let warnings = run_tool(&mut engine, &trace);
    assert!(warnings.is_empty());
    assert_eq!(engine.alive_nodes(), 2, "both transactions still current");
    engine.check_invariants();
}

/// Re-running the same engine over a second trace continues correctly
/// (tools are long-lived in online monitoring).
#[test]
fn engine_survives_multiple_trace_segments() {
    let mut engine = Velodrome::new();
    let mut offset = 0;
    for _ in 0..3 {
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc").read("T1", "x");
        b.write("T2", "x");
        b.write("T1", "x").end("T1");
        let trace = b.finish();
        for (i, op) in trace.iter() {
            engine.op(offset + i, op);
        }
        offset += trace.len();
    }
    assert_eq!(engine.stats().cycles_detected, 3);
    let warnings = engine.take_warnings();
    assert_eq!(warnings.len(), 1, "per-label dedup across segments");
}
