//! Regression tests for the happens-before hot path and reporting rules:
//!
//! * Section 4.3 increasing-cycle blame on cycles through three or more
//!   transactions (both the increasing and the non-increasing shape) —
//!   pinning down the window `(1..nodes.len())` that exempts the current
//!   transaction and pairs each intermediate node's incoming timestamp with
//!   its outgoing one (the final edge being the rejected closing edge);
//! * the `dedup_per_label` × `max_warnings` interaction: duplicates never
//!   consume budget, and budget-suppressed first reports do not mark their
//!   label as seen;
//! * redundant-edge elision and the epoch cache: optimized and baseline
//!   configurations produce byte-identical warnings and reports, while the
//!   optimized run elides transitively-implied edges.

use velodrome::{check_trace_with, Velodrome, VelodromeConfig};
use velodrome_events::{Trace, TraceBuilder};
use velodrome_monitor::tool::{Tool, Warning};

fn cfg_for(trace: &Trace) -> VelodromeConfig {
    VelodromeConfig {
        names: trace.names().clone(),
        ..VelodromeConfig::default()
    }
}

/// A cycle A → B → C → A where every intermediate transaction's incoming
/// timestamp precedes its outgoing one: increasing, so transaction A is
/// blamed (Section 4.3).
#[test]
fn increasing_cycle_through_three_transactions_blames_root() {
    let mut b = TraceBuilder::new();
    b.begin("T0", "A").write("T0", "x");
    // B reads x (edge A → B), then writes y: in-ts < out-ts.
    b.begin("T1", "B")
        .read("T1", "x")
        .write("T1", "y")
        .end("T1");
    // C reads y (edge B → C), then writes z: in-ts < out-ts.
    b.begin("T2", "C")
        .read("T2", "y")
        .write("T2", "z")
        .end("T2");
    // A reads z: the closing edge C → A is rejected as a cycle.
    b.read("T0", "z").end("T0");
    let trace = b.finish();

    let (warnings, engine) = check_trace_with(&trace, cfg_for(&trace));
    assert_eq!(warnings.len(), 1);
    let report = &engine.reports()[0];
    assert_eq!(report.nodes.len(), 3, "cycle spans three transactions");
    assert_eq!(report.edges.len(), 3);
    assert!(
        report.increasing,
        "in-ts <= out-ts at both intermediate nodes"
    );
    assert_eq!(report.blamed, Some(0), "the current transaction is blamed");
    assert!(
        warnings[0].message.contains("A is not atomic"),
        "{}",
        warnings[0].message
    );
}

/// The same three-transaction cycle, but B performs its outgoing write
/// *before* its incoming read: non-increasing, so no transaction is blamed,
/// yet the violation is still reported (soundness) with the outermost label
/// as attribution.
#[test]
fn non_increasing_cycle_through_three_transactions_is_unblamed() {
    let mut b = TraceBuilder::new();
    // B writes y first (its eventual outgoing timestamp)...
    b.begin("T1", "B").write("T1", "y");
    // ...C picks up y (edge B → C with B's early out-ts)...
    b.begin("T2", "C").read("T2", "y");
    b.begin("T0", "A").write("T0", "x");
    // ...then B reads x (edge A → B with a *later* in-ts than B's write).
    b.read("T1", "x").end("T1");
    b.write("T2", "z").end("T2");
    // Closing edge C → A completes the cycle.
    b.read("T0", "z").end("T0");
    let trace = b.finish();

    let (warnings, engine) = check_trace_with(&trace, cfg_for(&trace));
    assert_eq!(
        warnings.len(),
        1,
        "non-increasing cycles are still violations"
    );
    let report = &engine.reports()[0];
    assert_eq!(report.nodes.len(), 3);
    assert!(!report.increasing, "B's in-ts exceeds its out-ts");
    assert_eq!(report.blamed, None);
    assert!(report.refuted.is_empty());
    assert_eq!(
        warnings[0].label,
        Some(report.nodes[0].label.unwrap()),
        "attribution falls back to the outermost label"
    );
}

/// Appends the classic non-atomic read-modify-write of `var` under `label`
/// (T1's RMW is split by T2's write): one guaranteed violation.
fn violation(b: &mut TraceBuilder, label: &str, var: &str) {
    b.begin("T1", label).read("T1", var);
    b.write("T2", var);
    b.write("T1", var).end("T1");
}

/// Duplicate-label reports return before the budget check: with a budget of
/// two, a label that violates twice leaves room for the next label.
#[test]
fn duplicates_do_not_consume_warning_budget() {
    let mut b = TraceBuilder::new();
    violation(&mut b, "L1", "x");
    violation(&mut b, "L1", "y");
    violation(&mut b, "L2", "z");
    let trace = b.finish();

    let cfg = VelodromeConfig {
        max_warnings: 2,
        ..cfg_for(&trace)
    };
    let (warnings, engine) = check_trace_with(&trace, cfg);
    assert_eq!(engine.stats().cycles_detected, 3);
    assert_eq!(warnings.len(), 2, "L1 once, L2 once");
    assert_ne!(warnings[0].label, warnings[1].label);
}

/// A report suppressed by a full budget must not mark its label as seen:
/// once stored warnings are drained, the label can still produce its one
/// warning. (Previously the dedup check ran first and permanently consumed
/// the label's slot even when the budget blocked the warning.)
#[test]
fn budget_suppression_does_not_starve_label_dedup() {
    let mut b = TraceBuilder::new();
    violation(&mut b, "L1", "x"); // ops 0..5, warns (budget now full)
    violation(&mut b, "L2", "y"); // ops 5..10, suppressed by budget
    violation(&mut b, "L2", "z"); // ops 10..15, must warn after draining
    let trace = b.finish();

    let cfg = VelodromeConfig {
        max_warnings: 1,
        ..cfg_for(&trace)
    };
    let mut engine = Velodrome::with_config(cfg);
    let ops = trace.ops();
    for (i, &op) in ops.iter().enumerate().take(10) {
        engine.op(i, op);
    }
    let first: Vec<Warning> = engine.take_warnings();
    assert_eq!(first.len(), 1, "budget held the second violation back");
    for (i, &op) in ops.iter().enumerate().skip(10) {
        engine.op(i, op);
    }
    let second: Vec<Warning> = engine.take_warnings();
    assert_eq!(
        second.len(),
        1,
        "L2 was not starved by the earlier suppression"
    );
    assert_ne!(first[0].label, second[0].label);
    assert_eq!(engine.reports().len(), 3, "every cycle is still recorded");
}

/// A pipeline where thread T2 reads data written two transactions upstream
/// while the producer is still open (so nothing is garbage collected): the
/// direct edge is transitively implied and elided, and the repeated
/// predecessor afterwards hits the epoch cache.
fn pipeline_trace() -> Trace {
    let mut b = TraceBuilder::new();
    b.begin("T0", "produce").write("T0", "a");
    b.begin("T1", "relay")
        .read("T1", "a")
        .write("T1", "b")
        .end("T1");
    b.begin("T2", "consume");
    b.read("T2", "b"); // edge relay → consume
    b.read("T2", "a"); // produce → consume: implied via relay, elided
    b.read("T2", "a"); // same predecessor again: epoch-cache hit
    b.read("T2", "a");
    b.end("T2");
    b.end("T0");
    b.finish()
}

#[test]
fn elision_gate_and_epoch_cache_fire_on_transitive_orderings() {
    let trace = pipeline_trace();
    let (warnings, engine) = check_trace_with(&trace, cfg_for(&trace));
    assert!(warnings.is_empty());
    let stats = engine.stats();
    assert_eq!(stats.edges_elided, 1, "produce → consume is implied");
    assert_eq!(stats.epoch_hits, 2, "the repeated reads skip the arena");
    engine.check_invariants();
}

#[test]
fn baseline_configuration_disables_both_fast_paths() {
    let trace = pipeline_trace();
    let cfg = VelodromeConfig {
        elide_redundant_edges: false,
        ..cfg_for(&trace)
    };
    let (warnings, engine) = check_trace_with(&trace, cfg);
    assert!(warnings.is_empty());
    let stats = engine.stats();
    assert_eq!(stats.edges_elided, 0);
    assert_eq!(stats.epoch_hits, 0);
    engine.check_invariants();
}

/// Optimized and baseline runs must agree byte-for-byte on warnings and
/// reports — here on a trace that mixes an elidable ordering with a real
/// three-transaction violation.
#[test]
fn elision_preserves_warnings_and_reports_exactly() {
    let mut b = TraceBuilder::new();
    b.begin("T0", "produce").write("T0", "a");
    b.begin("T1", "relay")
        .read("T1", "a")
        .write("T1", "b")
        .end("T1");
    b.begin("T2", "consume")
        .read("T2", "b")
        .read("T2", "a")
        .read("T2", "a")
        .end("T2");
    b.end("T0");
    violation(&mut b, "rmw", "c");
    let trace = b.finish();

    let optimized = check_trace_with(&trace, cfg_for(&trace));
    let baseline = check_trace_with(
        &trace,
        VelodromeConfig {
            elide_redundant_edges: false,
            ..cfg_for(&trace)
        },
    );
    assert_eq!(
        serde_json::to_string(&optimized.0).unwrap(),
        serde_json::to_string(&baseline.0).unwrap(),
        "warnings must be identical"
    );
    assert_eq!(
        optimized.1.reports(),
        baseline.1.reports(),
        "reports must be identical"
    );
    assert!(optimized.1.stats().edges_elided > 0);
    assert_eq!(
        optimized.1.stats().cycles_detected,
        baseline.1.stats().cycles_detected
    );
}
