//! Command-line front end for the Velodrome checker.
//!
//! Mirrors the prototype's usage: "takes as input a compiled Java program
//! and a specification of which methods should be atomic, and reports an
//! error whenever it observes a non-serializable trace" — here the input is
//! a benchmark model or a recorded trace file.
//!
//! ```text
//! velodrome list
//! velodrome check <workload> [--scale=N] [--seed=S] [--backend=NAME] [--dot] [--adversarial]
//! velodrome record <workload> --out=FILE [--scale=N] [--seed=S]
//! velodrome trace <FILE> [--backend=NAME] [--dot]
//! velodrome oracle <FILE>
//! velodrome info <workload|FILE> [--scale=N] [--seed=S]
//! velodrome replay <workload> <FILE> [--scale=N]
//! velodrome compare <workload|FILE> [--scale=N] [--seed=S]
//! ```

pub mod batch;

use std::fmt::Write as _;
use velodrome::{HybridConfig, HybridVelodrome, Velodrome, VelodromeConfig};
use velodrome_atomizer::Atomizer;
use velodrome_events::{oracle, Trace, TraceStats};
use velodrome_lockset::Eraser;
use velodrome_monitor::{run_tool, EmptyTool, Tool, Warning};
use velodrome_sim::{run_program, RandomScheduler, WatchdogStats};
use velodrome_telemetry::{JsonlExporter, SnapshotRing, Telemetry};
use velodrome_vclock::HbRaceDetector;
use velodrome_workloads::adversarial::adversarial_scheduler;

/// What went wrong, determining the process exit code. Scripts (and
/// `scripts/ci-gate.sh`) rely on the distinction: a malformed trace file
/// must be distinguishable from a missing one or a bad flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliErrorKind {
    /// Bad command line: unknown command/flag/workload/backend (exit 2).
    Usage,
    /// The file system failed us: unreadable or unwritable path (exit 3).
    Io,
    /// The input file was read but could not be parsed; the message names
    /// the file, the byte offset, and the reason (exit 4).
    MalformedInput,
}

impl CliErrorKind {
    /// Process exit code for this kind of error.
    pub fn exit_code(self) -> i32 {
        match self {
            Self::Usage => 2,
            Self::Io => 3,
            Self::MalformedInput => 4,
        }
    }
}

/// A user-facing error with a message suitable for stderr and a kind
/// determining the exit code.
#[derive(Debug)]
pub struct CliError {
    /// Classification, mapped to an exit code via [`CliErrorKind::exit_code`].
    pub kind: CliErrorKind,
    /// Human-readable diagnostic.
    pub message: String,
}

impl CliError {
    /// Process exit code for this error.
    pub fn exit_code(&self) -> i32 {
        self.kind.exit_code()
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError {
        kind: CliErrorKind::Usage,
        message: msg.into(),
    }
}

fn io_err(msg: impl Into<String>) -> CliError {
    CliError {
        kind: CliErrorKind::Io,
        message: msg.into(),
    }
}

fn input_err(msg: impl Into<String>) -> CliError {
    CliError {
        kind: CliErrorKind::MalformedInput,
        message: msg.into(),
    }
}

/// Parsed command-line options.
#[derive(Debug, Default)]
struct Options {
    positional: Vec<String>,
    scale: u32,
    seed: u64,
    backend: String,
    out: Option<String>,
    dot: bool,
    adversarial: bool,
    no_merge: bool,
    no_gc: bool,
    json: bool,
    max_alive: usize,
    max_vars: usize,
    metrics_out: Option<String>,
    metrics_interval: u64,
    window: usize,
    require: Option<String>,
    jobs: usize,
    report: Option<String>,
    to: Option<String>,
}

fn parse(args: &[String]) -> Result<Options, CliError> {
    let mut o = Options {
        scale: 1,
        seed: 0,
        backend: "velodrome".into(),
        metrics_interval: 10_000,
        jobs: 4,
        ..Default::default()
    };
    for a in args {
        if let Some(v) = a.strip_prefix("--scale=") {
            o.scale = v.parse().map_err(|_| err(format!("bad --scale: {v}")))?;
        } else if let Some(v) = a.strip_prefix("--seed=") {
            o.seed = v.parse().map_err(|_| err(format!("bad --seed: {v}")))?;
        } else if let Some(v) = a.strip_prefix("--backend=") {
            o.backend = v.to_owned();
        } else if let Some(v) = a.strip_prefix("--out=") {
            o.out = Some(v.to_owned());
        } else if a == "--dot" {
            o.dot = true;
        } else if a == "--adversarial" {
            o.adversarial = true;
        } else if a == "--no-merge" {
            o.no_merge = true;
        } else if a == "--no-gc" {
            o.no_gc = true;
        } else if a == "--json" {
            o.json = true;
        } else if let Some(v) = a.strip_prefix("--max-alive=") {
            o.max_alive = v
                .parse()
                .map_err(|_| err(format!("bad --max-alive: {v}")))?;
        } else if let Some(v) = a.strip_prefix("--max-vars=") {
            o.max_vars = v.parse().map_err(|_| err(format!("bad --max-vars: {v}")))?;
        } else if let Some(v) = a.strip_prefix("--metrics-out=") {
            o.metrics_out = Some(v.to_owned());
        } else if let Some(v) = a.strip_prefix("--metrics-interval=") {
            o.metrics_interval = v
                .parse()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| err(format!("bad --metrics-interval (want events > 0): {v}")))?;
        } else if let Some(v) = a.strip_prefix("--window=") {
            o.window = v.parse().map_err(|_| err(format!("bad --window: {v}")))?;
        } else if let Some(v) = a.strip_prefix("--require=") {
            o.require = Some(v.to_owned());
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            o.jobs = v
                .parse()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| err(format!("bad --jobs (want workers > 0): {v}")))?;
        } else if let Some(v) = a.strip_prefix("--report=") {
            o.report = Some(v.to_owned());
        } else if let Some(v) = a.strip_prefix("--to=") {
            o.to = Some(v.to_owned());
        } else if a.starts_with("--") {
            return Err(err(format!("unknown flag: {a}")));
        } else {
            o.positional.push(a.clone());
        }
    }
    Ok(o)
}

/// Usage text.
pub const USAGE: &str = "usage:
  velodrome list
  velodrome check <workload> [--scale=N] [--seed=S] [--backend=NAME] [--dot] [--adversarial]
  velodrome record <workload> --out=FILE [--scale=N] [--seed=S]
  velodrome trace <FILE> [--backend=NAME] [--dot]
  velodrome oracle <FILE>
  velodrome info <workload|FILE> [--scale=N] [--seed=S]
  velodrome replay <workload> <FILE> [--scale=N]
  velodrome compare <workload|FILE> [--scale=N] [--seed=S]
  velodrome convert <IN> <OUT> [--to=json|vbt]
  velodrome check-batch <DIR|MANIFEST> [--jobs=N] [--backend=NAME] [--report=FILE]
  velodrome metrics-verify <FILE> [--require=NAME,NAME]
trace files: JSON or binary VBT, sniffed by magic bytes; `convert`
  translates between the formats and every command accepts either
backends: velodrome (default), velodrome-hybrid (vector-clock screen online,
  graph engine on escalation; same warnings as velodrome), aerodrome
  (linear-time vector-clock verdicts only), velodrome-nomerge, atomizer,
  eraser, hb-race, fasttrack, s2pl, empty, all
velodrome flags: --no-merge (naive Figure 2 rule), --no-gc,
  --max-alive=N / --max-vars=N (resource budgets; tripping one degrades the
  analysis down an explicit ladder instead of growing without bound)
hybrid flags: --window=N (bounded escalation-replay window; 0 = unbounded,
  the default, which keeps output byte-identical to velodrome)
output flags: --dot (error graphs), --json (machine-readable warnings)
metrics flags: --metrics-out=FILE (JSON Lines telemetry snapshots;
  velodrome and hybrid backends), --metrics-interval=N (events per
  snapshot, default 10000; a final snapshot is always written)
batch flags: --jobs=N (worker-pool size, default 4), --report=FILE (JSONL
  per-trace report to FILE, human summary to stdout; without it the JSONL
  goes to stdout); with --metrics-out, check-batch writes one merged
  snapshot carrying batch.* gauges
exit codes: 0 ok, 2 usage error, 3 I/O error, 4 malformed input file";

/// Backend names `--backend=` accepts. `velodrome-bench`'s `Backend::ALL`
/// display names must all appear here (an integration test enforces it),
/// so a backend added to the bench matrix cannot silently miss the CLI.
pub const BACKENDS: &[&str] = &[
    "velodrome",
    "velodrome-nomerge",
    "velodrome-hybrid",
    "aerodrome",
    "atomizer",
    "eraser",
    "hb-race",
    "fasttrack",
    "s2pl",
    "empty",
    "all",
];

/// Executes a CLI invocation, returning the text to print on stdout.
pub fn execute(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(err(USAGE));
    };
    let opts = parse(rest)?;
    match cmd.as_str() {
        "list" => Ok(list()),
        "check" => check(&opts),
        "record" => record(&opts),
        "trace" => trace_cmd(&opts),
        "oracle" => oracle_cmd(&opts),
        "info" => info(&opts),
        "replay" => replay(&opts),
        "compare" => compare(&opts),
        "convert" => convert(&opts),
        "check-batch" => batch::check_batch_cmd(&opts),
        "metrics-verify" => metrics_verify(&opts),
        other => Err(err(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

fn list() -> String {
    let mut out = String::new();
    for w in velodrome_workloads::all(1) {
        let _ = writeln!(
            out,
            "{:<12} {:>7} lines  {} truly non-atomic methods  — {}",
            w.name,
            w.paper_lines,
            w.non_atomic.len(),
            w.description
        );
    }
    out
}

fn load_workload(opts: &Options) -> Result<velodrome_workloads::Workload, CliError> {
    let name = opts.positional.first().ok_or_else(|| err(USAGE))?;
    velodrome_workloads::build(name, opts.scale)
        .ok_or_else(|| err(format!("unknown workload `{name}`; try `velodrome list`")))
}

/// Runs the selected workload and returns its trace plus the scheduler's
/// watchdog statistics (all-zero under the random scheduler, which has no
/// watchdog). The stats feed the `watchdog.*` gauges of `--metrics-out`.
fn produce_trace(opts: &Options) -> Result<(Trace, WatchdogStats), CliError> {
    produce_trace_with(opts, &Telemetry::disabled())
}

/// [`produce_trace`] with a telemetry registry: each scheduler decision is
/// timed under `phase.scheduler_step`.
fn produce_trace_with(
    opts: &Options,
    telemetry: &Telemetry,
) -> Result<(Trace, WatchdogStats), CliError> {
    use velodrome_sim::run_program_with_telemetry;
    let w = load_workload(opts)?;
    let (result, watchdog) = if opts.adversarial {
        let mut sched = adversarial_scheduler(opts.seed, 400);
        let result = run_program_with_telemetry(&w.program, &mut sched, telemetry);
        let watchdog = sched.watchdog_stats();
        (result, watchdog)
    } else {
        let result =
            run_program_with_telemetry(&w.program, RandomScheduler::new(opts.seed), telemetry);
        (result, WatchdogStats::default())
    };
    if result.deadlocked {
        return Err(err(format!("workload {} deadlocked", w.name)));
    }
    Ok((result.trace, watchdog))
}

/// Warnings plus analysis-health notes (budget suppression, degradation)
/// that the text renderer appends after the warning list.
struct Analysis {
    warnings: Vec<Warning>,
    notes: Vec<String>,
}

/// A tool whose statistics surface can be mirrored into a telemetry
/// registry between operations, making it meterable by
/// [`run_engine_metered`]. Implemented for the always-on engine and for
/// the two-tier hybrid checker (whose dormant engine publishes explicit
/// zeros, keeping the snapshot schema identical across backends).
trait MeteredTool: Tool {
    fn publish(&self, telemetry: &Telemetry);
}

impl MeteredTool for Velodrome {
    fn publish(&self, telemetry: &Telemetry) {
        self.publish_telemetry_to(telemetry);
    }
}

impl MeteredTool for HybridVelodrome {
    fn publish(&self, telemetry: &Telemetry) {
        self.publish_telemetry_to(telemetry);
    }
}

/// Drives the tool over the trace one operation at a time, mirroring the
/// registry into a JSONL file every `interval` events (plus a final
/// snapshot, so at least one line is always written). Also keeps the last
/// few snapshots in a [`SnapshotRing`], matching how a long-running monitor
/// would retain recent history.
fn run_engine_metered<T: MeteredTool>(
    engine: &mut T,
    trace: &Trace,
    telemetry: &Telemetry,
    watchdog: &WatchdogStats,
    path: &str,
    interval: u64,
) -> Result<(Vec<Warning>, u64), CliError> {
    let file = std::fs::File::create(path).map_err(|e| io_err(format!("creating {path}: {e}")))?;
    let mut exporter = JsonlExporter::new(std::io::BufWriter::new(file));
    let mut ring = SnapshotRing::new(64);
    let mut seq = 0u64;
    let emit = |engine: &T,
                events: u64,
                exporter: &mut JsonlExporter<std::io::BufWriter<std::fs::File>>,
                ring: &mut SnapshotRing,
                seq: &mut u64|
     -> Result<(), CliError> {
        engine.publish(telemetry);
        watchdog.publish(telemetry);
        if let Some(snap) = telemetry.snapshot(*seq, events) {
            exporter
                .export(&snap)
                .map_err(|e| io_err(format!("writing {path}: {e}")))?;
            ring.push(snap);
            *seq += 1;
        }
        Ok(())
    };
    for (i, op) in trace.iter() {
        engine.op(i, op);
        let events = i as u64 + 1;
        if events % interval == 0 {
            emit(engine, events, &mut exporter, &mut ring, &mut seq)?;
        }
    }
    engine.end_of_trace();
    emit(
        engine,
        trace.len() as u64,
        &mut exporter,
        &mut ring,
        &mut seq,
    )?;
    Ok((engine.take_warnings(), exporter.lines_written()))
}

fn analyze(trace: &Trace, opts: &Options, watchdog: &WatchdogStats) -> Result<Analysis, CliError> {
    let telemetry = if opts.metrics_out.is_some() {
        Telemetry::registry()
    } else {
        Telemetry::disabled()
    };
    analyze_with(trace, opts, watchdog, &telemetry)
}

/// [`analyze`] against a caller-provided registry, so phases recorded
/// before the analysis (e.g. `phase.scheduler_step` during trace
/// production) appear in the same `--metrics-out` snapshots.
fn analyze_with(
    trace: &Trace,
    opts: &Options,
    watchdog: &WatchdogStats,
    telemetry: &Telemetry,
) -> Result<Analysis, CliError> {
    if opts.metrics_out.is_some()
        && !matches!(
            opts.backend.as_str(),
            "velodrome" | "velodrome-nomerge" | "velodrome-hybrid" | "aerodrome" | "all"
        )
    {
        return Err(err(format!(
            "--metrics-out requires a velodrome or hybrid backend, not `{}`",
            opts.backend
        )));
    }
    let engine_config = |trace: &Trace, merge: bool| VelodromeConfig {
        names: trace.names().clone(),
        merge,
        gc: !opts.no_gc,
        budget: velodrome_monitor::ResourceBudget {
            max_alive_nodes: opts.max_alive,
            max_tracked_vars: opts.max_vars,
            ..velodrome_monitor::ResourceBudget::UNLIMITED
        },
        telemetry: telemetry.clone(),
        ..VelodromeConfig::default()
    };
    let velodrome = |trace: &Trace, merge: bool| -> Result<Analysis, CliError> {
        let mut engine = Velodrome::with_config(engine_config(trace, merge));
        let mut notes = Vec::new();
        let warnings = if let Some(path) = opts.metrics_out.as_deref() {
            let (warnings, lines) = run_engine_metered(
                &mut engine,
                trace,
                telemetry,
                watchdog,
                path,
                opts.metrics_interval,
            )?;
            notes.push(format!("{lines} metric snapshots written to {path}"));
            warnings
        } else {
            run_tool(&mut engine, trace)
        };
        // A caller-provided registry without --metrics-out (the batch
        // runner) still wants the engine's final gauges for its merged
        // snapshot.
        if opts.metrics_out.is_none() && telemetry.is_enabled() {
            engine.publish_telemetry_to(telemetry);
        }
        let stats = engine.stats();
        if stats.warnings_suppressed > 0 {
            notes.push(format!(
                "{} warnings suppressed (budget)",
                stats.warnings_suppressed
            ));
        }
        if stats.ladder != velodrome_monitor::DegradationLevel::Full {
            notes.push(format!(
                "analysis degraded to {} ({} transitions, {} vars quarantined) — \
                 warnings after the degradation point may be incomplete",
                stats.ladder, stats.degradations, stats.vars_quarantined
            ));
        }
        Ok(Analysis { warnings, notes })
    };
    let hybrid = |trace: &Trace, verdict_only: bool| -> Result<Analysis, CliError> {
        let cfg = HybridConfig {
            engine: engine_config(trace, !opts.no_merge),
            max_window: opts.window,
            verdict_only,
        };
        let mut checker = HybridVelodrome::with_config(cfg);
        let mut notes = Vec::new();
        let warnings = if let Some(path) = opts.metrics_out.as_deref() {
            let (warnings, lines) = run_engine_metered(
                &mut checker,
                trace,
                telemetry,
                watchdog,
                path,
                opts.metrics_interval,
            )?;
            notes.push(format!("{lines} metric snapshots written to {path}"));
            warnings
        } else {
            run_tool(&mut checker, trace)
        };
        if opts.metrics_out.is_none() && telemetry.is_enabled() {
            checker.publish_telemetry_to(telemetry);
        }
        let stats = checker.stats();
        match stats.escalated_at {
            Some(at) => notes.push(format!(
                "vector-clock screen escalated to the graph engine at event {at} \
                 ({} buffered events replayed, {} graph operations)",
                stats.buffered_peak,
                stats.graph_ops()
            )),
            None => notes.push(format!(
                "vector-clock screen held for all {} events: 0 graph operations, \
                 {} epoch fast-path hits",
                stats.ops, stats.screen.epoch_hits
            )),
        }
        if stats.truncated > 0 {
            notes.push(format!(
                "{} events were evicted from the bounded escalation window \
                 (--window={}); warnings may be incomplete",
                stats.truncated, opts.window
            ));
        }
        Ok(Analysis { warnings, notes })
    };
    let plain = |warnings: Vec<Warning>| Analysis {
        warnings,
        notes: Vec::new(),
    };
    Ok(match opts.backend.as_str() {
        "velodrome" => velodrome(trace, !opts.no_merge)?,
        "velodrome-nomerge" => velodrome(trace, false)?,
        "velodrome-hybrid" => hybrid(trace, false)?,
        "aerodrome" => hybrid(trace, true)?,
        "atomizer" => plain(run_tool(&mut Atomizer::new(), trace)),
        "eraser" => plain(run_tool(&mut Eraser::new(), trace)),
        "hb-race" => plain(run_tool(&mut HbRaceDetector::new(), trace)),
        "fasttrack" => plain(run_tool(&mut velodrome_vclock::FastTrack::new(), trace)),
        "s2pl" => plain(run_tool(
            &mut velodrome_lockset::StrictTwoPhase::new(),
            trace,
        )),
        "empty" => plain(run_tool(&mut EmptyTool::new(), trace)),
        "all" => {
            let mut result = velodrome(trace, !opts.no_merge)?;
            result
                .warnings
                .extend(run_tool(&mut Atomizer::new(), trace));
            result.warnings.extend(run_tool(&mut Eraser::new(), trace));
            result
                .warnings
                .extend(run_tool(&mut HbRaceDetector::new(), trace));
            result.warnings.sort_by_key(|w| w.op_index);
            result
        }
        other => return Err(err(format!("unknown backend `{other}`\n{USAGE}"))),
    })
}

fn info(opts: &Options) -> Result<String, CliError> {
    // Accept a workload name or a recorded trace file.
    let arg = opts.positional.first().ok_or_else(|| err(USAGE))?;
    let trace = if velodrome_workloads::build(arg, 1).is_some() {
        produce_trace(opts)?.0
    } else {
        load_trace(opts)?
    };
    Ok(format!("{}\n", TraceStats::compute(&trace)))
}

fn replay(opts: &Options) -> Result<String, CliError> {
    use velodrome_sim::ReplayScheduler;
    let w = load_workload(opts)?;
    let path = opts.positional.get(1).ok_or_else(|| err(USAGE))?;
    let recording = read_trace_file(path)?;
    let mut replayer = ReplayScheduler::new(&recording);
    let result = run_program(&w.program, &mut replayer);
    if replayer.diverged() {
        return Err(err(format!(
            "replay diverged after {} of {} recorded events — the program does not \
             match the recording",
            replayer.replayed(),
            recording.len()
        )));
    }
    let mut out = format!(
        "replayed {} recorded events deterministically\n",
        replayer.replayed()
    );
    let analysis = analyze(&result.trace, opts, &WatchdogStats::default())?;
    out.push_str(&render_analysis(&result.trace, &analysis, opts.dot));
    Ok(out)
}

fn compare(opts: &Options) -> Result<String, CliError> {
    let arg = opts.positional.first().ok_or_else(|| err(USAGE))?;
    let trace = if velodrome_workloads::build(arg, 1).is_some() {
        produce_trace(opts)?.0
    } else {
        load_trace(opts)?
    };
    let mut out = format!("{} events; warnings per tool:\n", trace.len());
    for backend in [
        "velodrome",
        "atomizer",
        "s2pl",
        "eraser",
        "hb-race",
        "fasttrack",
    ] {
        let start = std::time::Instant::now();
        let mut o = Options {
            backend: backend.into(),
            ..Default::default()
        };
        o.no_merge = opts.no_merge;
        o.no_gc = opts.no_gc;
        let analysis = analyze(&trace, &o, &WatchdogStats::default())?;
        let elapsed = start.elapsed();
        let _ = writeln!(
            out,
            "  {backend:<10} {:>4} warnings   {:>8.2?}",
            analysis.warnings.len(),
            elapsed
        );
    }
    Ok(out)
}

fn render_analysis(trace: &Trace, analysis: &Analysis, dot: bool) -> String {
    let mut out = String::new();
    if analysis.warnings.is_empty() {
        let _ = writeln!(
            out,
            "no warnings: every observed transaction is serializable"
        );
    }
    for w in &analysis.warnings {
        let _ = writeln!(out, "{w}");
        if dot {
            if let Some(details) = &w.details {
                let _ = writeln!(out, "{details}");
            }
        }
    }
    for note in &analysis.notes {
        let _ = writeln!(out, "{note}");
    }
    let _ = writeln!(out, "({} events analyzed)", trace.len());
    out
}

fn check(opts: &Options) -> Result<String, CliError> {
    let telemetry = if opts.metrics_out.is_some() {
        Telemetry::registry()
    } else {
        Telemetry::disabled()
    };
    let (trace, watchdog) = produce_trace_with(opts, &telemetry)?;
    let analysis = analyze_with(&trace, opts, &watchdog, &telemetry)?;
    if opts.json {
        return Ok(format!(
            "{}\n",
            serde_json::to_string_pretty(&analysis.warnings).expect("warnings serialize")
        ));
    }
    Ok(render_analysis(&trace, &analysis, opts.dot))
}

fn record(opts: &Options) -> Result<String, CliError> {
    let (trace, _) = produce_trace(opts)?;
    let path = opts
        .out
        .as_deref()
        .ok_or_else(|| err("record requires --out=FILE"))?;
    std::fs::write(path, trace.to_json()).map_err(|e| io_err(format!("writing {path}: {e}")))?;
    Ok(format!("recorded {} events to {path}\n", trace.len()))
}

/// Reads and parses a trace file with structured diagnostics: an unreadable
/// path is an I/O error (exit 3); unparseable contents are a malformed-input
/// error (exit 4) naming the file, byte offset, and reason.
///
/// The format is sniffed from the first bytes: the VBT magic selects the
/// binary reader, anything else streams through the incremental JSON
/// parser. Neither path ever holds the input text in memory — peak
/// allocation is one fixed read buffer plus the decoded trace, so
/// multi-hundred-megabyte recordings load without tripling RSS.
fn read_trace_file(path: &str) -> Result<Trace, CliError> {
    use std::io::Read as _;
    let mut file = std::fs::File::open(path).map_err(|e| io_err(format!("reading {path}: {e}")))?;
    // Sniff up to the first 4 bytes, then replay them ahead of the rest of
    // the stream so the chosen parser still sees the file from byte 0.
    let mut head = [0u8; 4];
    let mut got = 0usize;
    while got < head.len() {
        match file.read(&mut head[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err(format!("reading {path}: {e}"))),
        }
    }
    let src = head[..got].chain(file);
    let result = if velodrome_events::is_vbt(&head[..got]) {
        velodrome_events::read_vbt(src)
    } else {
        velodrome_events::read_json_trace(src)
    };
    result.map_err(|e| match e {
        velodrome_events::TraceReadError::Io(e) => io_err(format!("reading {path}: {e}")),
        malformed => input_err(format!("malformed trace file {path}: {malformed}")),
    })
}

/// Translates a trace between the JSON and VBT encodings. The target
/// format comes from `--to=json|vbt` or, failing that, the output path's
/// extension.
fn convert(opts: &Options) -> Result<String, CliError> {
    let inp = opts.positional.first().ok_or_else(|| err(USAGE))?;
    let out = opts
        .positional
        .get(1)
        .ok_or_else(|| err("convert requires an input and an output path"))?;
    let target = match opts.to.as_deref() {
        Some("json") => "json",
        Some("vbt") => "vbt",
        Some(other) => return Err(err(format!("bad --to: {other} (want json or vbt)"))),
        None if out.ends_with(".vbt") => "vbt",
        None if out.ends_with(".json") => "json",
        None => {
            return Err(err(format!(
                "cannot infer the target format from `{out}`; pass --to=json|vbt"
            )))
        }
    };
    let trace = read_trace_file(inp)?;
    if target == "vbt" {
        let file = std::fs::File::create(out).map_err(|e| io_err(format!("writing {out}: {e}")))?;
        velodrome_events::write_vbt(std::io::BufWriter::new(file), &trace)
            .map_err(|e| io_err(format!("writing {out}: {e}")))?;
    } else {
        std::fs::write(out, trace.to_json()).map_err(|e| io_err(format!("writing {out}: {e}")))?;
    }
    Ok(format!(
        "converted {} events: {inp} -> {out} ({target})\n",
        trace.len()
    ))
}

fn load_trace(opts: &Options) -> Result<Trace, CliError> {
    let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
    read_trace_file(path)
}

fn trace_cmd(opts: &Options) -> Result<String, CliError> {
    let trace = load_trace(opts)?;
    let analysis = analyze(&trace, opts, &WatchdogStats::default())?;
    if opts.json {
        return Ok(format!(
            "{}\n",
            serde_json::to_string_pretty(&analysis.warnings).expect("warnings serialize")
        ));
    }
    Ok(render_analysis(&trace, &analysis, opts.dot))
}

/// Metric names every snapshot line must carry for downstream dashboards;
/// `scripts/ci-gate.sh` runs `metrics-verify` against a fresh `--metrics-out`
/// file to keep the contract honest.
const REQUIRED_METRICS: &[&str] = &[
    "arena.allocated",
    "arena.cur_alive",
    "engine.ops",
    "engine.ladder",
    "watchdog.pauses_issued",
];

/// Validates a `--metrics-out` JSON Lines file: every line parses as JSON,
/// carries `seq`/`events`/`metrics`, `seq` counts up from 0, and each
/// snapshot contains the required metric names — [`REQUIRED_METRICS`] plus
/// any extra names given via `--require=a,b,c` (how `scripts/ci-gate.sh`
/// pins the hybrid backend's `aerodrome.*`/`hybrid.*` gauges).
fn metrics_verify(opts: &Options) -> Result<String, CliError> {
    let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
    let mut required: Vec<&str> = REQUIRED_METRICS.to_vec();
    if let Some(extra) = opts.require.as_deref() {
        for name in extra.split(',').filter(|n| !n.is_empty()) {
            required.push(name);
        }
    }
    let text = std::fs::read_to_string(path).map_err(|e| io_err(format!("reading {path}: {e}")))?;
    let mut snapshots = 0u64;
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| input_err(format!("{path}:{}: not valid JSON: {e}", n + 1)))?;
        let seq = v["seq"]
            .as_u64()
            .ok_or_else(|| input_err(format!("{path}:{}: missing `seq`", n + 1)))?;
        if seq != snapshots {
            return Err(input_err(format!(
                "{path}:{}: snapshot seq {seq} out of order (expected {snapshots})",
                n + 1
            )));
        }
        v["events"]
            .as_u64()
            .ok_or_else(|| input_err(format!("{path}:{}: missing `events`", n + 1)))?;
        let metrics = v["metrics"]
            .as_object()
            .ok_or_else(|| input_err(format!("{path}:{}: missing `metrics` object", n + 1)))?;
        for name in &required {
            if metrics.get(name).is_none() {
                return Err(input_err(format!(
                    "{path}:{}: snapshot is missing required metric `{name}`",
                    n + 1
                )));
            }
        }
        snapshots += 1;
    }
    if snapshots == 0 {
        return Err(input_err(format!("{path}: no snapshots found")));
    }
    Ok(format!(
        "ok: {snapshots} snapshots, all {} required metrics present\n",
        required.len()
    ))
}

fn oracle_cmd(opts: &Options) -> Result<String, CliError> {
    let trace = load_trace(opts)?;
    let result = oracle::check(&trace);
    Ok(if result.serializable {
        "serializable: an equivalent serial trace exists\n".to_owned()
    } else {
        format!(
            "NOT serializable: witness cycle of {} transactions\n",
            result.cycle.map(|c| c.len()).unwrap_or(0)
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        execute(&owned)
    }

    #[test]
    fn list_names_all_benchmarks() {
        let out = run(&["list"]).unwrap();
        for name in velodrome_workloads::NAMES {
            assert!(out.contains(name), "{name} missing from list");
        }
    }

    #[test]
    fn check_multiset_reports_defects() {
        let out = run(&["check", "multiset", "--seed=1"]).unwrap();
        assert!(out.contains("is not atomic"), "{out}");
    }

    #[test]
    fn check_raja_is_clean() {
        let out = run(&["check", "raja"]).unwrap();
        assert!(out.contains("no warnings"), "{out}");
    }

    #[test]
    fn dot_flag_includes_graph() {
        let out = run(&["check", "multiset", "--dot"]).unwrap();
        assert!(out.contains("digraph"), "{out}");
    }

    #[test]
    fn backend_selection_works() {
        let out = run(&["check", "jbb", "--backend=atomizer"]).unwrap();
        assert!(out.contains("atomizer"), "{out}");
        let all = run(&["check", "jbb", "--backend=all"]).unwrap();
        assert!(all.contains("atomizer") || all.contains("eraser"), "{all}");
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let dir = std::env::temp_dir().join("velodrome-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("multiset.json");
        let path_str = path.to_str().unwrap();
        let out = run(&["record", "multiset", &format!("--out={path_str}")]).unwrap();
        assert!(out.contains("recorded"), "{out}");
        let replay = run(&["trace", path_str]).unwrap();
        assert!(replay.contains("is not atomic"), "{replay}");
        let oracle_out = run(&["oracle", path_str]).unwrap();
        assert!(oracle_out.contains("NOT serializable"), "{oracle_out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replay_reproduces_recorded_violation() {
        let dir = std::env::temp_dir().join("velodrome-cli-replay");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rec.json");
        let path_str = path.to_str().unwrap();
        // Find a seed whose run shows the violation, record it, replay it.
        let rec = run(&[
            "record",
            "multiset",
            "--seed=1",
            &format!("--out={path_str}"),
        ])
        .unwrap();
        assert!(rec.contains("recorded"));
        let out = run(&["replay", "multiset", path_str]).unwrap();
        assert!(out.contains("replayed"), "{out}");
        assert!(out.contains("is not atomic"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&["check", "nonesuch"]).is_err());
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&["check", "multiset", "--backend=nope"]).is_err());
        assert!(run(&["check", "multiset", "--bogus"]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn usage_errors_exit_2() {
        for args in [
            &["frobnicate"][..],
            &["check", "nonesuch"],
            &["check", "multiset", "--backend=nope"],
            &["check", "multiset", "--max-alive=xyz"],
        ] {
            let e = run(args).unwrap_err();
            assert_eq!(e.kind, CliErrorKind::Usage, "{args:?}: {e}");
            assert_eq!(e.exit_code(), 2);
        }
    }

    #[test]
    fn missing_trace_file_is_io_error_exit_3() {
        for cmd in ["trace", "oracle"] {
            let e = run(&[cmd, "/nonexistent/velodrome-trace.json"]).unwrap_err();
            assert_eq!(e.kind, CliErrorKind::Io, "{cmd}: {e}");
            assert_eq!(e.exit_code(), 3);
            assert!(
                e.message.contains("/nonexistent/velodrome-trace.json"),
                "{e}"
            );
        }
        let e = run(&["replay", "multiset", "/nonexistent/rec.json"]).unwrap_err();
        assert_eq!(e.kind, CliErrorKind::Io, "{e}");
    }

    #[test]
    fn truncated_trace_file_is_malformed_input_exit_4() {
        let dir = std::env::temp_dir().join("velodrome-cli-truncated");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.json");
        let path_str = path.to_str().unwrap();
        // Record a valid trace, then truncate it mid-document.
        run(&["record", "multiset", &format!("--out={path_str}")]).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        for cmd in [&["trace", path_str][..], &["oracle", path_str]] {
            let e = run(cmd).unwrap_err();
            assert_eq!(e.kind, CliErrorKind::MalformedInput, "{cmd:?}: {e}");
            assert_eq!(e.exit_code(), 4);
            assert!(e.message.contains(path_str), "names the file: {e}");
            assert!(e.message.contains("byte"), "gives a byte offset: {e}");
        }
        let e = run(&["replay", "multiset", path_str]).unwrap_err();
        assert_eq!(e.kind, CliErrorKind::MalformedInput, "{e}");
        // Garbage that is valid JSON but not a trace is also malformed
        // input, not a crash.
        std::fs::write(&path, "{\"ops\": 42}").unwrap();
        let e = run(&["trace", path_str]).unwrap_err();
        assert_eq!(e.kind, CliErrorKind::MalformedInput, "{e}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_flags_degrade_and_report() {
        let out = run(&["check", "multiset", "--seed=1", "--max-vars=1"]).unwrap();
        assert!(out.contains("degraded"), "{out}");
        // Unbudgeted output is unchanged and says nothing about degradation.
        let clean = run(&["check", "multiset", "--seed=1"]).unwrap();
        assert!(!clean.contains("degraded"), "{clean}");
    }

    #[test]
    fn info_reports_stats() {
        let out = run(&["info", "multiset"]).unwrap();
        assert!(out.contains("transactions"), "{out}");
        assert!(out.contains("threads"), "{out}");
    }

    #[test]
    fn no_merge_flag_still_detects() {
        let out = run(&["check", "multiset", "--no-merge", "--seed=1"]).unwrap();
        assert!(out.contains("is not atomic"), "{out}");
    }

    #[test]
    fn fasttrack_backend_runs() {
        let out = run(&["check", "tsp", "--backend=fasttrack"]).unwrap();
        assert!(out.contains("events analyzed"), "{out}");
    }

    #[test]
    fn s2pl_backend_flags_sufficient_condition_violations() {
        let out = run(&["check", "multiset", "--backend=s2pl"]).unwrap();
        assert!(out.contains("strict two-phase"), "{out}");
    }

    #[test]
    fn compare_lists_all_tools() {
        let out = run(&["compare", "jbb"]).unwrap();
        for tool in [
            "velodrome",
            "atomizer",
            "s2pl",
            "eraser",
            "hb-race",
            "fasttrack",
        ] {
            assert!(out.contains(tool), "missing {tool}: {out}");
        }
    }

    #[test]
    fn json_output_is_machine_readable() {
        let out = run(&["check", "multiset", "--seed=1", "--json"]).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(parsed.as_array().is_some_and(|a| !a.is_empty()), "{out}");
        assert_eq!(parsed[0]["tool"], "velodrome");
        assert_eq!(parsed[0]["category"], "atomicity");
    }

    #[test]
    fn adversarial_flag_runs() {
        let out = run(&["check", "elevator", "--adversarial"]).unwrap();
        assert!(out.contains("events analyzed"), "{out}");
    }

    #[test]
    fn metrics_out_writes_verifiable_snapshots() {
        let dir = std::env::temp_dir().join("velodrome-cli-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let path_str = path.to_str().unwrap();
        let out = run(&[
            "check",
            "multiset",
            "--seed=1",
            "--scale=4",
            &format!("--metrics-out={path_str}"),
            "--metrics-interval=100",
        ])
        .unwrap();
        assert!(out.contains("metric snapshots written"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "expected interval + final snapshots");
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            let metrics = v["metrics"].as_object().unwrap();
            for name in REQUIRED_METRICS {
                assert!(metrics.get(name).is_some(), "missing {name}: {line}");
            }
        }
        let verified = run(&["metrics-verify", path_str]).unwrap();
        assert!(verified.contains("ok:"), "{verified}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_final_snapshot_always_written() {
        let dir = std::env::temp_dir().join("velodrome-cli-metrics-final");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("one.jsonl");
        let path_str = path.to_str().unwrap();
        // Interval far larger than the trace: only the final snapshot fires.
        run(&[
            "check",
            "multiset",
            &format!("--metrics-out={path_str}"),
            "--metrics-interval=100000000",
        ])
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_flags_are_validated() {
        let e = run(&["check", "multiset", "--metrics-interval=0"]).unwrap_err();
        assert_eq!(e.kind, CliErrorKind::Usage, "{e}");
        let e = run(&[
            "check",
            "multiset",
            "--backend=eraser",
            "--metrics-out=/tmp/x.jsonl",
        ])
        .unwrap_err();
        assert_eq!(e.kind, CliErrorKind::Usage, "{e}");
        assert!(e.message.contains("velodrome or hybrid backend"), "{e}");
    }

    #[test]
    fn every_listed_backend_is_accepted() {
        for backend in BACKENDS {
            let out = run(&["check", "jbb", &format!("--backend={backend}")]).unwrap();
            assert!(out.contains("events analyzed"), "{backend}: {out}");
        }
    }

    #[test]
    fn hybrid_backend_output_matches_velodrome() {
        let pure = run(&["check", "multiset", "--seed=1", "--json"]).unwrap();
        let hybrid = run(&[
            "check",
            "multiset",
            "--seed=1",
            "--backend=velodrome-hybrid",
            "--json",
        ])
        .unwrap();
        assert_eq!(pure, hybrid, "hybrid warnings must be byte-identical");
        let text = run(&[
            "check",
            "multiset",
            "--seed=1",
            "--backend=velodrome-hybrid",
        ])
        .unwrap();
        assert!(text.contains("escalated to the graph engine"), "{text}");
    }

    #[test]
    fn aerodrome_backend_reports_verdicts_without_details() {
        let out = run(&[
            "check",
            "multiset",
            "--seed=1",
            "--backend=aerodrome",
            "--json",
        ])
        .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        let warnings = parsed.as_array().unwrap();
        assert!(!warnings.is_empty(), "{out}");
        for w in warnings {
            assert_eq!(w["tool"], "aerodrome", "{w:?}");
            assert!(w["details"].is_null(), "verdict-only strips details: {w:?}");
        }
    }

    #[test]
    fn hybrid_screen_note_reports_the_fast_path() {
        // raja's observed trace is serializable; if the screen holds, the
        // note says so and confirms zero graph operations.
        let out = run(&["check", "raja", "--backend=velodrome-hybrid"]).unwrap();
        assert!(out.contains("vector-clock screen"), "{out}");
        assert!(out.contains("no warnings"), "{out}");
    }

    #[test]
    fn window_flag_is_validated_and_accepted() {
        let e = run(&["check", "multiset", "--window=abc"]).unwrap_err();
        assert_eq!(e.kind, CliErrorKind::Usage, "{e}");
        let out = run(&[
            "check",
            "multiset",
            "--seed=1",
            "--backend=velodrome-hybrid",
            "--window=4",
        ])
        .unwrap();
        assert!(out.contains("events analyzed"), "{out}");
    }

    #[test]
    fn hybrid_metrics_out_carries_screen_gauges() {
        let dir = std::env::temp_dir().join("velodrome-cli-hybrid-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hybrid.jsonl");
        let path_str = path.to_str().unwrap();
        let out = run(&[
            "check",
            "multiset",
            "--seed=1",
            "--scale=4",
            "--backend=velodrome-hybrid",
            &format!("--metrics-out={path_str}"),
            "--metrics-interval=100",
        ])
        .unwrap();
        assert!(out.contains("metric snapshots written"), "{out}");
        // The base contract plus the screen's own gauges all verify.
        let verified = run(&[
            "metrics-verify",
            path_str,
            "--require=aerodrome.joins,aerodrome.epoch_hits,hybrid.escalations,hybrid.graph_ops",
        ])
        .unwrap();
        assert!(verified.contains("ok:"), "{verified}");
        // Demanding a gauge nobody publishes fails with exit 4.
        let e = run(&["metrics-verify", path_str, "--require=no.such.metric"]).unwrap_err();
        assert_eq!(e.kind, CliErrorKind::MalformedInput, "{e}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_verify_rejects_bad_files() {
        let e = run(&["metrics-verify", "/nonexistent/metrics.jsonl"]).unwrap_err();
        assert_eq!(e.kind, CliErrorKind::Io);
        let dir = std::env::temp_dir().join("velodrome-cli-metrics-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        let path_str = path.to_str().unwrap();
        for (contents, why) in [
            ("not json at all", "unparseable line"),
            ("{\"seq\": 0}", "missing fields"),
            ("", "no snapshots"),
            (
                "{\"seq\":0,\"events\":1,\"metrics\":{\"engine.ops\":{\"type\":\"gauge\",\"value\":1}}}",
                "missing required metric",
            ),
        ] {
            std::fs::write(&path, contents).unwrap();
            let e = run(&["metrics-verify", path_str]).unwrap_err();
            assert_eq!(e.kind, CliErrorKind::MalformedInput, "{why}: {e}");
            assert_eq!(e.exit_code(), 4, "{why}");
        }
        std::fs::remove_file(&path).ok();
    }
}
