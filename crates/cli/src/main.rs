//! The `velodrome` command-line tool.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match velodrome_cli::execute(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
