//! The parallel batch runner behind `velodrome check-batch`.
//!
//! The unit of scaling for a fleet-checking service is the *set of traces*,
//! not the single trace: per-trace analysis is already linear, so aggregate
//! throughput comes from fanning a work queue of trace files over a fixed
//! worker pool. Each worker loads (JSON or VBT, sniffed by magic) and
//! analyzes one trace at a time under the monitor's panic-isolation shim
//! ([`velodrome_monitor::isolate`]), so one poisoned trace degrades only
//! its own verdict — the batch always completes and always reports.
//!
//! Guarantees:
//!
//! * **Byte-identical verdicts.** Every trace is analyzed by exactly the
//!   code path `velodrome trace <FILE>` uses, with a worker-private
//!   telemetry registry, so per-trace warnings and notes are byte-identical
//!   to a serial single-trace run of the same backend.
//! * **Deterministic report order.** Workers claim work from an atomic
//!   queue, but results are stored by input index: the JSONL report lists
//!   traces in input order no matter how the pool interleaved.
//! * **Isolation.** A panicking analysis quarantines that trace (status
//!   `quarantined`, the panic message preserved); unreadable or malformed
//!   files fail that trace (status `error`); neither aborts the batch.

use crate::{analyze_with, err, io_err, read_trace_file, CliError, Options, USAGE};
use serde::value::{Map, Number, Value};
use serde::Serialize as _;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use velodrome_events::Trace;
use velodrome_monitor::Warning;
use velodrome_sim::WatchdogStats;
use velodrome_telemetry::{names, MetricValue, Snapshot, Telemetry};

/// What to run: the trace files, the pool size, and the backend.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Trace files to check, in report order.
    pub paths: Vec<PathBuf>,
    /// Worker-pool size (`--jobs`), at least 1.
    pub jobs: usize,
    /// Backend name, as `--backend` accepts.
    pub backend: String,
    /// Collect per-trace telemetry and merge it into one batch snapshot.
    /// Requires a velodrome-family backend (the same restriction
    /// `--metrics-out` imposes on single-trace runs).
    pub collect_metrics: bool,
}

/// How one trace fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStatus {
    /// Loaded and analyzed; verdicts are in `warnings`.
    Ok,
    /// Could not be loaded (I/O or malformed input).
    Error,
    /// The analysis panicked; the panic message is preserved.
    Quarantined,
}

impl TraceStatus {
    fn as_str(self) -> &'static str {
        match self {
            Self::Ok => "ok",
            Self::Error => "error",
            Self::Quarantined => "quarantined",
        }
    }
}

/// Per-trace result, in input order.
#[derive(Debug)]
pub struct TraceOutcome {
    /// The trace file.
    pub path: String,
    /// How the trace fared.
    pub status: TraceStatus,
    /// Operations in the trace (0 unless [`TraceStatus::Ok`]).
    pub events: usize,
    /// Wall milliseconds spent loading + analyzing this trace.
    pub millis: u64,
    /// The backend's warnings, byte-identical to a serial run.
    pub warnings: Vec<Warning>,
    /// Analysis-health notes (degradation, escalation, …).
    pub notes: Vec<String>,
    /// The load error or panic message, for non-`Ok` statuses.
    pub message: Option<String>,
}

/// Everything `check-batch` reports: per-trace outcomes plus aggregates.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-trace outcomes, in input order.
    pub outcomes: Vec<TraceOutcome>,
    /// Wall milliseconds for the whole batch.
    pub wall_millis: u64,
    /// Worker-pool size the batch ran with.
    pub jobs: usize,
    /// Backend every trace was checked with.
    pub backend: String,
    /// Merged telemetry snapshot (with `batch.*` gauges), when requested.
    pub merged: Option<Snapshot>,
}

impl BatchReport {
    /// Traces with [`TraceStatus::Ok`].
    pub fn ok(&self) -> usize {
        self.count(TraceStatus::Ok)
    }

    /// Traces with [`TraceStatus::Error`].
    pub fn failed(&self) -> usize {
        self.count(TraceStatus::Error)
    }

    /// Traces with [`TraceStatus::Quarantined`].
    pub fn quarantined(&self) -> usize {
        self.count(TraceStatus::Quarantined)
    }

    fn count(&self, status: TraceStatus) -> usize {
        self.outcomes.iter().filter(|o| o.status == status).count()
    }

    /// Total operations across successfully checked traces.
    pub fn events(&self) -> u64 {
        self.outcomes.iter().map(|o| o.events as u64).sum()
    }

    /// Total warnings across successfully checked traces.
    pub fn warnings_total(&self) -> u64 {
        self.outcomes.iter().map(|o| o.warnings.len() as u64).sum()
    }

    /// Aggregate throughput in events per second of wall time.
    pub fn events_per_sec(&self) -> u64 {
        if self.wall_millis == 0 {
            return self.events() * 1000;
        }
        self.events() * 1000 / self.wall_millis
    }

    /// Renders the machine-readable report: one JSON line per trace (in
    /// input order), then one `{"summary":…}` line.
    pub fn to_jsonl(&self) -> String {
        let num = |v: u64| Value::Num(Number::from_u64(v));
        let mut out = String::new();
        for o in &self.outcomes {
            let mut m = Map::new();
            m.insert("path".into(), Value::Str(o.path.clone()));
            m.insert("status".into(), Value::Str(o.status.as_str().into()));
            match o.status {
                TraceStatus::Ok => {
                    m.insert("events".into(), num(o.events as u64));
                    m.insert("millis".into(), num(o.millis));
                    m.insert("serializable".into(), Value::Bool(o.warnings.is_empty()));
                    m.insert("warnings".into(), o.warnings.serialize_value());
                    m.insert(
                        "notes".into(),
                        Value::Array(o.notes.iter().map(|n| Value::Str(n.clone())).collect()),
                    );
                }
                TraceStatus::Error | TraceStatus::Quarantined => {
                    m.insert(
                        "error".into(),
                        Value::Str(o.message.clone().unwrap_or_default()),
                    );
                }
            }
            out.push_str(&serde_json::to_string(&Value::Object(m)).expect("report serializes"));
            out.push('\n');
        }
        let mut s = Map::new();
        s.insert("traces".into(), num(self.outcomes.len() as u64));
        s.insert("ok".into(), num(self.ok() as u64));
        s.insert("failed".into(), num(self.failed() as u64));
        s.insert("quarantined".into(), num(self.quarantined() as u64));
        s.insert("events".into(), num(self.events()));
        s.insert("warnings".into(), num(self.warnings_total()));
        s.insert("wall_millis".into(), num(self.wall_millis));
        s.insert("events_per_sec".into(), num(self.events_per_sec()));
        s.insert("jobs".into(), num(self.jobs as u64));
        s.insert("backend".into(), Value::Str(self.backend.clone()));
        let mut root = Map::new();
        root.insert("summary".into(), Value::Object(s));
        out.push_str(&serde_json::to_string(&Value::Object(root)).expect("report serializes"));
        out.push('\n');
        out
    }

    /// One human-readable summary line.
    pub fn summary_line(&self) -> String {
        format!(
            "checked {} traces ({} ok, {} failed, {} quarantined): {} events, \
             {} warnings, {} ms with {} jobs ({} events/sec)\n",
            self.outcomes.len(),
            self.ok(),
            self.failed(),
            self.quarantined(),
            self.events(),
            self.warnings_total(),
            self.wall_millis,
            self.jobs,
            self.events_per_sec(),
        )
    }
}

/// Analyzes one already-loaded trace exactly as the batch runner (and
/// `velodrome trace`) would, returning the backend's warnings and notes.
/// The serial leg of the `batch` bench uses this to prove the parallel
/// runner's verdicts byte-identical.
pub fn check_trace(trace: &Trace, backend: &str) -> Result<(Vec<Warning>, Vec<String>), CliError> {
    let opts = Options {
        backend: backend.to_owned(),
        scale: 1,
        metrics_interval: 10_000,
        jobs: 1,
        ..Default::default()
    };
    let analysis = analyze_with(
        trace,
        &opts,
        &WatchdogStats::default(),
        &Telemetry::disabled(),
    )?;
    Ok((analysis.warnings, analysis.notes))
}

/// Checks one trace file end to end: load (either format), analyze under a
/// panic guard, snapshot the worker-private registry if metrics were
/// requested.
fn check_one(path: &Path, cfg: &BatchConfig) -> (TraceOutcome, Option<Snapshot>) {
    let start = std::time::Instant::now();
    let path_str = path.display().to_string();
    let fail = |status: TraceStatus, message: String, start: std::time::Instant| TraceOutcome {
        path: path_str.clone(),
        status,
        events: 0,
        millis: start.elapsed().as_millis() as u64,
        warnings: Vec::new(),
        notes: Vec::new(),
        message: Some(message),
    };
    let trace = match read_trace_file(&path_str) {
        Ok(t) => t,
        Err(e) => return (fail(TraceStatus::Error, e.message, start), None),
    };
    let telemetry = if cfg.collect_metrics {
        Telemetry::registry()
    } else {
        Telemetry::disabled()
    };
    let opts = Options {
        backend: cfg.backend.clone(),
        scale: 1,
        metrics_interval: 10_000,
        jobs: 1,
        ..Default::default()
    };
    let analysis = match velodrome_monitor::isolate::run_isolated(|| {
        analyze_with(&trace, &opts, &WatchdogStats::default(), &telemetry)
    }) {
        Err(panic) => {
            let msg = format!("analysis panicked: {panic}");
            return (fail(TraceStatus::Quarantined, msg, start), None);
        }
        Ok(Err(e)) => return (fail(TraceStatus::Error, e.message, start), None),
        Ok(Ok(analysis)) => analysis,
    };
    let snapshot = if cfg.collect_metrics {
        // Batch runs have no scheduler, but the single-trace snapshot
        // contract includes the watchdog gauges; publish explicit zeros so
        // `metrics-verify` holds for batch metrics too.
        WatchdogStats::default().publish(&telemetry);
        telemetry.snapshot(0, trace.len() as u64)
    } else {
        None
    };
    let outcome = TraceOutcome {
        path: path_str,
        status: TraceStatus::Ok,
        events: trace.len(),
        millis: start.elapsed().as_millis() as u64,
        warnings: analysis.warnings,
        notes: analysis.notes,
        message: None,
    };
    (outcome, snapshot)
}

/// Merges `from` into the accumulated batch metrics: counters and gauges
/// add, phases and histograms combine their summaries. (Summing gauges is
/// the useful batch semantics: `arena.allocated` over the batch is total
/// allocation, not one arbitrary trace's.)
fn merge_metrics(into: &mut BTreeMap<String, MetricValue>, from: &Snapshot) {
    for (name, value) in &from.metrics {
        match into.entry(name.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value.clone());
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                match (e.get_mut(), value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (
                        MetricValue::Phase {
                            count,
                            total_nanos,
                            max_nanos,
                        },
                        MetricValue::Phase {
                            count: c2,
                            total_nanos: t2,
                            max_nanos: m2,
                        },
                    ) => {
                        *count += c2;
                        *total_nanos += t2;
                        *max_nanos = (*max_nanos).max(*m2);
                    }
                    (
                        MetricValue::Histogram {
                            count,
                            sum,
                            max,
                            buckets,
                        },
                        MetricValue::Histogram {
                            count: c2,
                            sum: s2,
                            max: m2,
                            buckets: b2,
                        },
                    ) => {
                        *count += c2;
                        *sum += s2;
                        *max = (*max).max(*m2);
                        if buckets.len() < b2.len() {
                            buckets.resize(b2.len(), 0);
                        }
                        for (slot, b) in buckets.iter_mut().zip(b2) {
                            *slot += b;
                        }
                    }
                    // Mismatched shapes under one name cannot happen with
                    // our registries; keep the first value if they do.
                    _ => {}
                }
            }
        }
    }
}

/// Runs the batch: fans `cfg.paths` over a pool of `cfg.jobs` workers and
/// aggregates per-trace outcomes (in input order) plus, when requested,
/// one merged telemetry snapshot carrying the `batch.*` gauges.
pub fn run_batch(cfg: &BatchConfig) -> Result<BatchReport, CliError> {
    if cfg.jobs == 0 {
        return Err(err("check-batch requires --jobs >= 1"));
    }
    if cfg.collect_metrics
        && !matches!(
            cfg.backend.as_str(),
            "velodrome" | "velodrome-nomerge" | "velodrome-hybrid" | "aerodrome" | "all"
        )
    {
        return Err(err(format!(
            "--metrics-out requires a velodrome or hybrid backend, not `{}`",
            cfg.backend
        )));
    }
    type Slot = Option<(TraceOutcome, Option<Snapshot>)>;
    let start = std::time::Instant::now();
    let n = cfg.paths.len();
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Slot>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..cfg.jobs.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = check_one(&cfg.paths[i], cfg);
                slots.lock().expect("batch results poisoned")[i] = Some(result);
            });
        }
    });
    let mut outcomes = Vec::with_capacity(n);
    let mut metrics = BTreeMap::new();
    for slot in slots.into_inner().expect("batch results poisoned") {
        let (outcome, snapshot) = slot.expect("every work item completes");
        if let Some(snap) = snapshot {
            merge_metrics(&mut metrics, &snap);
        }
        outcomes.push(outcome);
    }
    let mut report = BatchReport {
        outcomes,
        wall_millis: start.elapsed().as_millis() as u64,
        jobs: cfg.jobs,
        backend: cfg.backend.clone(),
        merged: None,
    };
    if cfg.collect_metrics {
        metrics.insert(
            names::BATCH_TRACES_CHECKED.into(),
            MetricValue::Gauge(report.ok() as u64),
        );
        metrics.insert(
            names::BATCH_TRACES_FAILED.into(),
            MetricValue::Gauge(report.failed() as u64),
        );
        metrics.insert(
            names::BATCH_TRACES_QUARANTINED.into(),
            MetricValue::Gauge(report.quarantined() as u64),
        );
        metrics.insert(
            names::BATCH_EVENTS_TOTAL.into(),
            MetricValue::Gauge(report.events()),
        );
        metrics.insert(
            names::BATCH_EVENTS_PER_SEC.into(),
            MetricValue::Gauge(report.events_per_sec()),
        );
        metrics.insert(
            names::BATCH_WARNINGS_TOTAL.into(),
            MetricValue::Gauge(report.warnings_total()),
        );
        metrics.insert(
            names::BATCH_JOBS.into(),
            MetricValue::Gauge(cfg.jobs as u64),
        );
        report.merged = Some(Snapshot {
            seq: 0,
            events: report.events(),
            metrics,
        });
    }
    Ok(report)
}

/// Expands the `check-batch` input argument into the work list: a
/// directory yields its `*.json` / `*.vbt` files sorted by name (skipping
/// `*.expect.json` oracle files); anything else is a manifest of trace
/// paths, one per line, `#` comments allowed, resolved relative to the
/// manifest's directory.
fn collect_paths(input: &str) -> Result<Vec<PathBuf>, CliError> {
    let root = Path::new(input);
    let meta = std::fs::metadata(root).map_err(|e| io_err(format!("reading {input}: {e}")))?;
    if meta.is_dir() {
        let entries =
            std::fs::read_dir(root).map_err(|e| io_err(format!("reading {input}: {e}")))?;
        let mut paths = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err(format!("reading {input}: {e}")))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".expect.json") {
                continue;
            }
            if name.ends_with(".json") || name.ends_with(".vbt") {
                paths.push(path);
            }
        }
        paths.sort();
        Ok(paths)
    } else {
        let text =
            std::fs::read_to_string(root).map_err(|e| io_err(format!("reading {input}: {e}")))?;
        let base = root.parent().unwrap_or_else(|| Path::new("."));
        Ok(text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| {
                let p = Path::new(l);
                if p.is_absolute() {
                    p.to_path_buf()
                } else {
                    base.join(p)
                }
            })
            .collect())
    }
}

/// The `check-batch` subcommand: collect the work list, run the pool,
/// write the report (and merged metrics), print the summary.
pub(crate) fn check_batch_cmd(opts: &Options) -> Result<String, CliError> {
    let input = opts.positional.first().ok_or_else(|| err(USAGE))?;
    let paths = collect_paths(input)?;
    if paths.is_empty() {
        return Err(err(format!("no trace files found in {input}")));
    }
    let cfg = BatchConfig {
        paths,
        jobs: opts.jobs,
        backend: opts.backend.clone(),
        collect_metrics: opts.metrics_out.is_some(),
    };
    let report = run_batch(&cfg)?;
    if let Some(path) = opts.metrics_out.as_deref() {
        let snap = report.merged.as_ref().expect("collect_metrics was set");
        let file =
            std::fs::File::create(path).map_err(|e| io_err(format!("creating {path}: {e}")))?;
        let mut exporter = velodrome_telemetry::JsonlExporter::new(std::io::BufWriter::new(file));
        exporter
            .export(snap)
            .map_err(|e| io_err(format!("writing {path}: {e}")))?;
    }
    match opts.report.as_deref() {
        Some(path) => {
            std::fs::write(path, report.to_jsonl())
                .map_err(|e| io_err(format!("writing {path}: {e}")))?;
            Ok(report.summary_line())
        }
        None => Ok(report.to_jsonl()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        execute(&owned)
    }

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("velodrome-batch-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Records a couple of workload traces (one racy, one clean) into
    /// `dir`, in both encodings, and returns the recorded stems.
    fn record_corpus(dir: &Path) -> Vec<String> {
        let mut stems = Vec::new();
        for (workload, stem) in [("multiset", "a-multiset"), ("raja", "b-raja")] {
            let json = dir.join(format!("{stem}.json"));
            let vbt = dir.join(format!("{stem}.vbt"));
            run(&[
                "record",
                workload,
                "--seed=1",
                &format!("--out={}", json.display()),
            ])
            .unwrap();
            run(&["convert", json.to_str().unwrap(), vbt.to_str().unwrap()]).unwrap();
            stems.push(stem.to_owned());
        }
        stems
    }

    #[test]
    fn convert_roundtrips_and_infers_formats() {
        let dir = scratch_dir("convert");
        let json = dir.join("t.json");
        let vbt = dir.join("t.vbt");
        let back = dir.join("back.json");
        run(&[
            "record",
            "multiset",
            "--seed=1",
            &format!("--out={}", json.display()),
        ])
        .unwrap();
        let out = run(&["convert", json.to_str().unwrap(), vbt.to_str().unwrap()]).unwrap();
        assert!(out.contains("(vbt)"), "{out}");
        run(&["convert", vbt.to_str().unwrap(), back.to_str().unwrap()]).unwrap();
        // json -> vbt -> json is byte-identical.
        assert_eq!(
            std::fs::read_to_string(&json).unwrap(),
            std::fs::read_to_string(&back).unwrap()
        );
        // The binary file is smaller and every command accepts it.
        assert!(std::fs::metadata(&vbt).unwrap().len() < std::fs::metadata(&json).unwrap().len());
        let checked = run(&["trace", vbt.to_str().unwrap(), "--json"]).unwrap();
        let serial = run(&["trace", json.to_str().unwrap(), "--json"]).unwrap();
        assert_eq!(checked, serial);
        let e = run(&["convert", json.to_str().unwrap(), "out.bin"]).unwrap_err();
        assert_eq!(e.kind, crate::CliErrorKind::Usage, "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_vbt_inputs_exit_4_with_byte_offsets() {
        let dir = scratch_dir("bad-vbt");
        let path = dir.join("bad.vbt");
        let path_str = path.to_str().unwrap().to_owned();

        // Truncated frame: record a real VBT trace and cut it short.
        let json = dir.join("t.json");
        run(&[
            "record",
            "multiset",
            "--seed=1",
            &format!("--out={}", json.display()),
        ])
        .unwrap();
        run(&["convert", json.to_str().unwrap(), &path_str]).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let e = run(&["trace", &path_str]).unwrap_err();
        assert_eq!(e.kind, crate::CliErrorKind::MalformedInput, "{e}");
        assert_eq!(e.exit_code(), 4);
        assert!(e.message.contains(&path_str), "{e}");
        assert!(e.message.contains("byte"), "{e}");

        // Bad magic: the first byte decides the parser, so `VXTF…` falls
        // through to the JSON reader and still fails at byte 0.
        let mut bad = full.clone();
        bad[1] = b'X';
        std::fs::write(&path, &bad).unwrap();
        let e = run(&["trace", &path_str]).unwrap_err();
        assert_eq!(e.kind, crate::CliErrorKind::MalformedInput, "{e}");
        assert!(e.message.contains("byte 0"), "{e}");

        // String-table overflow: a crafted header claiming 2^30 entries.
        let mut crafted = b"VBTF\x01".to_vec();
        crafted.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x04]); // varint 2^30
        std::fs::write(&path, &crafted).unwrap();
        let e = run(&["trace", &path_str]).unwrap_err();
        assert_eq!(e.kind, crate::CliErrorKind::MalformedInput, "{e}");
        assert!(e.message.contains("string-table overflow"), "{e}");
        assert!(e.message.contains("byte"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_batch_matches_serial_runs_and_reports_jsonl() {
        let dir = scratch_dir("batch");
        record_corpus(&dir);
        let out = run(&[
            "check-batch",
            dir.to_str().unwrap(),
            "--jobs=4",
            "--backend=velodrome",
        ])
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // 2 stems × 2 encodings + 1 summary line.
        assert_eq!(lines.len(), 5, "{out}");
        let mut per_trace = Vec::new();
        for line in &lines[..4] {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["status"], "ok", "{line}");
            assert!(v["events"].as_u64().unwrap() > 0, "{line}");
            per_trace.push(v);
        }
        // Paths are in sorted input order; json/vbt twins agree exactly.
        let path_of = |v: &serde_json::Value| v["path"].as_str().unwrap().to_owned();
        assert!(path_of(&per_trace[0]) < path_of(&per_trace[1]));
        for pair in per_trace.chunks(2) {
            assert_eq!(pair[0]["warnings"], pair[1]["warnings"]);
            assert_eq!(pair[0]["events"], pair[1]["events"]);
        }
        // The racy trace has warnings; each matches its serial run.
        assert!(per_trace[0]["warnings"]
            .as_array()
            .is_some_and(|w| !w.is_empty()));
        for v in &per_trace {
            let serial = run(&["trace", path_of(v).as_str(), "--json"]).unwrap();
            let serial_warnings: serde_json::Value = serde_json::from_str(&serial).unwrap();
            assert_eq!(
                serde_json::to_string(&v["warnings"]).unwrap(),
                serde_json::to_string(&serial_warnings).unwrap(),
                "batch verdict must be byte-identical to the serial run"
            );
        }
        let summary = serde_json::from_str::<serde_json::Value>(lines[4]).unwrap();
        let summary = &summary["summary"];
        assert_eq!(summary["traces"].as_u64(), Some(4));
        assert_eq!(summary["ok"].as_u64(), Some(4));
        assert_eq!(summary["failed"].as_u64(), Some(0));
        assert_eq!(summary["quarantined"].as_u64(), Some(0));
        assert_eq!(summary["jobs"].as_u64(), Some(4));
        assert!(summary["events_per_sec"].as_u64().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_batch_isolates_bad_traces_and_writes_metrics() {
        let dir = scratch_dir("batch-isolate");
        record_corpus(&dir);
        std::fs::write(dir.join("c-broken.json"), "{\"ops\": 42}").unwrap();
        let report_path = dir.join("report.jsonl");
        let metrics_path = dir.join("metrics.jsonl");
        let out = run(&[
            "check-batch",
            dir.to_str().unwrap(),
            "--jobs=2",
            "--backend=velodrome-hybrid",
            &format!("--report={}", report_path.display()),
            &format!("--metrics-out={}", metrics_path.display()),
        ])
        .unwrap();
        // --report moves the JSONL to the file; stdout is the summary.
        assert!(out.contains("checked 5 traces"), "{out}");
        assert!(out.contains("1 failed"), "{out}");
        let report = std::fs::read_to_string(&report_path).unwrap();
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 6, "{report}");
        let broken: Vec<serde_json::Value> = lines
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .filter(|v: &serde_json::Value| v["status"] == "error")
            .collect();
        assert_eq!(broken.len(), 1, "{report}");
        assert!(
            broken[0]["error"].as_str().unwrap().contains("byte"),
            "{report}"
        );
        // The merged snapshot passes the standard contract plus batch.*.
        let verified = run(&[
            "metrics-verify",
            metrics_path.to_str().unwrap(),
            "--require=batch.traces_checked,batch.traces_failed,batch.traces_quarantined,\
             batch.events_total,batch.events_per_sec,batch.warnings_total,batch.jobs,\
             aerodrome.joins,hybrid.escalations",
        ])
        .unwrap();
        assert!(verified.contains("ok:"), "{verified}");
        let line = std::fs::read_to_string(&metrics_path).unwrap();
        let snap: serde_json::Value = serde_json::from_str(line.lines().next().unwrap()).unwrap();
        let gauge = |name: &str| snap["metrics"][name]["value"].as_u64();
        assert_eq!(gauge("batch.traces_checked"), Some(4), "{snap:?}");
        assert_eq!(gauge("batch.traces_failed"), Some(1), "{snap:?}");
        assert_eq!(gauge("batch.jobs"), Some(2), "{snap:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_batch_manifest_mode_and_validation() {
        let dir = scratch_dir("batch-manifest");
        record_corpus(&dir);
        let manifest = dir.join("traces.txt");
        std::fs::write(
            &manifest,
            "# batch manifest\na-multiset.json\n\nb-raja.vbt\n",
        )
        .unwrap();
        let out = run(&["check-batch", manifest.to_str().unwrap(), "--jobs=1"]).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        // Manifest order is preserved (not sorted).
        assert!(lines[0].contains("a-multiset.json"), "{out}");
        assert!(lines[1].contains("b-raja.vbt"), "{out}");

        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let e = run(&["check-batch", empty.to_str().unwrap()]).unwrap_err();
        assert_eq!(e.kind, crate::CliErrorKind::Usage, "{e}");
        let e = run(&["check-batch", dir.to_str().unwrap(), "--jobs=0"]).unwrap_err();
        assert_eq!(e.kind, crate::CliErrorKind::Usage, "{e}");
        let e = run(&["check-batch", "/nonexistent/velodrome-corpus"]).unwrap_err();
        assert_eq!(e.kind, crate::CliErrorKind::Io, "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
