//! The Atomizer: a reduction-based dynamic atomicity checker
//! (Flanagan & Freund, POPL 2004), reimplemented as the paper's baseline.
//!
//! The Atomizer classifies each operation inside an atomic block using
//! Lipton's theory of reduction:
//!
//! * lock acquires are **right-movers**;
//! * lock releases are **left-movers**;
//! * race-free memory accesses (per the Eraser lockset analysis) are
//!   **both-movers**;
//! * racy accesses are **non-movers**.
//!
//! A transaction is reducible — hence serializable — when its operations
//! match `(right|both)* [non] (left|both)*`. Scanning left to right, the
//! checker is in the *pre-commit* phase until the first left-mover or
//! non-mover, after which it is *post-commit*; a right-mover or a second
//! non-mover in the post-commit phase is an atomicity warning.
//!
//! Because the underlying race information is lockset-based, the Atomizer
//! inherits Eraser's blindness to fork/join, flag handoff, and other
//! non-lock synchronization — the source of the false alarms that
//! Velodrome eliminates (Table 2).
//!
//! [`RmwAdvisor`] implements the commit-point heuristic used for the
//! paper's adversarial scheduling: a thread observed to read a variable
//! without holding locks inside an atomic block is flagged when it is about
//! to write that variable, inviting a conflicting interleaved write.

use std::collections::{HashMap, HashSet};
use velodrome_events::{Label, Op, ThreadId, VarId};
use velodrome_lockset::{AccessClass, LockSetState};
use velodrome_monitor::tool::{PerLabelDedup, Tool, Warning, WarningCategory};

/// The reduction phase of an in-flight transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Still in the right-mover prefix.
    Pre,
    /// Past the commit point: only left- and both-movers are allowed.
    Post,
}

#[derive(Debug, Default)]
struct TxnState {
    stack: Vec<Label>,
    phase: Option<Phase>,
    /// Avoid re-reporting within one dynamic transaction instance.
    reported: bool,
}

/// The Atomizer back-end tool.
///
/// # Examples
///
/// The `Set.add` shape — two critical sections inside one atomic block —
/// is not reducible:
///
/// ```
/// use velodrome_events::TraceBuilder;
/// use velodrome_atomizer::Atomizer;
/// use velodrome_monitor::run_tool;
///
/// let mut b = TraceBuilder::new();
/// b.write("T2", "elems"); // make the variable shared-modified
/// b.begin("T1", "Set.add");
/// b.acquire("T1", "this").read("T1", "elems").release("T1", "this");
/// b.acquire("T1", "this").write("T1", "elems").release("T1", "this");
/// b.end("T1");
/// let warnings = run_tool(&mut Atomizer::new(), &b.finish());
/// assert_eq!(warnings.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Atomizer {
    lockset: LockSetState,
    threads: HashMap<ThreadId, TxnState>,
    dedup_per_label: bool,
    dedup: PerLabelDedup,
    warnings: Vec<Warning>,
    violations_detected: u64,
}

impl Atomizer {
    /// Creates an Atomizer that reports each atomic-block label at most
    /// once (the paper counts non-atomic *methods*).
    pub fn new() -> Self {
        Self {
            dedup_per_label: true,
            ..Self::default()
        }
    }

    /// Creates an Atomizer reporting every dynamic violation.
    pub fn without_dedup() -> Self {
        Self {
            dedup_per_label: false,
            ..Self::default()
        }
    }

    /// Dynamic violations observed (before deduplication).
    pub fn violations_detected(&self) -> u64 {
        self.violations_detected
    }

    fn violation(&mut self, t: ThreadId, index: usize, reason: &str) {
        self.violations_detected += 1;
        let st = self.threads.entry(t).or_default();
        if st.reported {
            return;
        }
        st.reported = true;
        let label = st.stack.first().copied();
        if self.dedup_per_label && !self.dedup.first_report(label) {
            return;
        }
        self.warnings.push(Warning {
            tool: "atomizer",
            category: WarningCategory::Atomicity,
            label,
            thread: t,
            op_index: index,
            message: format!(
                "atomic block {} may not be reducible: {reason}",
                label.map(|l| l.to_string()).unwrap_or_else(|| "<?>".into())
            ),
            details: None,
        });
    }
}

impl Tool for Atomizer {
    fn name(&self) -> &'static str {
        "atomizer"
    }

    fn op(&mut self, index: usize, op: Op) {
        match op {
            Op::Begin { t, l } => {
                let st = self.threads.entry(t).or_default();
                st.stack.push(l);
                if st.phase.is_none() {
                    st.phase = Some(Phase::Pre);
                    st.reported = false;
                }
            }
            Op::End { t } => {
                let st = self.threads.entry(t).or_default();
                st.stack.pop();
                if st.stack.is_empty() {
                    st.phase = None;
                    st.reported = false;
                }
            }
            Op::Acquire { t, m } => {
                self.lockset.acquire(t, m);
                let phase = self.threads.entry(t).or_default().phase;
                if phase == Some(Phase::Post) {
                    self.violation(t, index, "lock acquire (right-mover) after commit point");
                }
            }
            Op::Release { t, m } => {
                self.lockset.release(t, m);
                let st = self.threads.entry(t).or_default();
                if st.phase.is_some() {
                    st.phase = Some(Phase::Post);
                }
            }
            Op::Read { t, x } | Op::Write { t, x } => {
                let class = self.lockset.access(t, x, op.is_write());
                let phase = self.threads.entry(t).or_default().phase;
                if class == AccessClass::Racy {
                    match phase {
                        Some(Phase::Pre) => {
                            self.threads.entry(t).or_default().phase = Some(Phase::Post);
                        }
                        Some(Phase::Post) => {
                            self.violation(
                                t,
                                index,
                                "second racy access (non-mover) after commit point",
                            );
                        }
                        None => {}
                    }
                }
            }
            // The Atomizer does not model fork/join ordering.
            Op::Fork { .. } | Op::Join { .. } => {}
        }
    }

    fn take_warnings(&mut self) -> Vec<Warning> {
        std::mem::take(&mut self.warnings)
    }
}

/// Which operations the adversarial scheduler may pause at. Section 5
/// mentions exploring several policies, "such as pausing writes but not
/// reads"; both are available here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvisorConfig {
    /// Pause a thread about to complete a suspected unsynchronized
    /// read-modify-write (the default policy).
    pub delay_rmw_writes: bool,
    /// Additionally pause before racy reads inside atomic blocks.
    pub delay_racy_reads: bool,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        Self {
            delay_rmw_writes: true,
            delay_racy_reads: false,
        }
    }
}

/// Commit-point heuristic for adversarial scheduling (Section 5).
///
/// Flags a thread that, inside an atomic block, read a variable while
/// holding no locks and is now about to write it — the unsynchronized
/// read-modify-write pattern. Pausing the thread at that point gives other
/// threads a window to perform a conflicting write, turning the potential
/// violation into one Velodrome can witness.
#[derive(Debug, Default)]
pub struct RmwAdvisor {
    cfg: AdvisorConfig,
    lockset: LockSetState,
    txn_depth: HashMap<ThreadId, usize>,
    suspect_reads: HashMap<ThreadId, HashSet<VarId>>,
}

impl RmwAdvisor {
    /// Creates an advisor with the default (writes-only) policy.
    pub fn new() -> Self {
        Self {
            cfg: AdvisorConfig::default(),
            ..Self::default()
        }
    }

    /// Creates an advisor with an explicit pausing policy.
    pub fn with_config(cfg: AdvisorConfig) -> Self {
        Self {
            cfg,
            ..Self::default()
        }
    }

    /// Observes an emitted operation (feed every event in order).
    pub fn observe(&mut self, _index: usize, op: Op) {
        match op {
            Op::Begin { t, .. } => {
                *self.txn_depth.entry(t).or_insert(0) += 1;
            }
            Op::End { t } => {
                let d = self.txn_depth.entry(t).or_insert(0);
                *d = d.saturating_sub(1);
                if *d == 0 {
                    self.suspect_reads.remove(&t);
                }
            }
            Op::Acquire { t, m } => self.lockset.acquire(t, m),
            Op::Release { t, m } => self.lockset.release(t, m),
            Op::Read { t, x } => {
                let _ = self.lockset.access(t, x, false);
                let in_txn = self.txn_depth.get(&t).copied().unwrap_or(0) > 0;
                if in_txn && !self.lockset.holds_any(t) {
                    self.suspect_reads.entry(t).or_default().insert(x);
                }
            }
            Op::Write { t, x } => {
                let _ = self.lockset.access(t, x, true);
            }
            Op::Fork { .. } | Op::Join { .. } => {}
        }
    }

    /// Should the thread about to perform `op` be paused?
    pub fn should_delay(&mut self, t: ThreadId, op: Op) -> bool {
        match op {
            Op::Write { x, .. } => {
                self.cfg.delay_rmw_writes
                    && self.suspect_reads.get(&t).is_some_and(|s| s.contains(&x))
            }
            Op::Read { x, .. } => {
                self.cfg.delay_racy_reads
                    && self.txn_depth.get(&t).copied().unwrap_or(0) > 0
                    && self.lockset.is_racy(x)
                    && !self.lockset.holds_any(t)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome_events::TraceBuilder;
    use velodrome_monitor::run_tool;

    fn atomizer_warnings(build: impl FnOnce(&mut TraceBuilder)) -> Vec<Warning> {
        let mut b = TraceBuilder::new();
        build(&mut b);
        let mut a = Atomizer::new();
        run_tool(&mut a, &b.finish())
    }

    #[test]
    fn reducible_locked_block_is_silent() {
        let w = atomizer_warnings(|b| {
            // acq (R), protected accesses (B), rel (L): R B B L — reducible.
            b.begin("T1", "m").acquire("T1", "l").read("T1", "x");
            b.write("T1", "x").release("T1", "l").end("T1");
            b.begin("T2", "m").acquire("T2", "l").read("T2", "x");
            b.write("T2", "x").release("T2", "l").end("T2");
        });
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn two_critical_sections_in_one_block_warn() {
        // The Set.add shape: rel then acq inside one atomic block.
        let w = atomizer_warnings(|b| {
            b.write("T2", "elems"); // make elems shared-modified
            b.begin("T1", "Set.add");
            b.acquire("T1", "l").read("T1", "elems").release("T1", "l");
            b.acquire("T1", "l").write("T1", "elems").release("T1", "l");
            b.end("T1");
        });
        assert_eq!(w.len(), 1);
        assert!(w[0].message.contains("right-mover"), "{}", w[0].message);
    }

    #[test]
    fn unsynchronized_rmw_warns_after_two_racy_accesses() {
        let w = atomizer_warnings(|b| {
            // Make x racy first (shared-modified, empty lockset).
            b.write("T2", "x");
            b.write("T3", "x");
            b.begin("T1", "inc")
                .read("T1", "x")
                .write("T1", "x")
                .end("T1");
        });
        assert_eq!(w.len(), 1);
        assert!(w[0].message.contains("non-mover"), "{}", w[0].message);
    }

    #[test]
    fn handoff_idiom_is_a_false_alarm() {
        // Serializable flag handoff (cf. Velodrome staying silent): the
        // Atomizer warns because the flag accesses look racy to Eraser.
        let w = atomizer_warnings(|b| {
            for _ in 0..2 {
                b.read("T1", "flag");
                b.begin("T1", "c1").read("T1", "x").write("T1", "x");
                b.write("T1", "flag").end("T1");
                b.read("T2", "flag");
                b.begin("T2", "c2").read("T2", "x").write("T2", "x");
                b.write("T2", "flag").end("T2");
            }
        });
        assert!(!w.is_empty(), "Atomizer false-alarms on handoff");
    }

    #[test]
    fn dedup_counts_methods_not_occurrences() {
        let make = |b: &mut TraceBuilder| {
            b.write("T2", "x");
            b.write("T3", "x");
            for _ in 0..5 {
                b.begin("T1", "inc")
                    .read("T1", "x")
                    .write("T1", "x")
                    .end("T1");
            }
        };
        let w = atomizer_warnings(make);
        assert_eq!(w.len(), 1);

        let mut b = TraceBuilder::new();
        make(&mut b);
        let mut a = Atomizer::without_dedup();
        let w = run_tool(&mut a, &b.finish());
        assert_eq!(w.len(), 5);
        assert_eq!(a.violations_detected(), 5);
    }

    #[test]
    fn code_outside_blocks_is_ignored() {
        let w = atomizer_warnings(|b| {
            b.write("T1", "x");
            b.write("T2", "x");
            b.read("T1", "x");
            b.write("T1", "x");
        });
        assert!(w.is_empty(), "no atomic blocks, no atomicity warnings");
    }

    #[test]
    fn nested_blocks_attribute_outermost() {
        let w = atomizer_warnings(|b| {
            b.write("T2", "x");
            b.write("T3", "x");
            b.begin("T1", "outer").begin("T1", "inner");
            b.read("T1", "x").write("T1", "x");
            b.end("T1").end("T1");
        });
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].label.map(|l| l.index()), Some(0), "blames outer");
    }

    #[test]
    fn rmw_advisor_flags_unprotected_rmw_write() {
        let mut adv = RmwAdvisor::new();
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc").read("T1", "x");
        let trace = b.finish();
        for (i, op) in trace.iter() {
            adv.observe(i, op);
        }
        let t1 = velodrome_events::ThreadId::new(0);
        let x = velodrome_events::VarId::new(0);
        assert!(adv.should_delay(t1, Op::Write { t: t1, x }));
        assert!(!adv.should_delay(t1, Op::Read { t: t1, x }));
        let y = velodrome_events::VarId::new(9);
        assert!(!adv.should_delay(t1, Op::Write { t: t1, x: y }));
    }

    #[test]
    fn rmw_advisor_resets_at_block_end() {
        let mut adv = RmwAdvisor::new();
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc")
            .read("T1", "x")
            .write("T1", "x")
            .end("T1");
        let trace = b.finish();
        for (i, op) in trace.iter() {
            adv.observe(i, op);
        }
        let t1 = velodrome_events::ThreadId::new(0);
        let x = velodrome_events::VarId::new(0);
        assert!(
            !adv.should_delay(t1, Op::Write { t: t1, x }),
            "cleared after end"
        );
    }

    #[test]
    fn rmw_advisor_ignores_lock_protected_reads() {
        let mut adv = RmwAdvisor::new();
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc").acquire("T1", "m").read("T1", "x");
        let trace = b.finish();
        for (i, op) in trace.iter() {
            adv.observe(i, op);
        }
        let t1 = velodrome_events::ThreadId::new(0);
        let x = velodrome_events::VarId::new(0);
        assert!(!adv.should_delay(t1, Op::Write { t: t1, x }));
    }
}
