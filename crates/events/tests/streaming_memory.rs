//! Regression test: streaming JSON ingestion must hold bounded memory even
//! for multi-hundred-megabyte traces.
//!
//! The old CLI path slurped the whole file into a `String` and then built a
//! JSON value tree — roughly 3× the input size in peak heap. The streaming
//! reader must instead hold only its fixed 64 KiB buffer (plus the symbol
//! table). We assert this with an allocation counter rather than OS RSS,
//! which is noisy and platform-dependent.
//!
//! This file intentionally contains a single test: a parallel test in the
//! same process would pollute the allocator counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Read;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts live heap bytes and tracks the high-water mark.
struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let cur = CURRENT.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                PEAK.fetch_max(cur, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Procedurally generates the JSON text of an enormous trace, so the input
/// itself never exists in memory either. The document is
/// `{"ops":[...],"names":{...}}` with the ops section repeated to reach the
/// requested size.
struct SyntheticTraceJson {
    /// Total ops to emit.
    ops: usize,
    /// Next op index to emit.
    next: usize,
    /// Leftover bytes of the current chunk.
    pending: Vec<u8>,
    pending_pos: usize,
    state: State,
}

#[derive(PartialEq)]
enum State {
    Header,
    Ops,
    Footer,
    Done,
}

impl SyntheticTraceJson {
    fn new(ops: usize) -> Self {
        Self {
            ops,
            next: 0,
            pending: Vec::new(),
            pending_pos: 0,
            state: State::Header,
        }
    }

    fn refill(&mut self) {
        self.pending.clear();
        self.pending_pos = 0;
        match self.state {
            State::Header => {
                self.pending.extend_from_slice(b"{\"ops\":[");
                self.state = State::Ops;
            }
            State::Ops => {
                if self.next >= self.ops {
                    self.state = State::Footer;
                    self.refill();
                    return;
                }
                // Emit up to 4096 ops per chunk.
                let end = (self.next + 4096).min(self.ops);
                for i in self.next..end {
                    if i > 0 {
                        self.pending.push(b',');
                    }
                    let t = i % 8;
                    let x = i % 1000;
                    if i % 2 == 0 {
                        self.pending.extend_from_slice(
                            format!("{{\"Read\":{{\"t\":{t},\"x\":{x}}}}}").as_bytes(),
                        );
                    } else {
                        self.pending.extend_from_slice(
                            format!("{{\"Write\":{{\"t\":{t},\"x\":{x}}}}}").as_bytes(),
                        );
                    }
                }
                self.next = end;
            }
            State::Footer => {
                self.pending.extend_from_slice(
                    b"],\"names\":{\"threads\":{\"0\":\"main\"},\"vars\":{},\"locks\":{},\"labels\":{}}}",
                );
                self.state = State::Done;
            }
            State::Done => {}
        }
    }
}

impl Read for SyntheticTraceJson {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pending_pos >= self.pending.len() {
            if self.state == State::Done {
                return Ok(0);
            }
            self.refill();
            if self.pending.is_empty() && self.state == State::Done {
                return Ok(0);
            }
        }
        let n = (self.pending.len() - self.pending_pos).min(buf.len());
        buf[..n].copy_from_slice(&self.pending[self.pending_pos..self.pending_pos + n]);
        self.pending_pos += n;
        Ok(n)
    }
}

#[test]
fn scan_holds_bounded_memory_on_a_multi_hundred_mb_trace() {
    // ~8.4M ops at ~26 bytes each ≈ 220 MB of JSON text.
    const OPS: usize = 8_400_000;

    // Count the bytes the generator actually produces, to prove the input
    // really was multi-hundred-MB.
    struct Counted<R> {
        inner: R,
        bytes: u64,
    }
    impl<R: Read> Read for Counted<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.inner.read(buf)?;
            self.bytes += n as u64;
            Ok(n)
        }
    }

    let mut src = Counted {
        inner: SyntheticTraceJson::new(OPS),
        bytes: 0,
    };

    let before = CURRENT.load(Ordering::Relaxed);
    PEAK.store(before, Ordering::Relaxed);

    let mut count = 0usize;
    let summary = velodrome_events::scan_json_trace(&mut src, |_, _| count += 1)
        .expect("synthetic trace parses");

    let peak_delta = PEAK.load(Ordering::Relaxed).saturating_sub(before);

    assert_eq!(count, OPS);
    assert_eq!(summary.ops, OPS);
    assert!(
        src.bytes >= 200 << 20,
        "input was only {} bytes — not a multi-hundred-MB trace",
        src.bytes
    );
    // 64 KiB stream buffer + generator chunk (~100 KiB) + symbol table.
    // Anything over 4 MiB means the parser is accumulating input.
    assert!(
        peak_delta < 4 << 20,
        "peak allocation grew by {peak_delta} bytes while streaming {} bytes",
        src.bytes
    );
}
