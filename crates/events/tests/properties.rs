//! Property-based tests over arbitrary operation sequences: the event
//! model's invariants must hold even for traces no well-behaved program
//! would produce (segmentation and the oracle are total functions).

use proptest::prelude::*;
use velodrome_events::{
    oracle, Label, LockId, Op, ThreadId, Trace, TraceStats, Transactions, VarId,
};

fn arb_op() -> impl Strategy<Value = Op> {
    let t = (0u32..4).prop_map(ThreadId::new);
    let x = (0u32..3).prop_map(VarId::new);
    let m = (0u32..2).prop_map(LockId::new);
    let l = (0u32..3).prop_map(Label::new);
    prop_oneof![
        (t.clone(), x.clone()).prop_map(|(t, x)| Op::Read { t, x }),
        (t.clone(), x).prop_map(|(t, x)| Op::Write { t, x }),
        (t.clone(), m.clone()).prop_map(|(t, m)| Op::Acquire { t, m }),
        (t.clone(), m).prop_map(|(t, m)| Op::Release { t, m }),
        (t.clone(), l).prop_map(|(t, l)| Op::Begin { t, l }),
        t.prop_map(|t| Op::End { t }),
    ]
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_op(), 0..max_len).prop_map(Trace::from_ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The conflict relation is symmetric and reflexive.
    #[test]
    fn conflicts_symmetric_and_reflexive(a in arb_op(), b in arb_op()) {
        prop_assert_eq!(a.conflicts_with(b), b.conflicts_with(a));
        prop_assert!(a.conflicts_with(a), "same thread ⇒ self-conflict");
    }

    /// Segmentation covers every operation exactly once and transactions
    /// are per-thread, ordered, and non-empty.
    #[test]
    fn segmentation_is_a_partition(trace in arb_trace(40)) {
        let txns = Transactions::segment(&trace);
        prop_assert_eq!(txns.op_txns().len(), trace.len());
        let mut counted = 0;
        for info in txns.txns() {
            prop_assert!(info.op_count > 0, "transactions are non-empty");
            prop_assert!(info.first_op <= info.last_op);
            counted += info.op_count;
            let ops = txns.ops_of(info.id);
            prop_assert_eq!(ops.len(), info.op_count);
            prop_assert_eq!(ops.first().copied(), Some(info.first_op));
            prop_assert_eq!(ops.last().copied(), Some(info.last_op));
            for &i in &ops {
                // Every op of the transaction belongs to its thread.
                prop_assert_eq!(trace.get(i).unwrap().tid(), info.thread);
            }
        }
        prop_assert_eq!(counted, trace.len());
    }

    /// A serial trace is always serializable, and a trace whose threads
    /// touch disjoint variables (no locks) is always serializable.
    #[test]
    fn disjoint_threads_are_serializable(ops in prop::collection::vec(
        ((0u32..3), (0u32..2), any::<bool>()), 0..30))
    {
        let mut trace = Trace::new();
        for (t, xi, w) in ops {
            // Each thread gets its own variable namespace.
            let x = VarId::new(t * 10 + xi);
            let t = ThreadId::new(t);
            trace.push(if w { Op::Write { t, x } } else { Op::Read { t, x } });
        }
        prop_assert!(oracle::is_serializable(&trace));
    }

    /// The oracle's witness cycle is genuine: consecutive transactions on
    /// the cycle are connected by a conflicting operation pair in order.
    #[test]
    fn oracle_cycles_are_witnessed(trace in arb_trace(40)) {
        let result = oracle::check(&trace);
        if let Some(cycle) = result.cycle {
            prop_assert!(!result.serializable);
            prop_assert!(cycle.len() >= 2, "non-trivial cycle");
            let txns = Transactions::segment(&trace);
            for k in 0..cycle.len() {
                let a = cycle[k];
                let b = cycle[(k + 1) % cycle.len()];
                prop_assert_ne!(a, b);
                // There is a conflicting pair (i < j) with i ∈ a, j ∈ b.
                let mut found = false;
                'outer: for &i in &txns.ops_of(a) {
                    for &j in &txns.ops_of(b) {
                        if i < j
                            && trace.get(i).unwrap().conflicts_with(trace.get(j).unwrap())
                        {
                            found = true;
                            break 'outer;
                        }
                    }
                }
                prop_assert!(found, "edge {a} -> {b} has no witnessing conflict");
            }
        }
    }

    /// Statistics are internally consistent.
    #[test]
    fn stats_are_consistent(trace in arb_trace(50)) {
        let s = TraceStats::compute(&trace);
        prop_assert_eq!(
            s.ops,
            s.reads + s.writes + s.acquires + s.releases + s.begins + s.ends
                + s.forks + s.joins
        );
        prop_assert!(s.unary_transactions <= s.transactions);
        prop_assert!(s.max_transaction_ops <= s.ops);
        let txns = Transactions::segment(&trace);
        prop_assert_eq!(s.transactions, txns.len());
    }

    /// Conflict serializability implies view serializability (the classic
    /// strict inclusion; the converse fails on blind writes).
    #[test]
    fn conflict_implies_view_serializable(trace in arb_trace(12)) {
        prop_assume!(oracle::is_serializable(&trace));
        if let Ok(view) = oracle::view_serializable(&trace, 50_000) {
            prop_assert!(view, "conflict-serializable but not view-serializable:\n{trace}");
        }
    }

    /// JSON serialization round-trips arbitrary traces.
    #[test]
    fn json_roundtrip(trace in arb_trace(30)) {
        let back = Trace::from_json(&trace.to_json()).unwrap();
        prop_assert_eq!(back.ops(), trace.ops());
    }

    /// Swapping one adjacent commuting pair never changes the verdict.
    #[test]
    fn single_swap_preserves_verdict(trace in arb_trace(25), pos in 0usize..24) {
        let ops = trace.ops();
        prop_assume!(ops.len() >= 2);
        let i = pos % (ops.len() - 1);
        prop_assume!(ops[i].commutes_with(ops[i + 1]));
        let mut swapped: Vec<Op> = ops.to_vec();
        swapped.swap(i, i + 1);
        let swapped = Trace::from_ops(swapped);
        prop_assert_eq!(
            oracle::is_serializable(&trace),
            oracle::is_serializable(&swapped)
        );
    }
}
