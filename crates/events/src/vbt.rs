//! VBT — the Velodrome binary trace format.
//!
//! JSON traces are convenient to inspect but expensive to ingest: every
//! operation costs dozens of text bytes and a trip through a generic
//! parser. VBT is the compact wire format for fleet-scale checking:
//! varint-encoded operations, string tables for names, and length-prefixed
//! frames that a reader can stream without ever materializing the whole
//! file.
//!
//! # Wire layout
//!
//! All integers are unsigned LEB128 varints unless stated otherwise.
//!
//! ```text
//! magic      4 bytes  b"VBTF"
//! version    1 byte   0x01
//! tables     4 string tables, in order: threads, vars, locks, labels
//!              each: count, then count × (id, len, len bytes of UTF-8)
//! synth      count, then count × delta         (see below)
//! frames     repeated: body_len, body          (body_len = 0 terminates)
//!              body: op_count, then op_count × op
//!              op: tag byte, then operands as varints
//! ```
//!
//! Synthesized indices are strictly increasing, so they are delta-coded:
//! `index = prev + delta` and `prev = index + 1` after each. Operation
//! tags and operands:
//!
//! | tag | op      | operands     |
//! |-----|---------|--------------|
//! | 0   | Read    | `t`, `x`     |
//! | 1   | Write   | `t`, `x`     |
//! | 2   | Acquire | `t`, `m`     |
//! | 3   | Release | `t`, `m`     |
//! | 4   | Begin   | `t`, `l`     |
//! | 5   | End     | `t`          |
//! | 6   | Fork    | `t`, `child` |
//! | 7   | Join    | `t`, `child` |
//!
//! A zero-length frame is the end-of-trace sentinel; trailing bytes after
//! it are an error, so truncation anywhere is detected. Hostile inputs are
//! bounded everywhere: names over [`MAX_NAME_LEN`], tables over
//! [`MAX_TABLE_ENTRIES`], and frames over [`MAX_FRAME_LEN`] are rejected
//! as string-table / frame overflows rather than allocated.
//!
//! Every error carries the absolute byte offset of the first
//! uninterpretable byte, matching the streaming JSON reader
//! ([`crate::stream`]).

use crate::ids::SymbolTable;
use crate::op::Op;
use crate::stream::{ByteStream, TraceReadError};
use crate::trace::Trace;
use crate::{Label, LockId, ThreadId, VarId};
use std::io::{Read, Write};

/// The four magic bytes opening every VBT stream.
pub const MAGIC: [u8; 4] = *b"VBTF";
/// The format version this module reads and writes.
pub const VERSION: u8 = 1;
/// Longest accepted name in a string table, in bytes.
pub const MAX_NAME_LEN: u64 = 1 << 20;
/// Most entries accepted in one string table.
pub const MAX_TABLE_ENTRIES: u64 = 1 << 24;
/// Largest accepted frame body, in bytes.
pub const MAX_FRAME_LEN: u64 = 1 << 22;

/// Operations encoded per frame by the writer (readers accept any split).
const FRAME_OPS: usize = 4096;

/// Returns `true` when `prefix` opens with the VBT magic (used to sniff a
/// file's format before committing to a parser).
pub fn is_vbt(prefix: &[u8]) -> bool {
    prefix.starts_with(&MAGIC)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_op(out: &mut Vec<u8>, op: Op) {
    let (tag, a, b) = match op {
        Op::Read { t, x } => (0u8, t.raw(), Some(x.raw())),
        Op::Write { t, x } => (1, t.raw(), Some(x.raw())),
        Op::Acquire { t, m } => (2, t.raw(), Some(m.raw())),
        Op::Release { t, m } => (3, t.raw(), Some(m.raw())),
        Op::Begin { t, l } => (4, t.raw(), Some(l.raw())),
        Op::End { t } => (5, t.raw(), None),
        Op::Fork { t, child } => (6, t.raw(), Some(child.raw())),
        Op::Join { t, child } => (7, t.raw(), Some(child.raw())),
    };
    out.push(tag);
    push_varint(out, a as u64);
    if let Some(b) = b {
        push_varint(out, b as u64);
    }
}

/// Encodes `trace` as VBT into `w`. Writes the header and string tables,
/// then the operations in bounded frames, so memory use is independent of
/// trace length.
pub fn write_vbt<W: Write>(mut w: W, trace: &Trace) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(64 * 1024);
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    let names = trace.names();
    for entries in [
        names.thread_entries(),
        names.var_entries(),
        names.lock_entries(),
        names.label_entries(),
    ] {
        push_varint(&mut buf, entries.len() as u64);
        for (id, name) in entries {
            push_varint(&mut buf, id as u64);
            push_varint(&mut buf, name.len() as u64);
            buf.extend_from_slice(name.as_bytes());
        }
    }
    push_varint(&mut buf, trace.synthesized().len() as u64);
    let mut prev = 0u64;
    for &idx in trace.synthesized() {
        push_varint(&mut buf, idx as u64 - prev);
        prev = idx as u64 + 1;
    }
    w.write_all(&buf)?;
    let mut body = Vec::with_capacity(FRAME_OPS * 6);
    for chunk in trace.ops().chunks(FRAME_OPS) {
        body.clear();
        push_varint(&mut body, chunk.len() as u64);
        for &op in chunk {
            push_op(&mut body, op);
        }
        buf.clear();
        push_varint(&mut buf, body.len() as u64);
        w.write_all(&buf)?;
        w.write_all(&body)?;
    }
    // End-of-trace sentinel.
    w.write_all(&[0])?;
    Ok(())
}

/// Encodes `trace` as a VBT byte vector.
pub fn trace_to_vbt(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::new();
    write_vbt(&mut out, trace).expect("writing to a Vec cannot fail");
    out
}

/// Reads a complete VBT trace from `src`.
pub fn read_vbt<R: Read>(src: R) -> Result<Trace, TraceReadError> {
    VbtReader::new(src)?.read_to_trace()
}

/// A streaming VBT reader.
///
/// [`VbtReader::new`] consumes the header, string tables, and synthesized
/// indices; [`VbtReader::next_op`] then decodes operations one at a time
/// from length-prefixed frames. Only one frame body (≤ [`MAX_FRAME_LEN`])
/// is buffered at a time and operations are decoded in place from that
/// buffer without further copies, so arbitrarily long traces stream
/// through a fixed footprint.
pub struct VbtReader<R> {
    s: ByteStream<R>,
    names: SymbolTable,
    synthesized: Vec<usize>,
    /// Current frame body.
    frame: Vec<u8>,
    /// Next undecoded byte within `frame`.
    frame_pos: usize,
    /// Absolute stream offset of `frame[0]`.
    frame_base: u64,
    /// Operations still to decode from the current frame.
    frame_ops_left: u64,
    /// Set once the end-of-trace sentinel has been consumed.
    finished: bool,
    ops_read: usize,
}

impl<R: Read> VbtReader<R> {
    /// Opens a VBT stream: checks the magic and version, then reads the
    /// string tables and synthesized indices.
    pub fn new(src: R) -> Result<Self, TraceReadError> {
        let mut s = ByteStream::new(src);
        let mut magic = [0u8; 4];
        s.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(TraceReadError::malformed(
                0,
                format!("bad magic {magic:02x?}: not a VBT trace"),
            ));
        }
        let mut version = [0u8; 1];
        s.read_exact(&mut version)?;
        if version[0] != VERSION {
            return Err(TraceReadError::malformed(
                4,
                format!(
                    "unsupported VBT version {} (expected {VERSION})",
                    version[0]
                ),
            ));
        }
        let mut names = SymbolTable::new();
        for table in 0..4u8 {
            Self::read_table(&mut s, |id, name| match table {
                0 => names.name_thread(ThreadId::new(id), name),
                1 => names.name_var(VarId::new(id), name),
                2 => names.name_lock(LockId::new(id), name),
                _ => names.name_label(Label::new(id), name),
            })?;
        }
        let count = read_varint(&mut s)?;
        if count > MAX_TABLE_ENTRIES {
            return Err(TraceReadError::malformed(
                s.offset(),
                format!("synthesized-index overflow: {count} entries exceed {MAX_TABLE_ENTRIES}"),
            ));
        }
        let mut synthesized = Vec::with_capacity(count as usize);
        let mut prev = 0u64;
        for _ in 0..count {
            let delta = read_varint(&mut s)?;
            let idx = prev.checked_add(delta).ok_or_else(|| {
                TraceReadError::malformed(s.offset(), "synthesized index overflows")
            })?;
            synthesized.push(usize::try_from(idx).map_err(|_| {
                TraceReadError::malformed(s.offset(), "synthesized index overflows")
            })?);
            prev = idx + 1;
        }
        Ok(Self {
            s,
            names,
            synthesized,
            frame: Vec::new(),
            frame_pos: 0,
            frame_base: 0,
            frame_ops_left: 0,
            finished: false,
            ops_read: 0,
        })
    }

    fn read_table(
        s: &mut ByteStream<R>,
        mut insert: impl FnMut(u32, String),
    ) -> Result<(), TraceReadError> {
        let count = read_varint(s)?;
        if count > MAX_TABLE_ENTRIES {
            return Err(TraceReadError::malformed(
                s.offset(),
                format!("string-table overflow: {count} entries exceed {MAX_TABLE_ENTRIES}"),
            ));
        }
        for _ in 0..count {
            let id = read_varint(s)?;
            let id = u32::try_from(id).map_err(|_| {
                TraceReadError::malformed(s.offset(), format!("identifier {id} out of range"))
            })?;
            let len = read_varint(s)?;
            if len > MAX_NAME_LEN {
                return Err(TraceReadError::malformed(
                    s.offset(),
                    format!("string-table overflow: name of {len} bytes exceeds {MAX_NAME_LEN}"),
                ));
            }
            let start = s.offset();
            let mut bytes = vec![0u8; len as usize];
            s.read_exact(&mut bytes)?;
            let name = String::from_utf8(bytes).map_err(|_| {
                TraceReadError::malformed(start, "string-table entry is not valid UTF-8")
            })?;
            insert(id, name);
        }
        Ok(())
    }

    /// The trace's symbol table (available before any operation is read).
    pub fn names(&self) -> &SymbolTable {
        &self.names
    }

    /// Sorted indices of synthesized operations. Bounds against the
    /// operation count are validated once the final frame has been read.
    pub fn synthesized(&self) -> &[usize] {
        &self.synthesized
    }

    /// Operations decoded so far.
    pub fn ops_read(&self) -> usize {
        self.ops_read
    }

    fn frame_offset(&self) -> u64 {
        self.frame_base + self.frame_pos as u64
    }

    fn frame_varint(&mut self) -> Result<u64, TraceReadError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(&byte) = self.frame.get(self.frame_pos) else {
                return Err(TraceReadError::malformed(
                    self.frame_offset(),
                    "truncated frame: varint runs past the frame body",
                ));
            };
            self.frame_pos += 1;
            if shift >= 63 && byte > 1 {
                return Err(TraceReadError::malformed(
                    self.frame_offset(),
                    "varint overflows 64 bits",
                ));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn frame_id(&mut self, what: &str) -> Result<u32, TraceReadError> {
        let v = self.frame_varint()?;
        u32::try_from(v).map_err(|_| {
            TraceReadError::malformed(self.frame_offset(), format!("{what} {v} out of range"))
        })
    }

    /// Decodes the next operation, or `None` after the end-of-trace
    /// sentinel.
    pub fn next_op(&mut self) -> Result<Option<Op>, TraceReadError> {
        loop {
            if self.frame_ops_left > 0 {
                let op = self.decode_op()?;
                self.frame_ops_left -= 1;
                if self.frame_ops_left == 0 && self.frame_pos != self.frame.len() {
                    return Err(TraceReadError::malformed(
                        self.frame_offset(),
                        format!(
                            "frame has {} trailing bytes after its last operation",
                            self.frame.len() - self.frame_pos
                        ),
                    ));
                }
                self.ops_read += 1;
                return Ok(Some(op));
            }
            if self.finished {
                return Ok(None);
            }
            let len = read_varint(&mut self.s)?;
            if len == 0 {
                self.finished = true;
                if self.s.peek()?.is_some() {
                    return Err(TraceReadError::malformed(
                        self.s.offset(),
                        "trailing data after end-of-trace frame",
                    ));
                }
                return Ok(None);
            }
            if len > MAX_FRAME_LEN {
                return Err(TraceReadError::malformed(
                    self.s.offset(),
                    format!("frame of {len} bytes exceeds {MAX_FRAME_LEN}"),
                ));
            }
            self.frame_base = self.s.offset();
            self.frame.resize(len as usize, 0);
            self.s.read_exact(&mut self.frame)?;
            self.frame_pos = 0;
            self.frame_ops_left = self.frame_varint()?;
            if self.frame_ops_left == 0 {
                return Err(TraceReadError::malformed(
                    self.frame_base,
                    "frame declares zero operations",
                ));
            }
        }
    }

    fn decode_op(&mut self) -> Result<Op, TraceReadError> {
        let Some(&tag) = self.frame.get(self.frame_pos) else {
            return Err(TraceReadError::malformed(
                self.frame_offset(),
                "truncated frame: operation tag missing",
            ));
        };
        self.frame_pos += 1;
        let t = ThreadId::new(self.frame_id("thread id")?);
        Ok(match tag {
            0 => Op::Read {
                t,
                x: VarId::new(self.frame_id("variable id")?),
            },
            1 => Op::Write {
                t,
                x: VarId::new(self.frame_id("variable id")?),
            },
            2 => Op::Acquire {
                t,
                m: LockId::new(self.frame_id("lock id")?),
            },
            3 => Op::Release {
                t,
                m: LockId::new(self.frame_id("lock id")?),
            },
            4 => Op::Begin {
                t,
                l: Label::new(self.frame_id("label id")?),
            },
            5 => Op::End { t },
            6 => Op::Fork {
                t,
                child: ThreadId::new(self.frame_id("thread id")?),
            },
            7 => Op::Join {
                t,
                child: ThreadId::new(self.frame_id("thread id")?),
            },
            other => {
                return Err(TraceReadError::malformed(
                    self.frame_base + self.frame_pos as u64 - 1,
                    format!("unknown operation tag {other}"),
                ))
            }
        })
    }

    /// Drains the remaining operations and assembles the [`Trace`],
    /// validating the synthesized indices against the final operation
    /// count.
    pub fn read_to_trace(mut self) -> Result<Trace, TraceReadError> {
        let mut ops = Vec::new();
        while let Some(op) = self.next_op()? {
            ops.push(op);
        }
        let offset = self.s.offset();
        Trace::from_raw_parts(ops, self.names, self.synthesized)
            .map_err(|reason| TraceReadError::malformed(offset, reason))
    }
}

fn read_varint<R: Read>(s: &mut ByteStream<R>) -> Result<u64, TraceReadError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(byte) = s.next_byte()? else {
            return Err(TraceReadError::malformed(
                s.offset(),
                "unexpected end of input in varint",
            ));
        };
        if shift >= 63 && byte > 1 {
            return Err(TraceReadError::malformed(
                s.offset(),
                "varint overflows 64 bits",
            ));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.begin("T1", "add").acquire("T1", "lock").read("T1", "v");
        b.write("T2", "v");
        b.release("T1", "lock").end("T1");
        b.fork("T1", "T3").join("T1", "T3");
        let mut t = b.finish();
        t.mark_synthesized(5);
        t.mark_synthesized(7);
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample_trace();
        let bytes = trace_to_vbt(&trace);
        assert!(is_vbt(&bytes));
        let back = read_vbt(&bytes[..]).unwrap();
        assert_eq!(back.ops(), trace.ops());
        assert_eq!(back.synthesized(), trace.synthesized());
        assert_eq!(back.to_json(), trace.to_json());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = Trace::new();
        let back = read_vbt(&trace_to_vbt(&trace)[..]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn multi_frame_traces_roundtrip() {
        let mut trace = Trace::new();
        for i in 0..3 * FRAME_OPS + 17 {
            trace.push(Op::Read {
                t: ThreadId::new((i % 7) as u32),
                x: VarId::new((i % 1000) as u32),
            });
        }
        let back = read_vbt(&trace_to_vbt(&trace)[..]).unwrap();
        assert_eq!(back.ops(), trace.ops());
    }

    #[test]
    fn streaming_reader_yields_ops_in_order() {
        let trace = sample_trace();
        let bytes = trace_to_vbt(&trace);
        let mut r = VbtReader::new(&bytes[..]).unwrap();
        assert_eq!(r.names().lock(LockId::new(0)), "lock");
        assert_eq!(r.synthesized(), trace.synthesized());
        let mut i = 0;
        while let Some(op) = r.next_op().unwrap() {
            assert_eq!(trace.get(i), Some(op));
            i += 1;
        }
        assert_eq!(i, trace.len());
        assert_eq!(r.ops_read(), trace.len());
    }

    #[test]
    fn bad_magic_is_rejected_at_byte_0() {
        let e = read_vbt(&b"JSON{\"ops\":[]}"[..]).unwrap_err();
        assert!(e.is_malformed());
        assert!(e.to_string().contains("byte 0"), "{e}");
        assert!(e.to_string().contains("magic"), "{e}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = trace_to_vbt(&sample_trace());
        bytes[4] = 9;
        let e = read_vbt(&bytes[..]).unwrap_err();
        assert!(e.to_string().contains("version 9"), "{e}");
        assert!(e.to_string().contains("byte 4"), "{e}");
    }

    #[test]
    fn truncation_anywhere_is_detected_with_an_offset() {
        let bytes = trace_to_vbt(&sample_trace());
        for cut in 0..bytes.len() - 1 {
            let e = read_vbt(&bytes[..cut]).unwrap_err();
            assert!(e.is_malformed(), "cut at {cut}: {e}");
            assert!(e.to_string().contains("byte"), "cut at {cut}: {e}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = trace_to_vbt(&sample_trace());
        bytes.push(0x42);
        let e = read_vbt(&bytes[..]).unwrap_err();
        assert!(e.to_string().contains("trailing data"), "{e}");
    }

    #[test]
    fn string_table_overflow_is_rejected_not_allocated() {
        // Header + a threads table claiming 2^30 entries.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        push_varint(&mut bytes, 1 << 30);
        let e = read_vbt(&bytes[..]).unwrap_err();
        assert!(e.to_string().contains("string-table overflow"), "{e}");

        // A single entry whose name claims to be 2 GiB long.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        push_varint(&mut bytes, 1); // one thread entry
        push_varint(&mut bytes, 0); // id 0
        push_varint(&mut bytes, 2 << 30); // 2 GiB name
        let e = read_vbt(&bytes[..]).unwrap_err();
        assert!(e.to_string().contains("string-table overflow"), "{e}");
    }

    #[test]
    fn oversized_frame_and_unknown_tag_are_rejected() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        for _ in 0..4 {
            push_varint(&mut bytes, 0);
        }
        push_varint(&mut bytes, 0); // no synthesized indices
        push_varint(&mut bytes, MAX_FRAME_LEN + 1);
        let e = read_vbt(&bytes[..]).unwrap_err();
        assert!(e.to_string().contains("exceeds"), "{e}");

        // Corrupt the first op's tag by locating its known encoding.
        let mut bytes = trace_to_vbt(&trace);
        let first = {
            let mut enc = Vec::new();
            push_op(&mut enc, trace.get(0).unwrap());
            enc
        };
        let pos = bytes
            .windows(first.len())
            .position(|w| w == first)
            .expect("first op encoding present");
        bytes[pos] = 0xEE;
        let e = read_vbt(&bytes[..]).unwrap_err();
        assert!(e.to_string().contains("unknown operation tag"), "{e}");
    }

    #[test]
    fn synthesized_out_of_bounds_is_rejected() {
        let mut trace = sample_trace();
        trace.mark_synthesized(trace.len() - 1);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        for _ in 0..4 {
            push_varint(&mut bytes, 0);
        }
        push_varint(&mut bytes, 1); // one synthesized index…
        push_varint(&mut bytes, 10); // …pointing past the single op below
        let mut body = Vec::new();
        push_varint(&mut body, 1);
        push_op(
            &mut body,
            Op::End {
                t: ThreadId::new(0),
            },
        );
        push_varint(&mut bytes, body.len() as u64);
        bytes.extend_from_slice(&body);
        bytes.push(0);
        let e = read_vbt(&bytes[..]).unwrap_err();
        assert!(e.to_string().contains("out of bounds"), "{e}");
    }

    #[test]
    fn vbt_is_much_smaller_than_json() {
        let trace = sample_trace();
        let json = trace.to_json();
        let vbt = trace_to_vbt(&trace);
        assert!(
            vbt.len() * 2 < json.len(),
            "vbt {} bytes vs json {} bytes",
            vbt.len(),
            json.len()
        );
    }
}
