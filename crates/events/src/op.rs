//! Operations performed by threads on the global store.
//!
//! This is the `Operation` domain of the paper's Figure 1, extended with
//! `Fork`/`Join` so that dynamic thread creation (which the paper models
//! "in a straightforward way" within its semantics) is explicit in traces.
//! Values carried by reads and writes are irrelevant to serializability and
//! are omitted; the simulator crate tracks them separately when it needs a
//! concrete global store.

use crate::ids::{Label, LockId, ThreadId, VarId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single operation on the global store, as observed by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// `rd(t, x, v)` — thread `t` reads variable `x`.
    Read {
        /// The reading thread.
        t: ThreadId,
        /// The variable read.
        x: VarId,
    },
    /// `wr(t, x, v)` — thread `t` writes variable `x`.
    Write {
        /// The writing thread.
        t: ThreadId,
        /// The variable written.
        x: VarId,
    },
    /// `acq(t, m)` — thread `t` acquires lock `m`.
    Acquire {
        /// The acquiring thread.
        t: ThreadId,
        /// The lock acquired.
        m: LockId,
    },
    /// `rel(t, m)` — thread `t` releases lock `m`.
    Release {
        /// The releasing thread.
        t: ThreadId,
        /// The lock released.
        m: LockId,
    },
    /// `begin_l(t)` — thread `t` enters an atomic block labeled `l`.
    Begin {
        /// The entering thread.
        t: ThreadId,
        /// The block's label.
        l: Label,
    },
    /// `end(t)` — thread `t` exits its innermost atomic block.
    End {
        /// The exiting thread.
        t: ThreadId,
    },
    /// Thread `t` starts thread `child`; orders everything `t` did so far
    /// before everything `child` does.
    Fork {
        /// The parent thread.
        t: ThreadId,
        /// The newly started thread.
        child: ThreadId,
    },
    /// Thread `t` waits for thread `child` to finish; orders everything
    /// `child` did before everything `t` does afterwards.
    Join {
        /// The waiting (parent) thread.
        t: ThreadId,
        /// The finished thread being joined.
        child: ThreadId,
    },
}

impl Op {
    /// Returns the thread that performs this operation (`tid(a)` in the
    /// paper). For `Fork`/`Join` this is the parent thread.
    pub fn tid(self) -> ThreadId {
        match self {
            Op::Read { t, .. }
            | Op::Write { t, .. }
            | Op::Acquire { t, .. }
            | Op::Release { t, .. }
            | Op::Begin { t, .. }
            | Op::End { t }
            | Op::Fork { t, .. }
            | Op::Join { t, .. } => t,
        }
    }

    /// Returns the variable this operation accesses, if any.
    pub fn var(self) -> Option<VarId> {
        match self {
            Op::Read { x, .. } | Op::Write { x, .. } => Some(x),
            _ => None,
        }
    }

    /// Returns the lock this operation manipulates, if any.
    pub fn lock(self) -> Option<LockId> {
        match self {
            Op::Acquire { m, .. } | Op::Release { m, .. } => Some(m),
            _ => None,
        }
    }

    /// Returns `true` for memory accesses (reads and writes).
    pub fn is_access(self) -> bool {
        matches!(self, Op::Read { .. } | Op::Write { .. })
    }

    /// Returns `true` for writes.
    pub fn is_write(self) -> bool {
        matches!(self, Op::Write { .. })
    }

    /// Returns `true` for `Begin`/`End` transaction markers.
    pub fn is_marker(self) -> bool {
        matches!(self, Op::Begin { .. } | Op::End { .. })
    }

    /// Decides whether two operations *conflict*, following the paper's
    /// Section 2 definition extended to fork/join:
    ///
    /// 1. they access the same variable and at least one access is a write;
    /// 2. they operate on the same lock;
    /// 3. they are performed by the same thread; or
    /// 4. one is a `Fork`/`Join` whose child is the thread performing the
    ///    other (thread-creation ordering).
    ///
    /// Operations that do not conflict commute: swapping them when adjacent
    /// in a trace yields an equivalent trace.
    pub fn conflicts_with(self, other: Op) -> bool {
        if self.tid() == other.tid() {
            return true;
        }
        if let (Some(x1), Some(x2)) = (self.var(), other.var()) {
            if x1 == x2 && (self.is_write() || other.is_write()) {
                return true;
            }
        }
        if let (Some(m1), Some(m2)) = (self.lock(), other.lock()) {
            if m1 == m2 {
                return true;
            }
        }
        let edge_child = |op: Op| match op {
            Op::Fork { child, .. } | Op::Join { child, .. } => Some(child),
            _ => None,
        };
        if let Some(c) = edge_child(self) {
            if c == other.tid() {
                return true;
            }
        }
        if let Some(c) = edge_child(other) {
            if c == self.tid() {
                return true;
            }
        }
        false
    }

    /// Returns `true` if the two operations commute (do not conflict).
    pub fn commutes_with(self, other: Op) -> bool {
        !self.conflicts_with(other)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read { t, x } => write!(f, "rd({t}, {x})"),
            Op::Write { t, x } => write!(f, "wr({t}, {x})"),
            Op::Acquire { t, m } => write!(f, "acq({t}, {m})"),
            Op::Release { t, m } => write!(f, "rel({t}, {m})"),
            Op::Begin { t, l } => write!(f, "begin_{l}({t})"),
            Op::End { t } => write!(f, "end({t})"),
            Op::Fork { t, child } => write!(f, "fork({t}, {child})"),
            Op::Join { t, child } => write!(f, "join({t}, {child})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    #[test]
    fn same_thread_always_conflicts() {
        let a = Op::Read { t: t(0), x: x(0) };
        let b = Op::Begin {
            t: t(0),
            l: Label::new(0),
        };
        assert!(a.conflicts_with(b));
        assert!(b.conflicts_with(a));
    }

    #[test]
    fn read_read_commutes_across_threads() {
        let a = Op::Read { t: t(0), x: x(0) };
        let b = Op::Read { t: t(1), x: x(0) };
        assert!(a.commutes_with(b));
    }

    #[test]
    fn write_read_same_var_conflicts() {
        let a = Op::Write { t: t(0), x: x(0) };
        let b = Op::Read { t: t(1), x: x(0) };
        assert!(a.conflicts_with(b));
        assert!(b.conflicts_with(a));
    }

    #[test]
    fn write_write_different_vars_commute() {
        let a = Op::Write { t: t(0), x: x(0) };
        let b = Op::Write { t: t(1), x: x(1) };
        assert!(a.commutes_with(b));
    }

    #[test]
    fn same_lock_conflicts_across_threads() {
        let a = Op::Release { t: t(0), m: m(0) };
        let b = Op::Acquire { t: t(1), m: m(0) };
        assert!(a.conflicts_with(b));
        let c = Op::Acquire { t: t(1), m: m(1) };
        assert!(a.commutes_with(c));
    }

    #[test]
    fn fork_conflicts_with_child_ops() {
        let f = Op::Fork {
            t: t(0),
            child: t(1),
        };
        let childs = Op::Read { t: t(1), x: x(0) };
        let others = Op::Read { t: t(2), x: x(0) };
        assert!(f.conflicts_with(childs));
        assert!(childs.conflicts_with(f));
        assert!(f.commutes_with(others));
    }

    #[test]
    fn join_conflicts_with_child_ops() {
        let j = Op::Join {
            t: t(0),
            child: t(1),
        };
        let childs = Op::Write { t: t(1), x: x(0) };
        assert!(j.conflicts_with(childs));
        assert!(childs.conflicts_with(j));
    }

    #[test]
    fn accessors() {
        let a = Op::Write { t: t(3), x: x(9) };
        assert_eq!(a.tid(), t(3));
        assert_eq!(a.var(), Some(x(9)));
        assert_eq!(a.lock(), None);
        assert!(a.is_access() && a.is_write() && !a.is_marker());
        let b = Op::Begin {
            t: t(1),
            l: Label::new(4),
        };
        assert!(b.is_marker() && !b.is_access());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Op::Read { t: t(1), x: x(2) }.to_string(), "rd(T1, x2)");
        assert_eq!(
            Op::Begin {
                t: t(0),
                l: Label::new(3)
            }
            .to_string(),
            "begin_L3(T0)"
        );
        assert_eq!(
            Op::Fork {
                t: t(0),
                child: t(1)
            }
            .to_string(),
            "fork(T0, T1)"
        );
    }
}
