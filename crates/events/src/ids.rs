//! Identifier newtypes for the entities appearing in a trace.
//!
//! The paper's semantics (Figure 1) ranges over thread identifiers `t ∈ Tid`,
//! variables `x ∈ Var`, locks `m ∈ Lock`, and atomic-block labels `l ∈ Label`.
//! Each is a dense small integer here so that analyses can use them as direct
//! indices into per-entity tables. Human-readable names live in a side
//! [`SymbolTable`] so the hot path never touches strings.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its dense index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the dense index backing this identifier.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// A thread identifier (`t ∈ Tid`).
    ThreadId,
    "T"
);
id_type!(
    /// A shared-variable identifier (`x ∈ Var`).
    ///
    /// A variable stands for any memory location the monitored program can
    /// read or write: a field, a static, or an array element flattened to a
    /// scalar location.
    VarId,
    "x"
);
id_type!(
    /// A lock identifier (`m ∈ Lock`).
    LockId,
    "m"
);
id_type!(
    /// A label identifying a particular atomic block (`l ∈ Label`).
    ///
    /// Labels name the syntactic atomic block (typically a method declared
    /// `atomic`) so that warnings can be attributed to source constructs.
    Label,
    "L"
);

/// Maps identifiers back to human-readable names for error reports.
///
/// All lookups fall back to the identifier's `Display` form (`T0`, `x3`, …)
/// when no name was registered, so reports always render.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SymbolTable {
    threads: HashMap<u32, String>,
    vars: HashMap<u32, String>,
    locks: HashMap<u32, String>,
    labels: HashMap<u32, String>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a display name for a thread.
    pub fn name_thread(&mut self, t: ThreadId, name: impl Into<String>) {
        self.threads.insert(t.raw(), name.into());
    }

    /// Registers a display name for a variable.
    pub fn name_var(&mut self, x: VarId, name: impl Into<String>) {
        self.vars.insert(x.raw(), name.into());
    }

    /// Registers a display name for a lock.
    pub fn name_lock(&mut self, m: LockId, name: impl Into<String>) {
        self.locks.insert(m.raw(), name.into());
    }

    /// Registers a display name for an atomic-block label.
    pub fn name_label(&mut self, l: Label, name: impl Into<String>) {
        self.labels.insert(l.raw(), name.into());
    }

    /// Returns the display name of a thread.
    pub fn thread(&self, t: ThreadId) -> String {
        self.threads
            .get(&t.raw())
            .cloned()
            .unwrap_or_else(|| t.to_string())
    }

    /// Returns the display name of a variable.
    pub fn var(&self, x: VarId) -> String {
        self.vars
            .get(&x.raw())
            .cloned()
            .unwrap_or_else(|| x.to_string())
    }

    /// Returns the display name of a lock.
    pub fn lock(&self, m: LockId) -> String {
        self.locks
            .get(&m.raw())
            .cloned()
            .unwrap_or_else(|| m.to_string())
    }

    /// Returns the display name of a label.
    pub fn label(&self, l: Label) -> String {
        self.labels
            .get(&l.raw())
            .cloned()
            .unwrap_or_else(|| l.to_string())
    }

    fn sorted_entries(map: &HashMap<u32, String>) -> Vec<(u32, &str)> {
        let mut entries: Vec<(u32, &str)> = map.iter().map(|(&k, v)| (k, v.as_str())).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        entries
    }

    /// Registered `(id, name)` pairs for threads, sorted by id. Used by
    /// serializers that need a deterministic iteration order.
    pub fn thread_entries(&self) -> Vec<(u32, &str)> {
        Self::sorted_entries(&self.threads)
    }

    /// Registered `(id, name)` pairs for variables, sorted by id.
    pub fn var_entries(&self) -> Vec<(u32, &str)> {
        Self::sorted_entries(&self.vars)
    }

    /// Registered `(id, name)` pairs for locks, sorted by id.
    pub fn lock_entries(&self) -> Vec<(u32, &str)> {
        Self::sorted_entries(&self.locks)
    }

    /// Registered `(id, name)` pairs for labels, sorted by id.
    pub fn label_entries(&self) -> Vec<(u32, &str)> {
        Self::sorted_entries(&self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let t = ThreadId::new(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.raw(), 7);
        assert_eq!(ThreadId::from(7), t);
    }

    #[test]
    fn id_display_uses_prefix() {
        assert_eq!(ThreadId::new(2).to_string(), "T2");
        assert_eq!(VarId::new(0).to_string(), "x0");
        assert_eq!(LockId::new(5).to_string(), "m5");
        assert_eq!(Label::new(1).to_string(), "L1");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(VarId::new(1) < VarId::new(2));
    }

    #[test]
    fn symbol_table_falls_back_to_display() {
        let mut names = SymbolTable::new();
        names.name_thread(ThreadId::new(0), "main");
        assert_eq!(names.thread(ThreadId::new(0)), "main");
        assert_eq!(names.thread(ThreadId::new(1)), "T1");
        assert_eq!(names.var(VarId::new(3)), "x3");
    }

    #[test]
    fn symbol_table_serde_roundtrip() {
        let mut names = SymbolTable::new();
        names.name_var(VarId::new(1), "Set.elems");
        names.name_lock(LockId::new(0), "this");
        let json = serde_json::to_string(&names).unwrap();
        let back: SymbolTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.var(VarId::new(1)), "Set.elems");
        assert_eq!(back.lock(LockId::new(0)), "this");
    }
}
