//! Offline serializability oracle.
//!
//! This module decides conflict-serializability of a *complete* trace from
//! first principles, independently of the online Velodrome analysis, so it
//! can serve as differential-testing ground truth:
//!
//! * [`check`] builds the full transaction conflict graph — an edge `A → B`
//!   for every pair of conflicting operations `a ∈ A`, `b ∈ B`, `a` before
//!   `b`, `A ≠ B` — and reports a cycle if one exists. By the classical
//!   database result (Bernstein et al.) the trace is serializable iff this
//!   graph is acyclic. This implementation is deliberately naive (`O(n²)`
//!   over operations) and shares no code with the online analysis.
//! * [`serial_equivalent_exists`] exhaustively searches the space of traces
//!   reachable by swapping adjacent commuting operations, looking for a
//!   serial one — a direct transcription of the *definition* of
//!   serializability, usable only on tiny traces.

use crate::op::Op;
use crate::trace::Trace;
use crate::txn::{Transactions, TxnId};
use std::collections::{HashSet, VecDeque};

/// Outcome of the offline serializability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializabilityResult {
    /// `true` when the trace is conflict-serializable.
    pub serializable: bool,
    /// A witness cycle of transactions when not serializable
    /// (`cycle[i] → cycle[i+1]`, and the last element points back to the
    /// first).
    pub cycle: Option<Vec<TxnId>>,
}

/// Decides conflict-serializability of `trace` by building the full
/// transaction conflict graph and searching for a cycle.
///
/// # Examples
///
/// ```
/// use velodrome_events::{oracle, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// b.begin("T1", "inc").read("T1", "x");
/// b.write("T2", "x");
/// b.write("T1", "x").end("T1");
/// let result = oracle::check(&b.finish());
/// assert!(!result.serializable);
/// assert_eq!(result.cycle.unwrap().len(), 2);
/// ```
pub fn check(trace: &Trace) -> SerializabilityResult {
    let txns = Transactions::segment(trace);
    check_segmented(trace, &txns)
}

/// [`check`] with a precomputed transaction segmentation.
pub fn check_segmented(trace: &Trace, txns: &Transactions) -> SerializabilityResult {
    let n = txns.len();
    let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    let ops = trace.ops();
    for i in 0..ops.len() {
        for j in (i + 1)..ops.len() {
            let (ti, tj) = (txns.txn_of(i), txns.txn_of(j));
            if ti != tj && ops[i].conflicts_with(ops[j]) {
                adj[ti.index()].insert(tj.index() as u32);
            }
        }
    }
    match find_cycle(&adj) {
        Some(cycle) => SerializabilityResult {
            serializable: false,
            cycle: Some(cycle.into_iter().map(TxnId::new).collect()),
        },
        None => SerializabilityResult {
            serializable: true,
            cycle: None,
        },
    }
}

/// Convenience wrapper: `true` iff `trace` is conflict-serializable.
pub fn is_serializable(trace: &Trace) -> bool {
    check(trace).serializable
}

/// Iterative three-color DFS returning a witness cycle, if any.
fn find_cycle(adj: &[HashSet<u32>]) -> Option<Vec<u32>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = adj.len();
    let mut color = vec![Color::White; n];
    let mut parent: Vec<Option<u32>> = vec![None; n];

    for root in 0..n {
        if color[root] != Color::White {
            continue;
        }
        // Stack holds (node, iterator position over its successors).
        let mut stack: Vec<(u32, Vec<u32>, usize)> = Vec::new();
        let mut succs: Vec<u32> = adj[root].iter().copied().collect();
        succs.sort_unstable();
        color[root] = Color::Gray;
        stack.push((root as u32, succs, 0));
        while let Some((node, succs, pos)) = stack.last_mut() {
            if *pos >= succs.len() {
                color[*node as usize] = Color::Black;
                stack.pop();
                continue;
            }
            let next = succs[*pos];
            *pos += 1;
            match color[next as usize] {
                Color::White => {
                    parent[next as usize] = Some(*node);
                    color[next as usize] = Color::Gray;
                    let mut s: Vec<u32> = adj[next as usize].iter().copied().collect();
                    s.sort_unstable();
                    stack.push((next, s, 0));
                }
                Color::Gray => {
                    // Found a back edge node -> next; reconstruct the cycle.
                    let mut cycle = vec![next];
                    let mut cur = *node;
                    while cur != next {
                        cycle.push(cur);
                        cur = parent[cur as usize].expect("gray node must have parent on path");
                    }
                    cycle.reverse();
                    return Some(cycle);
                }
                Color::Black => {}
            }
        }
    }
    None
}

/// Returns `true` when every transaction's operations are contiguous in the
/// trace (the paper's definition of a *serial* trace).
pub fn is_serial(trace: &Trace) -> bool {
    let txns = Transactions::segment(trace);
    let mut finished: HashSet<TxnId> = HashSet::new();
    let mut current: Option<TxnId> = None;
    for i in 0..trace.len() {
        let t = txns.txn_of(i);
        if current == Some(t) {
            continue;
        }
        if finished.contains(&t) {
            return false;
        }
        if let Some(prev) = current {
            finished.insert(prev);
        }
        current = Some(t);
    }
    true
}

/// Error returned by [`serial_equivalent_exists`] when the search space is
/// too large to enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudgetExceeded;

impl std::fmt::Display for SearchBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "brute-force serializability search budget exceeded")
    }
}

impl std::error::Error for SearchBudgetExceeded {}

/// Exhaustively decides serializability *by definition*: breadth-first search
/// over all traces reachable by swapping adjacent commuting operations,
/// returning `Ok(true)` if any reachable trace is serial.
///
/// Only suitable for very small traces; `max_states` bounds the number of
/// distinct permutations visited before giving up with
/// [`SearchBudgetExceeded`].
pub fn serial_equivalent_exists(
    trace: &Trace,
    max_states: usize,
) -> Result<bool, SearchBudgetExceeded> {
    let initial: Vec<Op> = trace.ops().to_vec();
    if is_serial_ops(&initial) {
        return Ok(true);
    }
    let mut seen: HashSet<Vec<Op>> = HashSet::new();
    let mut queue: VecDeque<Vec<Op>> = VecDeque::new();
    seen.insert(initial.clone());
    queue.push_back(initial);
    while let Some(ops) = queue.pop_front() {
        for i in 0..ops.len().saturating_sub(1) {
            if ops[i].commutes_with(ops[i + 1]) {
                let mut next = ops.clone();
                next.swap(i, i + 1);
                if seen.contains(&next) {
                    continue;
                }
                if is_serial_ops(&next) {
                    return Ok(true);
                }
                if seen.len() >= max_states {
                    return Err(SearchBudgetExceeded);
                }
                seen.insert(next.clone());
                queue.push_back(next);
            }
        }
    }
    Ok(false)
}

fn is_serial_ops(ops: &[Op]) -> bool {
    is_serial(&Trace::from_ops(ops.iter().copied()))
}

/// An operation identified as the `k`-th operation of a transaction,
/// which is stable across reorderings of whole transactions.
type OpKey = (u32, u32);

/// The reads-from and final-write structure of a trace, used to decide
/// *view* equivalence.
#[derive(Debug, PartialEq, Eq)]
struct ViewStructure {
    /// For each read: the write it reads from, or `None` for the
    /// initial value.
    reads_from: Vec<(OpKey, Option<OpKey>)>,
    /// Final writer per variable.
    final_writes: Vec<(u32, OpKey)>,
}

fn view_structure(ops: &[(Op, u32, u32)]) -> ViewStructure {
    use std::collections::HashMap;
    let mut last_write: HashMap<u32, (u32, u32)> = HashMap::new();
    let mut reads_from = Vec::new();
    for &(op, txn, k) in ops {
        match op {
            Op::Read { x, .. } => {
                reads_from.push(((txn, k), last_write.get(&x.raw()).copied()));
            }
            Op::Write { x, .. } => {
                last_write.insert(x.raw(), (txn, k));
            }
            _ => {}
        }
    }
    let mut final_writes: Vec<(u32, (u32, u32))> = last_write.into_iter().collect();
    final_writes.sort_unstable();
    reads_from.sort_unstable();
    ViewStructure {
        reads_from,
        final_writes,
    }
}

/// Decides *view serializability* by brute force: does some serial order of
/// the transactions have the same reads-from relation and the same final
/// writes as the observed trace?
///
/// View serializability is strictly weaker than conflict serializability
/// (blind writes can make a conflict-cyclic trace view-serializable); the
/// paper's related work (Wang & Stoller) distinguishes the corresponding
/// notions of conflict- and view-atomicity. Deciding it is NP-complete, so
/// this enumerates all `n!` transaction orders and is only usable for tiny
/// traces; `max_orders` bounds the enumeration.
pub fn view_serializable(trace: &Trace, max_orders: usize) -> Result<bool, SearchBudgetExceeded> {
    let txns = Transactions::segment(trace);
    let n = txns.len();
    // Tag every op with (txn, position-within-txn).
    let mut within: std::collections::HashMap<TxnId, u32> = std::collections::HashMap::new();
    let tagged: Vec<(Op, u32, u32)> = trace
        .iter()
        .map(|(i, op)| {
            let t = txns.txn_of(i);
            let k = within.entry(t).or_insert(0);
            let tag = (op, t.index() as u32, *k);
            *k += 1;
            tag
        })
        .collect();
    let original = view_structure(&tagged);

    // Group ops per transaction, in order.
    let mut per_txn: Vec<Vec<(Op, u32, u32)>> = vec![Vec::new(); n];
    for &t in &tagged {
        per_txn[t.1 as usize].push(t);
    }

    // Heap's algorithm over transaction orderings.
    let mut order: Vec<usize> = (0..n).collect();
    let mut c = vec![0usize; n];
    let mut tried = 0usize;
    let check = |order: &[usize]| -> bool {
        let serial: Vec<(Op, u32, u32)> = order
            .iter()
            .flat_map(|&t| per_txn[t].iter().copied())
            .collect();
        view_structure(&serial) == original
    };
    if check(&order) {
        return Ok(true);
    }
    tried += 1;
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                order.swap(0, i);
            } else {
                order.swap(c[i], i);
            }
            if check(&order) {
                return Ok(true);
            }
            tried += 1;
            if tried >= max_orders {
                return Err(SearchBudgetExceeded);
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    Ok(false)
}

/// Exhaustively decides whether transaction `txn` is *self-serializable* in
/// `trace` (Section 4.3): does some equivalent trace execute `txn`'s
/// operations contiguously? Other transactions need not be serial in that
/// witness, so self-serializability of every transaction does **not** imply
/// serializability of the trace.
///
/// Breadth-first search over adjacent commuting swaps, bounded by
/// `max_states` distinct permutations.
pub fn self_serializable(
    trace: &Trace,
    txn: TxnId,
    max_states: usize,
) -> Result<bool, SearchBudgetExceeded> {
    let txns = Transactions::segment(trace);
    // Tag each operation with its transaction so permutations keep
    // operation identity (same-thread order is preserved by commuting
    // swaps, so the tagging stays consistent).
    let initial: Vec<(Op, u32)> = trace
        .iter()
        .map(|(i, op)| (op, txns.txn_of(i).index() as u32))
        .collect();
    let target = txn.index() as u32;
    let contiguous = |state: &[(Op, u32)]| {
        let mut seen_block = false;
        let mut inside = false;
        for (_, t) in state {
            if *t == target {
                if seen_block && !inside {
                    return false;
                }
                seen_block = true;
                inside = true;
            } else {
                inside = false;
            }
        }
        true
    };
    if contiguous(&initial) {
        return Ok(true);
    }
    let mut seen: HashSet<Vec<(Op, u32)>> = HashSet::new();
    let mut queue: VecDeque<Vec<(Op, u32)>> = VecDeque::new();
    seen.insert(initial.clone());
    queue.push_back(initial);
    while let Some(state) = queue.pop_front() {
        for i in 0..state.len().saturating_sub(1) {
            if state[i].0.commutes_with(state[i + 1].0) {
                let mut next = state.clone();
                next.swap(i, i + 1);
                if seen.contains(&next) {
                    continue;
                }
                if contiguous(&next) {
                    return Ok(true);
                }
                if seen.len() >= max_states {
                    return Err(SearchBudgetExceeded);
                }
                seen.insert(next.clone());
                queue.push_back(next);
            }
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn rmw_interleaved() -> Trace {
        // Section 2 example: read-modify-write with interleaved write.
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc").read("T1", "x");
        b.write("T2", "x");
        b.write("T1", "x").end("T1");
        b.finish()
    }

    #[test]
    fn rmw_interleaved_not_serializable() {
        let trace = rmw_interleaved();
        let result = check(&trace);
        assert!(!result.serializable);
        let cycle = result.cycle.unwrap();
        assert!(cycle.len() >= 2);
    }

    #[test]
    fn rmw_matches_bruteforce_definition() {
        let trace = rmw_interleaved();
        assert_eq!(serial_equivalent_exists(&trace, 100_000), Ok(false));
    }

    #[test]
    fn serial_trace_is_serializable() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc")
            .read("T1", "x")
            .write("T1", "x")
            .end("T1");
        b.begin("T2", "inc")
            .read("T2", "x")
            .write("T2", "x")
            .end("T2");
        let trace = b.finish();
        assert!(is_serial(&trace));
        assert!(is_serializable(&trace));
    }

    #[test]
    fn commutable_interleaving_is_serializable_but_not_serial() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "p").read("T1", "x");
        b.write("T2", "y"); // touches a different variable: commutes
        b.write("T1", "x").end("T1");
        let trace = b.finish();
        assert!(!is_serial(&trace));
        let result = check(&trace);
        assert!(result.serializable);
        assert_eq!(serial_equivalent_exists(&trace, 100_000), Ok(true));
    }

    #[test]
    fn lock_protected_increments_are_serializable() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc").acquire("T1", "m").read("T1", "x");
        b.write("T1", "x").release("T1", "m").end("T1");
        b.begin("T2", "inc").acquire("T2", "m").read("T2", "x");
        b.write("T2", "x").release("T2", "m").end("T2");
        assert!(is_serializable(&b.finish()));
    }

    #[test]
    fn paper_cycle_minimal() {
        // Minimal three-transaction cycle in the spirit of the introduction:
        // A -> B via rel/acq(m), B -> C via wr/rd(y), C -> A via wr/rd(x).
        let mut b = TraceBuilder::new();
        b.begin("T1", "A").acquire("T1", "m").release("T1", "m"); // A releases m
        b.begin("T2", "B")
            .acquire("T2", "m")
            .write("T2", "y")
            .end("T2"); // B
        b.begin("T3", "C")
            .read("T3", "y")
            .write("T3", "x")
            .end("T3"); // C
        b.read("T1", "x").end("T1"); // A reads x written by C
        let trace = b.finish();
        let result = check(&trace);
        assert!(!result.serializable);
        assert_eq!(result.cycle.as_ref().unwrap().len(), 3);
    }

    #[test]
    fn self_serializable_pair_is_not_serializable_together() {
        // Section 4.3: two transactions, each self-serializable, whose
        // combination is not serializable. E: rd x .. wr y interleaved with
        // D: wr x .. rd y — each can be serialized on its own but the pair
        // forms a two-cycle.
        let mut b = TraceBuilder::new();
        b.begin("T1", "E").read("T1", "x");
        b.begin("T2", "D")
            .write("T2", "x")
            .read("T2", "y")
            .end("T2");
        b.write("T1", "y").end("T1");
        let trace = b.finish();
        let result = check(&trace);
        assert!(!result.serializable);
        assert_eq!(serial_equivalent_exists(&trace, 1_000_000), Ok(false));
    }

    #[test]
    fn fork_join_orders_transactions() {
        // Parent writes x, forks child which reads x: ordered, serializable.
        let mut b = TraceBuilder::new();
        b.write("T1", "x")
            .fork("T1", "T2")
            .read("T2", "x")
            .join("T1", "T2");
        b.read("T1", "x");
        assert!(is_serializable(&b.finish()));
    }

    #[test]
    fn empty_trace_is_serializable() {
        assert!(is_serializable(&Trace::new()));
        assert!(is_serial(&Trace::new()));
    }

    #[test]
    fn bruteforce_budget_error() {
        // A long trace of pairwise-commuting ops explodes combinatorially.
        let mut b = TraceBuilder::new();
        for i in 0..4 {
            for t in 0..4 {
                b.read(&format!("T{t}"), &format!("v{t}_{i}"));
            }
        }
        // Make it non-serial so the early return does not trigger.
        b.begin("T0", "p").read("T0", "a");
        b.read("T1", "b");
        b.read("T0", "a").end("T0");
        let trace = b.finish();
        assert_eq!(
            serial_equivalent_exists(&trace, 10),
            Err(SearchBudgetExceeded)
        );
    }

    #[test]
    fn self_serializable_distinguishes_transactions() {
        // Section 4.3 paper shape: E: rd x .. wr y interleaved with
        // D: wr x .. rd y — D is not self-serializable, while the write by
        // another thread is trivially self-serializable (unary).
        let mut b = TraceBuilder::new();
        b.begin("T1", "D").read("T1", "x");
        b.write("T2", "x");
        b.write("T1", "x").end("T1");
        let trace = b.finish();
        // txn0 = D, txn1 = unary write.
        assert_eq!(
            self_serializable(&trace, TxnId::new(0), 1_000_000),
            Ok(false)
        );
        assert_eq!(
            self_serializable(&trace, TxnId::new(1), 1_000_000),
            Ok(true)
        );
    }

    #[test]
    fn self_serializable_pair_both_self_serializable() {
        // The Section 4.3 example: both transactions are self-serializable
        // even though together they are not serializable.
        let mut b = TraceBuilder::new();
        b.begin("T1", "D").write("T1", "x");
        b.begin("T2", "E").write("T2", "y");
        b.read("T1", "y").end("T1");
        b.read("T2", "x").end("T2");
        let trace = b.finish();
        assert!(!is_serializable(&trace));
        assert_eq!(
            self_serializable(&trace, TxnId::new(0), 1_000_000),
            Ok(true)
        );
        assert_eq!(
            self_serializable(&trace, TxnId::new(1), 1_000_000),
            Ok(true)
        );
    }

    #[test]
    fn self_serializable_in_serial_trace() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "p").read("T1", "x").end("T1");
        b.begin("T2", "q").write("T2", "x").end("T2");
        let trace = b.finish();
        assert_eq!(self_serializable(&trace, TxnId::new(0), 1_000), Ok(true));
        assert_eq!(self_serializable(&trace, TxnId::new(1), 1_000), Ok(true));
    }

    #[test]
    fn blind_writes_separate_view_from_conflict_serializability() {
        // The classic example: T1 = {rd x, wr x}, T2 = {wr x}, T3 = {wr x},
        // interleaved rd1 wr2 wr1 wr3. Conflict-cyclic (T1 ⇄ T2), but the
        // serial order T1 T2 T3 preserves reads-from (rd1 reads the initial
        // value) and the final write (T3): view-serializable.
        let mut b = TraceBuilder::new();
        b.begin("T1", "a").read("T1", "x");
        b.begin("T2", "b").write("T2", "x").end("T2");
        b.write("T1", "x").end("T1");
        b.begin("T3", "c").write("T3", "x").end("T3");
        let trace = b.finish();
        assert!(!is_serializable(&trace), "conflict-cyclic");
        assert_eq!(
            view_serializable(&trace, 1_000_000),
            Ok(true),
            "but view-serializable"
        );
    }

    #[test]
    fn conflict_serializable_implies_view_serializable() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "p").read("T1", "x");
        b.write("T2", "y");
        b.write("T1", "x").end("T1");
        let trace = b.finish();
        assert!(is_serializable(&trace));
        assert_eq!(view_serializable(&trace, 1_000_000), Ok(true));
    }

    #[test]
    fn rmw_is_not_view_serializable_either() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "inc").read("T1", "x");
        b.write("T2", "x");
        b.write("T1", "x").end("T1");
        let trace = b.finish();
        // The interleaved write changes what a serial T1 would read.
        assert_eq!(view_serializable(&trace, 1_000_000), Ok(false));
    }

    #[test]
    fn view_budget_is_enforced() {
        let mut b = TraceBuilder::new();
        for t in 0..8 {
            let name = format!("T{t}");
            b.begin(&name, "w").write(&name, "x").end(&name);
        }
        b.begin("T0", "q").read("T0", "x");
        b.write("T1", "x");
        b.write("T0", "x").end("T0");
        let trace = b.finish();
        assert_eq!(view_serializable(&trace, 10), Err(SearchBudgetExceeded));
    }

    #[test]
    fn oracle_agrees_with_bruteforce_on_small_cases() {
        let cases: Vec<Trace> = vec![
            rmw_interleaved(),
            {
                let mut b = TraceBuilder::new();
                b.begin("T1", "p").read("T1", "x");
                b.write("T2", "y");
                b.write("T1", "x").end("T1");
                b.finish()
            },
            {
                let mut b = TraceBuilder::new();
                b.begin("T1", "p").write("T1", "x").end("T1");
                b.begin("T2", "q").read("T2", "x").end("T2");
                b.finish()
            },
        ];
        for trace in cases {
            let fast = is_serializable(&trace);
            let slow = serial_equivalent_exists(&trace, 1_000_000).unwrap();
            assert_eq!(fast, slow, "oracle mismatch on trace:\n{trace}");
        }
    }
}
