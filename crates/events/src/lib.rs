//! Event model and trace semantics for the Velodrome atomicity checker.
//!
//! This crate defines the shared vocabulary of the whole workspace:
//!
//! * [`ids`] — identifier newtypes for threads, variables, locks, and
//!   atomic-block labels, plus a [`SymbolTable`] for report rendering;
//! * [`op`] — the [`Op`] operation type (Figure 1 of the paper) and the
//!   conflict/commutativity predicate (Section 2);
//! * [`trace`] — [`Trace`] sequences and the name-interning
//!   [`TraceBuilder`];
//! * [`semantics`] — well-formedness of traces under the multithreaded
//!   semantics (lock discipline, block nesting, fork/join ordering);
//! * [`txn`] — segmentation of a trace into transactions
//!   ([`Transactions`]);
//! * [`oracle`] — an offline, from-first-principles serializability
//!   decision procedure used as differential-testing ground truth;
//! * [`stream`] — incremental JSON trace ingestion with byte-offset
//!   error reporting and bounded memory;
//! * [`vbt`] — the compact VBT binary trace format (varint ops, string
//!   tables, length-prefixed frames) with a streaming reader and writer.
//!
//! # Example
//!
//! ```
//! use velodrome_events::{oracle, TraceBuilder};
//!
//! // An interleaved read-modify-write is not serializable.
//! let mut b = TraceBuilder::new();
//! b.begin("T1", "inc").read("T1", "x");
//! b.write("T2", "x");
//! b.write("T1", "x").end("T1");
//! assert!(!oracle::is_serializable(&b.finish()));
//! ```

#![warn(missing_docs)]

pub mod ids;
pub mod op;
pub mod oracle;
pub mod semantics;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod txn;
pub mod vbt;

pub use ids::{Label, LockId, SymbolTable, ThreadId, VarId};
pub use op::Op;
pub use stats::TraceStats;
pub use stream::{read_json_trace, scan_json_trace, JsonTraceSummary, TraceReadError};
pub use trace::{Trace, TraceBuilder};
pub use txn::{Transactions, TxnId, TxnInfo};
pub use vbt::{is_vbt, read_vbt, trace_to_vbt, write_vbt, VbtReader};
