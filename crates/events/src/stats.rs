//! Descriptive statistics over traces, for reports and diagnostics.

use crate::op::Op;
use crate::trace::Trace;
use crate::txn::Transactions;
use std::collections::HashSet;
use std::fmt;

/// Summary statistics of a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total operations.
    pub ops: usize,
    /// Memory reads.
    pub reads: usize,
    /// Memory writes.
    pub writes: usize,
    /// Lock acquires.
    pub acquires: usize,
    /// Lock releases.
    pub releases: usize,
    /// Atomic-block entries.
    pub begins: usize,
    /// Atomic-block exits.
    pub ends: usize,
    /// Thread forks.
    pub forks: usize,
    /// Thread joins.
    pub joins: usize,
    /// Distinct threads.
    pub threads: usize,
    /// Distinct variables accessed.
    pub vars: usize,
    /// Distinct locks used.
    pub locks: usize,
    /// Total transactions (including unary).
    pub transactions: usize,
    /// Unary transactions (operations outside atomic blocks).
    pub unary_transactions: usize,
    /// Largest number of operations in one transaction.
    pub max_transaction_ops: usize,
    /// Deepest atomic-block nesting observed.
    pub max_nesting: usize,
}

impl TraceStats {
    /// Computes statistics for a trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use velodrome_events::{TraceBuilder, TraceStats};
    ///
    /// let mut b = TraceBuilder::new();
    /// b.begin("T1", "m").read("T1", "x").end("T1");
    /// b.write("T2", "x");
    /// let stats = TraceStats::compute(&b.finish());
    /// assert_eq!(stats.transactions, 2);
    /// assert_eq!(stats.unary_transactions, 1);
    /// ```
    pub fn compute(trace: &Trace) -> Self {
        let mut s = TraceStats {
            ops: trace.len(),
            ..TraceStats::default()
        };
        let mut vars = HashSet::new();
        let mut locks = HashSet::new();
        let mut depth: std::collections::HashMap<_, usize> = std::collections::HashMap::new();
        for (_, op) in trace.iter() {
            if let Some(x) = op.var() {
                vars.insert(x);
            }
            if let Some(m) = op.lock() {
                locks.insert(m);
            }
            match op {
                Op::Read { .. } => s.reads += 1,
                Op::Write { .. } => s.writes += 1,
                Op::Acquire { .. } => s.acquires += 1,
                Op::Release { .. } => s.releases += 1,
                Op::Begin { t, .. } => {
                    s.begins += 1;
                    let d = depth.entry(t).or_insert(0);
                    *d += 1;
                    s.max_nesting = s.max_nesting.max(*d);
                }
                Op::End { t } => {
                    s.ends += 1;
                    let d = depth.entry(t).or_insert(0);
                    *d = d.saturating_sub(1);
                }
                Op::Fork { .. } => s.forks += 1,
                Op::Join { .. } => s.joins += 1,
            }
        }
        s.threads = trace.threads().len();
        s.vars = vars.len();
        s.locks = locks.len();
        let txns = Transactions::segment(trace);
        s.transactions = txns.len();
        s.unary_transactions = txns.txns().iter().filter(|t| t.unary).count();
        s.max_transaction_ops = txns.txns().iter().map(|t| t.op_count).max().unwrap_or(0);
        s
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ops: {} rd, {} wr, {} acq, {} rel, {} begin, {} end, {} fork, {} join",
            self.ops,
            self.reads,
            self.writes,
            self.acquires,
            self.releases,
            self.begins,
            self.ends,
            self.forks,
            self.joins
        )?;
        writeln!(
            f,
            "{} threads, {} variables, {} locks",
            self.threads, self.vars, self.locks
        )?;
        write!(
            f,
            "{} transactions ({} unary), largest {} ops, max nesting {}",
            self.transactions, self.unary_transactions, self.max_transaction_ops, self.max_nesting
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn counts_every_kind() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "p").begin("T1", "q");
        b.acquire("T1", "m")
            .read("T1", "x")
            .write("T1", "x")
            .release("T1", "m");
        b.end("T1").end("T1");
        b.fork("T1", "T2").read("T2", "y").join("T1", "T2");
        let stats = TraceStats::compute(&b.finish());
        assert_eq!(stats.ops, 11);
        assert_eq!((stats.reads, stats.writes), (2, 1));
        assert_eq!((stats.acquires, stats.releases), (1, 1));
        assert_eq!((stats.begins, stats.ends), (2, 2));
        assert_eq!((stats.forks, stats.joins), (1, 1));
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.vars, 2);
        assert_eq!(stats.locks, 1);
        assert_eq!(stats.max_nesting, 2);
        // One 8-op transaction plus fork/read/join unary transactions.
        assert_eq!(stats.transactions, 4);
        assert_eq!(stats.unary_transactions, 3);
        assert_eq!(stats.max_transaction_ops, 8);
    }

    #[test]
    fn empty_trace() {
        let stats = TraceStats::compute(&Trace::new());
        assert_eq!(stats, TraceStats::default());
    }

    #[test]
    fn display_is_compact() {
        let mut b = TraceBuilder::new();
        b.read("T1", "x");
        let shown = TraceStats::compute(&b.finish()).to_string();
        assert!(shown.contains("1 ops"));
        assert!(shown.contains("1 transactions (1 unary)"));
    }
}
