//! Segmentation of a trace into transactions.
//!
//! Following Section 2 of the paper: a transaction is the sequence of
//! operations executed by a thread from an outermost `begin` up to and
//! including the matching `end` (or the end of the trace when unmatched).
//! Every operation outside any atomic block forms its own *unary*
//! transaction. Nested `begin`/`end` pairs stay inside the enclosing
//! transaction.

use crate::ids::{Label, ThreadId};
use crate::op::Op;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifies a transaction within a segmented trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TxnId(u32);

impl TxnId {
    /// Creates a transaction identifier from its dense index.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Summary of one transaction in a segmented trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnInfo {
    /// The transaction's identifier.
    pub id: TxnId,
    /// The thread that executes the transaction.
    pub thread: ThreadId,
    /// Label of the outermost atomic block, or `None` for unary transactions.
    pub label: Option<Label>,
    /// Index of the transaction's first operation in the trace.
    pub first_op: usize,
    /// Index of the transaction's last operation in the trace (inclusive).
    pub last_op: usize,
    /// Number of operations belonging to the transaction.
    pub op_count: usize,
    /// `true` when the transaction is a single operation outside any block.
    pub unary: bool,
    /// `true` when the transaction's `begin` had no matching `end` before the
    /// trace finished.
    pub unclosed: bool,
}

/// The result of segmenting a trace into transactions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Transactions {
    /// For each operation index, the transaction it belongs to.
    op_txn: Vec<TxnId>,
    /// Per-transaction summaries, indexed by [`TxnId::index`].
    txns: Vec<TxnInfo>,
}

impl Transactions {
    /// Segments `trace` into transactions.
    pub fn segment(trace: &Trace) -> Self {
        struct Open {
            txn: TxnId,
            depth: usize,
        }
        let mut op_txn = Vec::with_capacity(trace.len());
        let mut txns: Vec<TxnInfo> = Vec::new();
        let mut open: HashMap<ThreadId, Open> = HashMap::new();

        for (i, op) in trace.iter() {
            let t = op.tid();
            let txn = match op {
                Op::Begin { l, .. } => {
                    if let Some(o) = open.get_mut(&t) {
                        o.depth += 1;
                        o.txn
                    } else {
                        let id = TxnId::new(txns.len() as u32);
                        txns.push(TxnInfo {
                            id,
                            thread: t,
                            label: Some(l),
                            first_op: i,
                            last_op: i,
                            op_count: 0,
                            unary: false,
                            unclosed: true,
                        });
                        open.insert(t, Open { txn: id, depth: 1 });
                        id
                    }
                }
                Op::End { .. } => {
                    // Well-formed traces always have a matching open block;
                    // tolerate stray ends by treating them as unary.
                    match open.get_mut(&t) {
                        Some(o) => {
                            o.depth -= 1;
                            let id = o.txn;
                            if o.depth == 0 {
                                txns[id.index()].unclosed = false;
                                open.remove(&t);
                            }
                            id
                        }
                        None => {
                            let id = TxnId::new(txns.len() as u32);
                            txns.push(TxnInfo {
                                id,
                                thread: t,
                                label: None,
                                first_op: i,
                                last_op: i,
                                op_count: 0,
                                unary: true,
                                unclosed: false,
                            });
                            id
                        }
                    }
                }
                _ => match open.get(&t) {
                    Some(o) => o.txn,
                    None => {
                        let id = TxnId::new(txns.len() as u32);
                        txns.push(TxnInfo {
                            id,
                            thread: t,
                            label: None,
                            first_op: i,
                            last_op: i,
                            op_count: 0,
                            unary: true,
                            unclosed: false,
                        });
                        id
                    }
                },
            };
            op_txn.push(txn);
            let info = &mut txns[txn.index()];
            info.last_op = i;
            info.op_count += 1;
        }

        Self { op_txn, txns }
    }

    /// The transaction containing the operation at `op_index`.
    pub fn txn_of(&self, op_index: usize) -> TxnId {
        self.op_txn[op_index]
    }

    /// Per-operation transaction assignments.
    pub fn op_txns(&self) -> &[TxnId] {
        &self.op_txn
    }

    /// All transactions, in creation order.
    pub fn txns(&self) -> &[TxnInfo] {
        &self.txns
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Returns `true` if the trace contained no operations.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Summary for a given transaction.
    pub fn info(&self, id: TxnId) -> &TxnInfo {
        &self.txns[id.index()]
    }

    /// Indices of the operations belonging to `id`, in trace order.
    pub fn ops_of(&self, id: TxnId) -> Vec<usize> {
        self.op_txn
            .iter()
            .enumerate()
            .filter_map(|(i, &txn)| (txn == id).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn ops_outside_blocks_are_unary() {
        let mut b = TraceBuilder::new();
        b.read("T1", "x").write("T1", "x").read("T2", "x");
        let trace = b.finish();
        let txns = Transactions::segment(&trace);
        assert_eq!(txns.len(), 3);
        assert!(txns.txns().iter().all(|t| t.unary && t.op_count == 1));
    }

    #[test]
    fn atomic_block_is_one_transaction() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "add")
            .read("T1", "x")
            .write("T1", "x")
            .end("T1");
        let trace = b.finish();
        let txns = Transactions::segment(&trace);
        assert_eq!(txns.len(), 1);
        let info = &txns.txns()[0];
        assert_eq!(info.op_count, 4);
        assert!(!info.unary && !info.unclosed);
        assert_eq!(trace.names().label(info.label.unwrap()), "add");
    }

    #[test]
    fn nested_blocks_stay_in_outer_transaction() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "p")
            .begin("T1", "q")
            .read("T1", "x")
            .end("T1")
            .end("T1");
        let txns = Transactions::segment(&b.finish());
        assert_eq!(txns.len(), 1);
        assert_eq!(txns.txns()[0].op_count, 5);
        assert_eq!(txns.txns()[0].label.map(|l| l.index()), Some(0));
    }

    #[test]
    fn unclosed_block_extends_to_trace_end() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "p").read("T1", "x").write("T1", "y");
        let txns = Transactions::segment(&b.finish());
        assert_eq!(txns.len(), 1);
        assert!(txns.txns()[0].unclosed);
        assert_eq!(txns.txns()[0].last_op, 2);
    }

    #[test]
    fn interleaved_threads_get_separate_transactions() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "p").read("T1", "x");
        b.begin("T2", "q").write("T2", "x").end("T2");
        b.end("T1");
        let trace = b.finish();
        let txns = Transactions::segment(&trace);
        assert_eq!(txns.len(), 2);
        assert_eq!(txns.txn_of(0), txns.txn_of(1));
        assert_eq!(txns.txn_of(2), txns.txn_of(3));
        assert_ne!(txns.txn_of(0), txns.txn_of(2));
        assert_eq!(txns.txn_of(5), txns.txn_of(0));
        assert_eq!(txns.ops_of(TxnId::new(0)), vec![0, 1, 5]);
    }

    #[test]
    fn mixed_unary_and_block_transactions() {
        let mut b = TraceBuilder::new();
        b.read("T1", "x"); // unary
        b.begin("T1", "p").write("T1", "x").end("T1"); // block
        b.read("T1", "x"); // unary
        let txns = Transactions::segment(&b.finish());
        assert_eq!(txns.len(), 3);
        assert!(txns.txns()[0].unary);
        assert!(!txns.txns()[1].unary);
        assert!(txns.txns()[2].unary);
    }

    #[test]
    fn stray_end_is_tolerated_as_unary() {
        let mut b = TraceBuilder::new();
        b.end("T1").read("T1", "x");
        let txns = Transactions::segment(&b.finish());
        assert_eq!(txns.len(), 2);
        assert!(txns.txns()[0].unary);
    }
}
