//! Incremental trace ingestion.
//!
//! [`Trace::from_json`] parses a complete in-memory string through the
//! generic JSON value tree, which means reading a recorded trace costs
//! *three* copies of the input (the text, the value tree, and the ops).
//! This module parses trace JSON directly off an [`std::io::Read`] stream
//! with one bounded buffer and no intermediate value tree: peak memory is
//! the decoded operations themselves (or nothing at all with
//! [`scan_json_trace`], which hands each operation to a callback as it is
//! decoded). The binary VBT reader ([`crate::vbt`]) shares the same
//! buffered byte source and error type.
//!
//! Every error carries the absolute byte offset of the first byte that
//! could not be interpreted, so CLI diagnostics can point into the file.

use crate::ids::SymbolTable;
use crate::op::Op;
use crate::trace::Trace;
use crate::{Label, LockId, ThreadId, VarId};
use std::fmt;
use std::io::Read;

/// Why a streaming trace read failed: the source itself, or its contents.
///
/// The distinction matters to callers that map errors onto exit codes —
/// a file that cannot be read is a different failure class from a file
/// that reads fine but does not encode a trace.
#[derive(Debug)]
pub enum TraceReadError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The bytes read so far do not encode a valid trace.
    Malformed {
        /// Absolute offset, in bytes from the start of the stream, of the
        /// first byte that could not be interpreted.
        offset: u64,
        /// What was expected or found there.
        reason: String,
    },
}

impl TraceReadError {
    pub(crate) fn malformed(offset: u64, reason: impl Into<String>) -> Self {
        Self::Malformed {
            offset,
            reason: reason.into(),
        }
    }

    /// Returns `true` when the error describes malformed input rather than
    /// an I/O failure.
    pub fn is_malformed(&self) -> bool {
        matches!(self, Self::Malformed { .. })
    }
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "{e}"),
            Self::Malformed { offset, reason } => write!(f, "byte {offset}: {reason}"),
        }
    }
}

impl std::error::Error for TraceReadError {}

impl From<std::io::Error> for TraceReadError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

const BUF_SIZE: usize = 64 * 1024;

/// A buffered byte source that tracks the absolute offset of every byte it
/// hands out. The single allocation shared by the JSON and VBT readers.
pub(crate) struct ByteStream<R> {
    src: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    /// Absolute offset of `buf[0]` within the stream.
    base: u64,
    eof: bool,
}

impl<R: Read> ByteStream<R> {
    pub(crate) fn new(src: R) -> Self {
        Self {
            src,
            buf: vec![0; BUF_SIZE],
            pos: 0,
            len: 0,
            base: 0,
            eof: false,
        }
    }

    /// Absolute offset of the next unread byte.
    pub(crate) fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// Ensures at least one byte is buffered; returns `false` at EOF.
    fn refill(&mut self) -> Result<bool, TraceReadError> {
        if self.pos < self.len {
            return Ok(true);
        }
        if self.eof {
            return Ok(false);
        }
        self.base += self.len as u64;
        self.pos = 0;
        self.len = 0;
        loop {
            match self.src.read(&mut self.buf) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(false);
                }
                Ok(n) => {
                    self.len = n;
                    return Ok(true);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceReadError::Io(e)),
            }
        }
    }

    /// The next byte without consuming it, or `None` at EOF.
    pub(crate) fn peek(&mut self) -> Result<Option<u8>, TraceReadError> {
        Ok(if self.refill()? {
            Some(self.buf[self.pos])
        } else {
            None
        })
    }

    /// Consumes the byte last returned by a successful [`Self::peek`].
    pub(crate) fn bump(&mut self) {
        debug_assert!(self.pos < self.len);
        self.pos += 1;
    }

    /// Reads and consumes the next byte, or `None` at EOF.
    pub(crate) fn next_byte(&mut self) -> Result<Option<u8>, TraceReadError> {
        let b = self.peek()?;
        if b.is_some() {
            self.bump();
        }
        Ok(b)
    }

    /// Fills `out` exactly, or fails with a malformed-input error naming
    /// the offset where the stream ran dry.
    pub(crate) fn read_exact(&mut self, out: &mut [u8]) -> Result<(), TraceReadError> {
        let mut filled = 0;
        while filled < out.len() {
            if !self.refill()? {
                return Err(TraceReadError::malformed(
                    self.offset(),
                    format!(
                        "unexpected end of input ({filled} of {} bytes available)",
                        out.len()
                    ),
                ));
            }
            let n = (self.len - self.pos).min(out.len() - filled);
            out[filled..filled + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            filled += n;
        }
        Ok(())
    }
}

/// What a streamed JSON trace carries besides the operations themselves.
/// Returned by [`scan_json_trace`].
#[derive(Debug)]
pub struct JsonTraceSummary {
    /// The trace's symbol table.
    pub names: SymbolTable,
    /// Sorted, deduplicated indices of synthesized operations, validated
    /// to be in bounds.
    pub synthesized: Vec<usize>,
    /// Number of operations streamed to the callback.
    pub ops: usize,
}

/// Parses a JSON trace incrementally from `src` into a [`Trace`].
///
/// Accepts the same documents as [`Trace::from_json`] but never holds the
/// input text (or a JSON value tree) in memory: peak allocation is one
/// fixed 64 KiB read buffer plus the decoded trace itself.
pub fn read_json_trace<R: Read>(src: R) -> Result<Trace, TraceReadError> {
    let mut ops = Vec::new();
    let summary = scan_json_trace(src, |_, op| ops.push(op))?;
    // Bounds were validated by the scan; re-assembly cannot fail.
    Trace::from_raw_parts(ops, summary.names, summary.synthesized)
        .map_err(|reason| TraceReadError::malformed(0, reason))
}

/// Parses a JSON trace incrementally, invoking `on_op(index, op)` for each
/// operation instead of collecting them. Memory use is bounded by the
/// 64 KiB read buffer and the (small) symbol table, independent of input
/// size — this is what lets a multi-hundred-megabyte trace stream through
/// a fixed footprint.
pub fn scan_json_trace<R: Read, F: FnMut(usize, Op)>(
    src: R,
    on_op: F,
) -> Result<JsonTraceSummary, TraceReadError> {
    JsonParser::new(src).parse_trace(on_op)
}

/// Top-level keys of a trace document.
#[derive(Clone, Copy, PartialEq)]
enum TopKey {
    Ops,
    Names,
    Synthesized,
    Unknown,
}

/// Operation tags, i.e. the variant names of [`Op`].
#[derive(Clone, Copy)]
enum Tag {
    Read,
    Write,
    Acquire,
    Release,
    Begin,
    End,
    Fork,
    Join,
}

impl Tag {
    fn name(self) -> &'static str {
        match self {
            Tag::Read => "Read",
            Tag::Write => "Write",
            Tag::Acquire => "Acquire",
            Tag::Release => "Release",
            Tag::Begin => "Begin",
            Tag::End => "End",
            Tag::Fork => "Fork",
            Tag::Join => "Join",
        }
    }

    /// The second operand's field name, if the variant has one.
    fn operand(self) -> Option<&'static str> {
        match self {
            Tag::Read | Tag::Write => Some("x"),
            Tag::Acquire | Tag::Release => Some("m"),
            Tag::Begin => Some("l"),
            Tag::End => None,
            Tag::Fork | Tag::Join => Some("child"),
        }
    }
}

const MAX_DEPTH: u32 = 128;

struct JsonParser<R> {
    s: ByteStream<R>,
    /// Reusable decode buffer for string contents, so steady-state parsing
    /// performs no per-token allocation.
    scratch: Vec<u8>,
}

impl<R: Read> JsonParser<R> {
    fn new(src: R) -> Self {
        Self {
            s: ByteStream::new(src),
            scratch: Vec::with_capacity(64),
        }
    }

    fn fail(&self, reason: impl Into<String>) -> TraceReadError {
        TraceReadError::malformed(self.s.offset(), reason)
    }

    fn skip_ws(&mut self) -> Result<(), TraceReadError> {
        while let Some(b) = self.s.peek()? {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.s.bump(),
                _ => break,
            }
        }
        Ok(())
    }

    fn expect(&mut self, want: u8, what: &str) -> Result<(), TraceReadError> {
        match self.s.peek()? {
            Some(b) if b == want => {
                self.s.bump();
                Ok(())
            }
            Some(b) => Err(self.fail(format!("expected {what}, found `{}`", b as char))),
            None => Err(self.fail(format!("unexpected end of input (expected {what})"))),
        }
    }

    /// Decodes a JSON string (including escapes) into `self.scratch`.
    fn parse_string(&mut self) -> Result<(), TraceReadError> {
        self.expect(b'"', "a string")?;
        self.scratch.clear();
        loop {
            let Some(b) = self.s.next_byte()? else {
                return Err(self.fail("unexpected end of input in string"));
            };
            match b {
                b'"' => return Ok(()),
                b'\\' => {
                    let Some(e) = self.s.next_byte()? else {
                        return Err(self.fail("unexpected end of input in escape"));
                    };
                    match e {
                        b'"' => self.scratch.push(b'"'),
                        b'\\' => self.scratch.push(b'\\'),
                        b'/' => self.scratch.push(b'/'),
                        b'b' => self.scratch.push(0x08),
                        b'f' => self.scratch.push(0x0c),
                        b'n' => self.scratch.push(b'\n'),
                        b'r' => self.scratch.push(b'\r'),
                        b't' => self.scratch.push(b'\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // A high surrogate must pair with `\uXXXX`.
                                if self.s.next_byte()? != Some(b'\\')
                                    || self.s.next_byte()? != Some(b'u')
                                {
                                    return Err(self.fail("unpaired surrogate in string"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.fail("invalid low surrogate in string"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.fail("unpaired surrogate in string"));
                            } else {
                                hi
                            };
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.fail("invalid unicode escape"))?;
                            let mut utf8 = [0u8; 4];
                            self.scratch.extend(ch.encode_utf8(&mut utf8).as_bytes());
                        }
                        other => {
                            return Err(self.fail(format!("invalid escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => self.scratch.push(b),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, TraceReadError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.s.next_byte()? else {
                return Err(self.fail("unexpected end of input in unicode escape"));
            };
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.fail("invalid hex digit in unicode escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    /// The scratch buffer as UTF-8 text (for error messages and name values).
    fn scratch_str(&self) -> Result<&str, TraceReadError> {
        std::str::from_utf8(&self.scratch)
            .map_err(|_| TraceReadError::malformed(self.s.offset(), "invalid UTF-8 in string"))
    }

    /// Parses a non-negative integer. Fractional or signed numbers are
    /// rejected: every number in a trace document is an identifier or an
    /// index.
    fn parse_u64(&mut self) -> Result<u64, TraceReadError> {
        let mut v: u64 = 0;
        let mut digits = 0u32;
        while let Some(b) = self.s.peek()? {
            if !b.is_ascii_digit() {
                break;
            }
            self.s.bump();
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as u64))
                .ok_or_else(|| self.fail("integer too large"))?;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.fail("expected an unsigned integer"));
        }
        if let Some(b'.' | b'e' | b'E') = self.s.peek()? {
            return Err(self.fail("expected an unsigned integer, found a non-integer number"));
        }
        Ok(v)
    }

    fn parse_u32(&mut self, what: &str) -> Result<u32, TraceReadError> {
        let v = self.parse_u64()?;
        u32::try_from(v).map_err(|_| self.fail(format!("{what} {v} out of range")))
    }

    /// Skips one JSON value of any shape (used for unknown keys).
    fn skip_value(&mut self, depth: u32) -> Result<(), TraceReadError> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting too deep"));
        }
        self.skip_ws()?;
        match self.s.peek()? {
            Some(b'"') => self.parse_string(),
            Some(b'{') => {
                self.s.bump();
                self.skip_ws()?;
                if self.s.peek()? == Some(b'}') {
                    self.s.bump();
                    return Ok(());
                }
                loop {
                    self.skip_ws()?;
                    self.parse_string()?;
                    self.skip_ws()?;
                    self.expect(b':', "`:`")?;
                    self.skip_value(depth + 1)?;
                    self.skip_ws()?;
                    match self.s.next_byte()? {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(()),
                        _ => return Err(self.fail("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'[') => {
                self.s.bump();
                self.skip_ws()?;
                if self.s.peek()? == Some(b']') {
                    self.s.bump();
                    return Ok(());
                }
                loop {
                    self.skip_value(depth + 1)?;
                    self.skip_ws()?;
                    match self.s.next_byte()? {
                        Some(b',') => continue,
                        Some(b']') => return Ok(()),
                        _ => return Err(self.fail("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b't') => self.expect_literal(b"true"),
            Some(b'f') => self.expect_literal(b"false"),
            Some(b'n') => self.expect_literal(b"null"),
            Some(b'-') | Some(b'0'..=b'9') => self.skip_number(),
            Some(b) => Err(self.fail(format!("unexpected character `{}`", b as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn expect_literal(&mut self, lit: &[u8]) -> Result<(), TraceReadError> {
        for &want in lit {
            if self.s.next_byte()? != Some(want) {
                return Err(self.fail(format!(
                    "invalid literal (expected `{}`)",
                    std::str::from_utf8(lit).unwrap()
                )));
            }
        }
        Ok(())
    }

    fn skip_number(&mut self) -> Result<(), TraceReadError> {
        if self.s.peek()? == Some(b'-') {
            self.s.bump();
        }
        let mut digits = 0;
        while let Some(b) = self.s.peek()? {
            match b {
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-' => {
                    self.s.bump();
                    digits += 1;
                }
                _ => break,
            }
        }
        if digits == 0 {
            return Err(self.fail("expected a number"));
        }
        Ok(())
    }

    fn parse_trace<F: FnMut(usize, Op)>(
        mut self,
        mut on_op: F,
    ) -> Result<JsonTraceSummary, TraceReadError> {
        self.skip_ws()?;
        self.expect(b'{', "a trace object")?;
        let mut names: Option<SymbolTable> = None;
        let mut synthesized: Option<Vec<usize>> = None;
        let mut ops: Option<usize> = None;
        self.skip_ws()?;
        if self.s.peek()? == Some(b'}') {
            self.s.bump();
        } else {
            loop {
                self.skip_ws()?;
                self.parse_string()?;
                let key = match self.scratch.as_slice() {
                    b"ops" => TopKey::Ops,
                    b"names" => TopKey::Names,
                    b"synthesized" => TopKey::Synthesized,
                    _ => TopKey::Unknown,
                };
                if match key {
                    TopKey::Ops => ops.is_some(),
                    TopKey::Names => names.is_some(),
                    TopKey::Synthesized => synthesized.is_some(),
                    TopKey::Unknown => false,
                } {
                    return Err(self.fail("duplicate key in trace object"));
                }
                self.skip_ws()?;
                self.expect(b':', "`:`")?;
                self.skip_ws()?;
                match key {
                    TopKey::Ops => ops = Some(self.parse_ops(&mut on_op)?),
                    TopKey::Names => names = Some(self.parse_names()?),
                    TopKey::Synthesized => synthesized = Some(self.parse_synthesized()?),
                    TopKey::Unknown => self.skip_value(0)?,
                }
                self.skip_ws()?;
                match self.s.next_byte()? {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    _ => return Err(self.fail("expected `,` or `}` in trace object")),
                }
            }
        }
        self.skip_ws()?;
        if self.s.peek()?.is_some() {
            return Err(self.fail("trailing data after trace object"));
        }
        let ops = ops.ok_or_else(|| self.fail("trace object is missing `ops`"))?;
        let names = names.ok_or_else(|| self.fail("trace object is missing `names`"))?;
        let mut synthesized = synthesized.unwrap_or_default();
        synthesized.sort_unstable();
        synthesized.dedup();
        if let Some(&last) = synthesized.last() {
            if last >= ops {
                return Err(self.fail(format!(
                    "synthesized index {last} out of bounds for {ops} ops"
                )));
            }
        }
        Ok(JsonTraceSummary {
            names,
            synthesized,
            ops,
        })
    }

    fn parse_ops<F: FnMut(usize, Op)>(&mut self, on_op: &mut F) -> Result<usize, TraceReadError> {
        self.expect(b'[', "an array for `ops`")?;
        let mut count = 0usize;
        self.skip_ws()?;
        if self.s.peek()? == Some(b']') {
            self.s.bump();
            return Ok(0);
        }
        loop {
            self.skip_ws()?;
            let op = self.parse_op()?;
            on_op(count, op);
            count += 1;
            self.skip_ws()?;
            match self.s.next_byte()? {
                Some(b',') => continue,
                Some(b']') => return Ok(count),
                _ => return Err(self.fail("expected `,` or `]` in `ops`")),
            }
        }
    }

    /// Parses one externally tagged operation: `{"Read":{"t":0,"x":1}}`.
    fn parse_op(&mut self) -> Result<Op, TraceReadError> {
        self.expect(b'{', "an operation object")?;
        self.skip_ws()?;
        self.parse_string()?;
        let tag = match self.scratch.as_slice() {
            b"Read" => Tag::Read,
            b"Write" => Tag::Write,
            b"Acquire" => Tag::Acquire,
            b"Release" => Tag::Release,
            b"Begin" => Tag::Begin,
            b"End" => Tag::End,
            b"Fork" => Tag::Fork,
            b"Join" => Tag::Join,
            _ => {
                let name = self.scratch_str().unwrap_or("<non-UTF-8>").to_owned();
                return Err(self.fail(format!("unknown operation `{name}`")));
            }
        };
        self.skip_ws()?;
        self.expect(b':', "`:`")?;
        self.skip_ws()?;
        self.expect(b'{', "an operation body")?;
        let mut t: Option<u32> = None;
        let mut operand: Option<u32> = None;
        self.skip_ws()?;
        if self.s.peek()? == Some(b'}') {
            self.s.bump();
        } else {
            loop {
                self.skip_ws()?;
                self.parse_string()?;
                #[derive(PartialEq)]
                enum Field {
                    Thread,
                    Operand,
                    Unknown,
                }
                let field = if self.scratch.as_slice() == b"t" {
                    Field::Thread
                } else if tag.operand().is_some_and(|f| f.as_bytes() == self.scratch) {
                    Field::Operand
                } else {
                    Field::Unknown
                };
                self.skip_ws()?;
                self.expect(b':', "`:`")?;
                self.skip_ws()?;
                match field {
                    Field::Thread => t = Some(self.parse_u32("thread id")?),
                    Field::Operand => operand = Some(self.parse_u32("identifier")?),
                    Field::Unknown => self.skip_value(0)?,
                }
                self.skip_ws()?;
                match self.s.next_byte()? {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    _ => return Err(self.fail("expected `,` or `}` in operation body")),
                }
            }
        }
        // Any further entries in the operation object are ignored, matching
        // the value-tree parser (which reads the first entry only).
        self.skip_ws()?;
        loop {
            match self.s.next_byte()? {
                Some(b'}') => break,
                Some(b',') => {
                    self.skip_ws()?;
                    self.parse_string()?;
                    self.skip_ws()?;
                    self.expect(b':', "`:`")?;
                    self.skip_value(0)?;
                    self.skip_ws()?;
                }
                _ => return Err(self.fail("expected `,` or `}` in operation object")),
            }
        }
        let t = ThreadId::new(
            t.ok_or_else(|| self.fail(format!("missing field `t` in {}", tag.name())))?,
        );
        let require = |this: &Self, v: Option<u32>| {
            v.ok_or_else(|| {
                this.fail(format!(
                    "missing field `{}` in {}",
                    tag.operand().unwrap_or("?"),
                    tag.name()
                ))
            })
        };
        Ok(match tag {
            Tag::Read => Op::Read {
                t,
                x: VarId::new(require(self, operand)?),
            },
            Tag::Write => Op::Write {
                t,
                x: VarId::new(require(self, operand)?),
            },
            Tag::Acquire => Op::Acquire {
                t,
                m: LockId::new(require(self, operand)?),
            },
            Tag::Release => Op::Release {
                t,
                m: LockId::new(require(self, operand)?),
            },
            Tag::Begin => Op::Begin {
                t,
                l: Label::new(require(self, operand)?),
            },
            Tag::End => Op::End { t },
            Tag::Fork => Op::Fork {
                t,
                child: ThreadId::new(require(self, operand)?),
            },
            Tag::Join => Op::Join {
                t,
                child: ThreadId::new(require(self, operand)?),
            },
        })
    }

    /// Parses the `names` object: four id→name maps keyed by decimal
    /// strings, in any order; unknown keys are skipped.
    fn parse_names(&mut self) -> Result<SymbolTable, TraceReadError> {
        let mut table = SymbolTable::new();
        let mut seen = [false; 4];
        self.expect(b'{', "an object for `names`")?;
        self.skip_ws()?;
        if self.s.peek()? == Some(b'}') {
            self.s.bump();
        } else {
            loop {
                self.skip_ws()?;
                self.parse_string()?;
                let slot = match self.scratch.as_slice() {
                    b"threads" => Some(0),
                    b"vars" => Some(1),
                    b"locks" => Some(2),
                    b"labels" => Some(3),
                    _ => None,
                };
                self.skip_ws()?;
                self.expect(b':', "`:`")?;
                self.skip_ws()?;
                match slot {
                    Some(i) => {
                        seen[i] = true;
                        self.parse_id_map(
                            |id, name, table: &mut SymbolTable| match i {
                                0 => table.name_thread(ThreadId::new(id), name),
                                1 => table.name_var(VarId::new(id), name),
                                2 => table.name_lock(LockId::new(id), name),
                                _ => table.name_label(Label::new(id), name),
                            },
                            &mut table,
                        )?;
                    }
                    None => self.skip_value(0)?,
                }
                self.skip_ws()?;
                match self.s.next_byte()? {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    _ => return Err(self.fail("expected `,` or `}` in `names`")),
                }
            }
        }
        for (i, field) in ["threads", "vars", "locks", "labels"].iter().enumerate() {
            if !seen[i] {
                return Err(self.fail(format!("`names` is missing `{field}`")));
            }
        }
        Ok(table)
    }

    fn parse_id_map(
        &mut self,
        mut insert: impl FnMut(u32, String, &mut SymbolTable),
        table: &mut SymbolTable,
    ) -> Result<(), TraceReadError> {
        self.expect(b'{', "an object")?;
        self.skip_ws()?;
        if self.s.peek()? == Some(b'}') {
            self.s.bump();
            return Ok(());
        }
        loop {
            self.skip_ws()?;
            self.parse_string()?;
            let id: u32 = self
                .scratch_str()?
                .parse()
                .map_err(|_| self.fail("expected a decimal id key"))?;
            self.skip_ws()?;
            self.expect(b':', "`:`")?;
            self.skip_ws()?;
            self.parse_string()?;
            let name = self.scratch_str()?.to_owned();
            insert(id, name, table);
            self.skip_ws()?;
            match self.s.next_byte()? {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(self.fail("expected `,` or `}` in name map")),
            }
        }
    }

    fn parse_synthesized(&mut self) -> Result<Vec<usize>, TraceReadError> {
        self.expect(b'[', "an array for `synthesized`")?;
        let mut out = Vec::new();
        self.skip_ws()?;
        if self.s.peek()? == Some(b']') {
            self.s.bump();
            return Ok(out);
        }
        loop {
            self.skip_ws()?;
            let v = self.parse_u64()?;
            out.push(usize::try_from(v).map_err(|_| self.fail("index too large"))?);
            self.skip_ws()?;
            match self.s.next_byte()? {
                Some(b',') => continue,
                Some(b']') => return Ok(out),
                _ => return Err(self.fail("expected `,` or `]` in `synthesized`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.begin("T1", "add").acquire("T1", "m").read("T1", "v");
        b.write("T2", "v");
        b.release("T1", "m").end("T1");
        b.fork("T1", "T3").join("T1", "T3");
        b.finish()
    }

    #[test]
    fn streaming_parse_matches_value_tree_parse() {
        let trace = sample_trace();
        let json = trace.to_json();
        let streamed = read_json_trace(json.as_bytes()).unwrap();
        assert_eq!(streamed.ops(), trace.ops());
        assert_eq!(streamed.to_json(), json);
    }

    #[test]
    fn synthesized_indices_roundtrip_and_are_validated() {
        let mut trace = sample_trace();
        trace.mark_synthesized(5);
        let json = trace.to_json();
        let streamed = read_json_trace(json.as_bytes()).unwrap();
        assert_eq!(streamed.synthesized(), &[5]);
        assert_eq!(streamed.to_json(), json);
        let bad = r#"{"ops":[{"End":{"t":0}}],"names":{"threads":{},"vars":{},"locks":{},"labels":{}},"synthesized":[7]}"#;
        let e = read_json_trace(bad.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("out of bounds"), "{e}");
    }

    #[test]
    fn tolerates_whitespace_reordering_and_unknown_keys() {
        let json = "\n{ \"extra\" : [1, {\"a\": null}, true] ,\n \"names\" : {\"labels\":{}, \"threads\": {\"0\":\"T1\"}, \"vars\":{}, \"locks\":{}, \"more\": 1},\n \"ops\" : [ {\"Read\": {\"x\": 2, \"t\": 0}} ] }\n";
        let trace = read_json_trace(json.as_bytes()).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(
            trace.get(0),
            Some(Op::Read {
                t: ThreadId::new(0),
                x: VarId::new(2)
            })
        );
        assert_eq!(trace.names().thread(ThreadId::new(0)), "T1");
    }

    #[test]
    fn string_escapes_decode() {
        let json = r#"{"ops":[],"names":{"threads":{"0":"a\"b\\c\nA😀"},"vars":{},"locks":{},"labels":{}}}"#;
        let trace = read_json_trace(json.as_bytes()).unwrap();
        assert_eq!(trace.names().thread(ThreadId::new(0)), "a\"b\\c\nA😀");
    }

    #[test]
    fn errors_carry_byte_offsets() {
        for (doc, want) in [
            ("", "byte 0"),
            ("{\"ops\": 42}", "byte 8"),
            ("{\"ops\": [], \"names\"", "byte 19"),
            ("[1,2]", "byte 0"),
        ] {
            let e = read_json_trace(doc.as_bytes()).unwrap_err();
            assert!(e.is_malformed(), "{doc:?}: {e}");
            assert!(e.to_string().contains(want), "{doc:?}: {e}");
        }
        // Truncation mid-document points at the end of the input.
        let full = sample_trace().to_json();
        let cut = &full[..full.len() / 2];
        let e = read_json_trace(cut.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("byte"), "{e}");
    }

    #[test]
    fn trailing_data_and_missing_fields_are_rejected() {
        let e = read_json_trace(&b"{\"ops\":[],\"names\":{\"threads\":{},\"vars\":{},\"locks\":{},\"labels\":{}}} extra"[..])
            .unwrap_err();
        assert!(e.to_string().contains("trailing data"), "{e}");
        let e = read_json_trace(&b"{}"[..]).unwrap_err();
        assert!(e.to_string().contains("missing `ops`"), "{e}");
        let e = read_json_trace(&b"{\"ops\":[]}"[..]).unwrap_err();
        assert!(e.to_string().contains("missing `names`"), "{e}");
        let e = read_json_trace(
            &b"{\"ops\":[],\"names\":{\"threads\":{},\"vars\":{},\"locks\":{}}}"[..],
        )
        .unwrap_err();
        assert!(e.to_string().contains("missing `labels`"), "{e}");
        let e = read_json_trace(&b"{\"ops\":[{\"Read\":{\"t\":0}}],\"names\":{\"threads\":{},\"vars\":{},\"locks\":{},\"labels\":{}}}"[..])
            .unwrap_err();
        assert!(e.to_string().contains("missing field `x`"), "{e}");
    }

    #[test]
    fn rejects_non_integer_ids() {
        for doc in [
            r#"{"ops":[{"Read":{"t":-1,"x":0}}],"names":{"threads":{},"vars":{},"locks":{},"labels":{}}}"#,
            r#"{"ops":[{"Read":{"t":1.5,"x":0}}],"names":{"threads":{},"vars":{},"locks":{},"labels":{}}}"#,
            r#"{"ops":[{"Read":{"t":5000000000,"x":0}}],"names":{"threads":{},"vars":{},"locks":{},"labels":{}}}"#,
        ] {
            let e = read_json_trace(doc.as_bytes()).unwrap_err();
            assert!(e.is_malformed(), "{doc}: {e}");
        }
    }

    #[test]
    fn scan_streams_without_collecting() {
        let trace = sample_trace();
        let json = trace.to_json();
        let mut count = 0usize;
        let summary = scan_json_trace(json.as_bytes(), |i, op| {
            assert_eq!(trace.get(i), Some(op));
            count += 1;
        })
        .unwrap();
        assert_eq!(count, trace.len());
        assert_eq!(summary.ops, trace.len());
        assert_eq!(summary.names.lock(LockId::new(0)), "m");
    }
}
