//! Well-formedness of traces under the multithreaded semantics of Figure 1.
//!
//! A trace is *well formed* when it could have been produced by the paper's
//! transition relation: locks are acquired only when free and released only
//! by their holder ([ACT ACQUIRE]/[ACT RELEASE]), `end` operations match an
//! enclosing `begin`, forks start fresh threads, and joins happen only after
//! the joined thread's last operation. Atomic blocks left open at the end of
//! the trace are permitted — the paper treats an unmatched `begin` as a
//! transaction extending to the end of the trace.
//!
//! Re-entrant lock acquires are rejected here: RoadRunner (and our monitor
//! crate) filters redundant re-entrant acquires and releases before events
//! reach a back-end analysis, so well-formed back-end traces never contain
//! them.

use crate::ids::{LockId, ThreadId};
use crate::op::Op;
use crate::trace::Trace;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A violation of the Figure 1 semantics, with the index of the offending
/// operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidityError {
    /// `acq(t, m)` while `m` is held (by `holder`).
    LockNotFree {
        /// Index of the offending acquire.
        at: usize,
        /// The lock.
        m: LockId,
        /// The thread already holding it.
        holder: ThreadId,
    },
    /// `rel(t, m)` while `m` is free.
    LockNotHeld {
        /// Index of the offending release.
        at: usize,
        /// The lock.
        m: LockId,
    },
    /// `rel(t, m)` by a thread other than the holder.
    ReleaseByNonOwner {
        /// Index of the offending release.
        at: usize,
        /// The lock.
        m: LockId,
        /// The actual holder.
        holder: ThreadId,
    },
    /// `end(t)` with no open atomic block for `t`.
    EndWithoutBegin {
        /// Index of the offending end.
        at: usize,
        /// The thread.
        t: ThreadId,
    },
    /// `fork(t, c)` where `c` already performed operations or was forked.
    ForkOfActiveThread {
        /// Index of the offending fork.
        at: usize,
        /// The already-active child.
        child: ThreadId,
    },
    /// `fork(t, t)`.
    SelfFork {
        /// Index of the offending fork.
        at: usize,
        /// The thread forking itself.
        t: ThreadId,
    },
    /// `join(t, c)` but `c` performs an operation at or after the join.
    JoinBeforeChildFinished {
        /// Index of the offending join.
        at: usize,
        /// The joined child.
        child: ThreadId,
        /// Index of a child operation after the join.
        child_op: usize,
    },
    /// `join(t, t)`.
    SelfJoin {
        /// Index of the offending join.
        at: usize,
        /// The thread joining itself.
        t: ThreadId,
    },
    /// A lock is still held at the end of the trace.
    LockHeldAtEnd {
        /// The lock.
        m: LockId,
        /// Its holder.
        holder: ThreadId,
    },
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidityError::LockNotFree { at, m, holder } => {
                write!(f, "op {at}: acquire of {m} while held by {holder}")
            }
            ValidityError::LockNotHeld { at, m } => {
                write!(f, "op {at}: release of {m} while free")
            }
            ValidityError::ReleaseByNonOwner { at, m, holder } => {
                write!(f, "op {at}: release of {m} held by {holder}")
            }
            ValidityError::EndWithoutBegin { at, t } => {
                write!(f, "op {at}: end({t}) without matching begin")
            }
            ValidityError::ForkOfActiveThread { at, child } => {
                write!(f, "op {at}: fork of already-active thread {child}")
            }
            ValidityError::SelfFork { at, t } => write!(f, "op {at}: thread {t} forks itself"),
            ValidityError::JoinBeforeChildFinished {
                at,
                child,
                child_op,
            } => {
                write!(
                    f,
                    "op {at}: join of {child} which still runs at op {child_op}"
                )
            }
            ValidityError::SelfJoin { at, t } => write!(f, "op {at}: thread {t} joins itself"),
            ValidityError::LockHeldAtEnd { m, holder } => {
                write!(f, "trace end: lock {m} still held by {holder}")
            }
        }
    }
}

impl Error for ValidityError {}

/// Options controlling [`validate_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidateOptions {
    /// Require every lock to be released by the end of the trace.
    /// Defaults to `false`: monitors may observe truncated executions.
    pub require_locks_released: bool,
}

/// Checks a whole trace against the Figure 1 semantics with default options.
pub fn validate(trace: &Trace) -> Result<(), ValidityError> {
    validate_with(trace, ValidateOptions::default())
}

/// Incremental well-formedness checker for *online* monitoring: feed each
/// operation as it is observed. Covers every rule of [`validate`] except
/// the join-before-child-finished check, which requires knowing the future
/// of the trace (an online monitor cannot); a stray operation by a joined
/// thread is caught at that operation instead.
#[derive(Debug, Default)]
pub struct TraceChecker {
    holders: HashMap<LockId, ThreadId>,
    depth: HashMap<ThreadId, usize>,
    seen: HashMap<ThreadId, usize>,
    joined: HashMap<ThreadId, usize>,
    index: usize,
}

impl TraceChecker {
    /// Creates a checker in the initial state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Operations checked so far.
    pub fn checked(&self) -> usize {
        self.index
    }

    /// Checks the next operation, advancing the state on success.
    pub fn check(&mut self, op: Op) -> Result<(), ValidityError> {
        use crate::op::Op::*;
        let i = self.index;
        let t = op.tid();
        if let Some(&at) = self.joined.get(&t) {
            // A joined thread can never act again; report it as a join that
            // happened before the child finished.
            return Err(ValidityError::JoinBeforeChildFinished {
                at,
                child: t,
                child_op: i,
            });
        }
        match op {
            Acquire { m, .. } => {
                if let Some(&holder) = self.holders.get(&m) {
                    return Err(ValidityError::LockNotFree { at: i, m, holder });
                }
                self.holders.insert(m, t);
            }
            Release { m, .. } => match self.holders.get(&m) {
                None => return Err(ValidityError::LockNotHeld { at: i, m }),
                Some(&holder) if holder != t => {
                    return Err(ValidityError::ReleaseByNonOwner { at: i, m, holder })
                }
                Some(_) => {
                    self.holders.remove(&m);
                }
            },
            Begin { .. } => *self.depth.entry(t).or_insert(0) += 1,
            End { .. } => {
                let d = self.depth.entry(t).or_insert(0);
                if *d == 0 {
                    return Err(ValidityError::EndWithoutBegin { at: i, t });
                }
                *d -= 1;
            }
            Fork { child, .. } => {
                if child == t {
                    return Err(ValidityError::SelfFork { at: i, t });
                }
                if self.seen.contains_key(&child) {
                    return Err(ValidityError::ForkOfActiveThread { at: i, child });
                }
                self.seen.insert(child, i);
            }
            Join { child, .. } => {
                if child == t {
                    return Err(ValidityError::SelfJoin { at: i, t });
                }
                self.joined.insert(child, i);
            }
            Read { .. } | Write { .. } => {}
        }
        self.seen.entry(t).or_insert(i);
        self.index += 1;
        Ok(())
    }
}

/// Checks a whole trace against the Figure 1 semantics.
pub fn validate_with(trace: &Trace, opts: ValidateOptions) -> Result<(), ValidityError> {
    // Last operation index per thread, for join validation.
    let mut last_op: HashMap<ThreadId, usize> = HashMap::new();
    for (i, op) in trace.iter() {
        last_op.insert(op.tid(), i);
        if let Op::Fork { child, .. } | Op::Join { child, .. } = op {
            last_op.entry(child).or_insert(i);
        }
    }

    let mut holders: HashMap<LockId, ThreadId> = HashMap::new();
    let mut depth: HashMap<ThreadId, usize> = HashMap::new();
    let mut seen: HashMap<ThreadId, usize> = HashMap::new(); // first op index

    for (i, op) in trace.iter() {
        let t = op.tid();
        seen.entry(t).or_insert(i);
        match op {
            Op::Acquire { m, .. } => {
                if let Some(&holder) = holders.get(&m) {
                    return Err(ValidityError::LockNotFree { at: i, m, holder });
                }
                holders.insert(m, t);
            }
            Op::Release { m, .. } => match holders.get(&m) {
                None => return Err(ValidityError::LockNotHeld { at: i, m }),
                Some(&holder) if holder != t => {
                    return Err(ValidityError::ReleaseByNonOwner { at: i, m, holder })
                }
                Some(_) => {
                    holders.remove(&m);
                }
            },
            Op::Begin { .. } => {
                *depth.entry(t).or_insert(0) += 1;
            }
            Op::End { .. } => {
                let d = depth.entry(t).or_insert(0);
                if *d == 0 {
                    return Err(ValidityError::EndWithoutBegin { at: i, t });
                }
                *d -= 1;
            }
            Op::Fork { child, .. } => {
                if child == t {
                    return Err(ValidityError::SelfFork { at: i, t });
                }
                if let Some(&first) = seen.get(&child) {
                    if first < i {
                        return Err(ValidityError::ForkOfActiveThread { at: i, child });
                    }
                }
                seen.insert(child, i);
            }
            Op::Join { child, .. } => {
                if child == t {
                    return Err(ValidityError::SelfJoin { at: i, t });
                }
                if let Some(&last) = last_op.get(&child) {
                    if last > i && trace.get(last).map(Op::tid) == Some(child) {
                        return Err(ValidityError::JoinBeforeChildFinished {
                            at: i,
                            child,
                            child_op: last,
                        });
                    }
                }
            }
            Op::Read { .. } | Op::Write { .. } => {}
        }
    }

    if opts.require_locks_released {
        if let Some((&m, &holder)) = holders.iter().min_by_key(|(m, _)| m.index()) {
            return Err(ValidityError::LockHeldAtEnd { m, holder });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn valid_lock_discipline_passes() {
        let mut b = TraceBuilder::new();
        b.acquire("T1", "m").read("T1", "x").release("T1", "m");
        b.acquire("T2", "m").write("T2", "x").release("T2", "m");
        assert_eq!(validate(&b.finish()), Ok(()));
    }

    #[test]
    fn double_acquire_rejected() {
        let mut b = TraceBuilder::new();
        b.acquire("T1", "m").acquire("T2", "m");
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err, ValidityError::LockNotFree { at: 1, .. }));
    }

    #[test]
    fn reentrant_acquire_rejected() {
        let mut b = TraceBuilder::new();
        b.acquire("T1", "m").acquire("T1", "m");
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err, ValidityError::LockNotFree { .. }));
    }

    #[test]
    fn release_free_lock_rejected() {
        let mut b = TraceBuilder::new();
        b.release("T1", "m");
        assert!(matches!(
            validate(&b.finish()).unwrap_err(),
            ValidityError::LockNotHeld { at: 0, .. }
        ));
    }

    #[test]
    fn release_by_other_thread_rejected() {
        let mut b = TraceBuilder::new();
        b.acquire("T1", "m").release("T2", "m");
        assert!(matches!(
            validate(&b.finish()).unwrap_err(),
            ValidityError::ReleaseByNonOwner { at: 1, .. }
        ));
    }

    #[test]
    fn end_without_begin_rejected() {
        let mut b = TraceBuilder::new();
        b.end("T1");
        assert!(matches!(
            validate(&b.finish()).unwrap_err(),
            ValidityError::EndWithoutBegin { at: 0, .. }
        ));
    }

    #[test]
    fn unclosed_begin_is_valid() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "l").read("T1", "x");
        assert_eq!(validate(&b.finish()), Ok(()));
    }

    #[test]
    fn nested_blocks_are_valid() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "p").begin("T1", "q").end("T1").end("T1");
        assert_eq!(validate(&b.finish()), Ok(()));
    }

    #[test]
    fn fork_of_running_thread_rejected() {
        let mut b = TraceBuilder::new();
        b.read("T2", "x").fork("T1", "T2");
        assert!(matches!(
            validate(&b.finish()).unwrap_err(),
            ValidityError::ForkOfActiveThread { at: 1, .. }
        ));
    }

    #[test]
    fn fork_then_child_runs_is_valid() {
        let mut b = TraceBuilder::new();
        b.fork("T1", "T2").read("T2", "x").join("T1", "T2");
        assert_eq!(validate(&b.finish()), Ok(()));
    }

    #[test]
    fn join_before_child_finished_rejected() {
        let mut b = TraceBuilder::new();
        b.fork("T1", "T2").join("T1", "T2").read("T2", "x");
        assert!(matches!(
            validate(&b.finish()).unwrap_err(),
            ValidityError::JoinBeforeChildFinished { at: 1, .. }
        ));
    }

    #[test]
    fn self_fork_and_self_join_rejected() {
        let mut b = TraceBuilder::new();
        b.fork("T1", "T1");
        assert!(matches!(
            validate(&b.finish()).unwrap_err(),
            ValidityError::SelfFork { .. }
        ));
        let mut b = TraceBuilder::new();
        b.join("T1", "T1");
        assert!(matches!(
            validate(&b.finish()).unwrap_err(),
            ValidityError::SelfJoin { .. }
        ));
    }

    #[test]
    fn lock_held_at_end_only_with_option() {
        let mut b = TraceBuilder::new();
        b.acquire("T1", "m");
        let trace = b.finish();
        assert_eq!(validate(&trace), Ok(()));
        let err = validate_with(
            &trace,
            ValidateOptions {
                require_locks_released: true,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ValidityError::LockHeldAtEnd { .. }));
    }

    #[test]
    fn incremental_checker_matches_offline_validation() {
        let mut good = TraceBuilder::new();
        good.fork("T1", "T2");
        good.acquire("T2", "m").begin("T2", "p").read("T2", "x");
        good.end("T2").release("T2", "m");
        good.join("T1", "T2");
        let mut checker = TraceChecker::new();
        for (_, op) in good.finish().iter() {
            checker.check(op).unwrap();
        }
        assert_eq!(checker.checked(), 7);
    }

    #[test]
    fn incremental_checker_rejects_bad_ops_online() {
        let mut checker = TraceChecker::new();
        let t1 = crate::ids::ThreadId::new(0);
        let t2 = crate::ids::ThreadId::new(1);
        let m = LockId::new(0);
        checker.check(crate::op::Op::Acquire { t: t1, m }).unwrap();
        assert!(matches!(
            checker.check(crate::op::Op::Acquire { t: t2, m }),
            Err(ValidityError::LockNotFree { .. })
        ));
        // State unchanged on failure: t1 can still release.
        checker.check(crate::op::Op::Release { t: t1, m }).unwrap();
    }

    #[test]
    fn incremental_checker_catches_acting_after_join() {
        let mut checker = TraceChecker::new();
        let t1 = crate::ids::ThreadId::new(0);
        let t2 = crate::ids::ThreadId::new(1);
        let x = crate::ids::VarId::new(0);
        checker
            .check(crate::op::Op::Fork { t: t1, child: t2 })
            .unwrap();
        checker.check(crate::op::Op::Write { t: t2, x }).unwrap();
        checker
            .check(crate::op::Op::Join { t: t1, child: t2 })
            .unwrap();
        assert!(checker.check(crate::op::Op::Write { t: t2, x }).is_err());
    }

    #[test]
    fn errors_display() {
        let mut b = TraceBuilder::new();
        b.release("T1", "m");
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("release"));
    }
}
