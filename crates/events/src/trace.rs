//! Traces: finite sequences of operations observed from a multithreaded
//! execution, plus an ergonomic builder that interns human-readable names.

use crate::ids::{Label, LockId, SymbolTable, ThreadId, VarId};
use crate::op::Op;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An execution trace: the interleaved sequence of operations performed by
/// all threads, in observation order.
///
/// The position of an operation in the trace serves as its unique identifier
/// (the paper assumes each operation carries one).
///
/// Operations can be *flagged as synthesized*: closing `end`/`rel` events
/// that a monitoring runtime inserted on shutdown for threads that died
/// mid-transaction were never performed by the program, and replay or
/// post-processing tools may want to treat them differently. Traces without
/// synthesized events serialize byte-identically to earlier versions (the
/// field is omitted when empty and tolerated when absent).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    ops: Vec<Op>,
    names: SymbolTable,
    /// Sorted indices of synthesized operations.
    synthesized: Vec<usize>,
}

impl Serialize for Trace {
    fn serialize_value(&self) -> serde::Value {
        let mut m = serde::value::Map::new();
        m.insert("ops".to_owned(), self.ops.serialize_value());
        m.insert("names".to_owned(), self.names.serialize_value());
        if !self.synthesized.is_empty() {
            m.insert("synthesized".to_owned(), self.synthesized.serialize_value());
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for Trace {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(obj) = v else {
            return Err(serde::Error::custom("expected a trace object"));
        };
        let null = serde::Value::Null;
        let ops = Vec::<Op>::deserialize_value(obj.get("ops").unwrap_or(&null))?;
        let names = SymbolTable::deserialize_value(obj.get("names").unwrap_or(&null))?;
        let synthesized = match obj.get("synthesized") {
            Some(serde::Value::Null) | None => Vec::new(),
            Some(value) => Vec::<usize>::deserialize_value(value)?,
        };
        Self::from_raw_parts(ops, names, synthesized).map_err(serde::Error::custom)
    }
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trace from a sequence of operations, with no symbol names.
    pub fn from_ops(ops: impl IntoIterator<Item = Op>) -> Self {
        Self {
            ops: ops.into_iter().collect(),
            names: SymbolTable::new(),
            synthesized: Vec::new(),
        }
    }

    /// Assembles a trace from deserialized parts, normalizing the
    /// synthesized-index list (sorted, deduplicated) and rejecting indices
    /// that point past the end of the operation list. Shared by the JSON
    /// and binary (VBT) readers so both enforce identical invariants.
    pub(crate) fn from_raw_parts(
        ops: Vec<Op>,
        names: SymbolTable,
        mut synthesized: Vec<usize>,
    ) -> Result<Self, String> {
        synthesized.sort_unstable();
        synthesized.dedup();
        if let Some(&last) = synthesized.last() {
            if last >= ops.len() {
                return Err(format!(
                    "synthesized index {last} out of bounds for {} ops",
                    ops.len()
                ));
            }
        }
        Ok(Self {
            ops,
            names,
            synthesized,
        })
    }

    /// Flags the operation at `index` as synthesized (inserted by the
    /// runtime on shutdown rather than performed by the program).
    ///
    /// Out-of-bounds indices are ignored.
    pub fn mark_synthesized(&mut self, index: usize) {
        if index >= self.ops.len() {
            return;
        }
        if let Err(pos) = self.synthesized.binary_search(&index) {
            self.synthesized.insert(pos, index);
        }
    }

    /// Sorted indices of synthesized operations.
    pub fn synthesized(&self) -> &[usize] {
        &self.synthesized
    }

    /// Returns `true` when the operation at `index` is flagged as
    /// synthesized.
    pub fn is_synthesized(&self, index: usize) -> bool {
        self.synthesized.binary_search(&index).is_ok()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Number of operations in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the trace contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations, in observation order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Returns the operation at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<Op> {
        self.ops.get(index).copied()
    }

    /// Iterates over `(index, op)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Op)> + '_ {
        self.ops.iter().copied().enumerate()
    }

    /// The symbol table used to render identifiers in reports.
    pub fn names(&self) -> &SymbolTable {
        &self.names
    }

    /// Mutable access to the symbol table.
    pub fn names_mut(&mut self) -> &mut SymbolTable {
        &mut self.names
    }

    /// The set of distinct threads appearing in the trace, in first-seen order.
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut seen = Vec::new();
        for op in &self.ops {
            let t = op.tid();
            if !seen.contains(&t) {
                seen.push(t);
            }
            if let Op::Fork { child, .. } = *op {
                if !seen.contains(&child) {
                    seen.push(child);
                }
            }
        }
        seen
    }

    /// Serializes the trace as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Parses a trace from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.iter() {
            if self.is_synthesized(i) {
                writeln!(f, "{i:>5}: {op}  (synthesized)")?;
            } else {
                writeln!(f, "{i:>5}: {op}")?;
            }
        }
        Ok(())
    }
}

impl FromIterator<Op> for Trace {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Self::from_ops(iter)
    }
}

/// Builds traces from human-readable names, interning threads, variables,
/// locks, and labels on first use.
///
/// # Examples
///
/// ```
/// use velodrome_events::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.begin("T1", "Set.add");
/// b.read("T1", "elems");
/// b.write("T1", "elems");
/// b.end("T1");
/// let trace = b.finish();
/// assert_eq!(trace.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: Trace,
    threads: HashMap<String, ThreadId>,
    vars: HashMap<String, VarId>,
    locks: HashMap<String, LockId>,
    labels: HashMap<String, Label>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a thread name.
    pub fn thread(&mut self, name: &str) -> ThreadId {
        if let Some(&t) = self.threads.get(name) {
            return t;
        }
        let t = ThreadId::new(self.threads.len() as u32);
        self.threads.insert(name.to_owned(), t);
        self.trace.names_mut().name_thread(t, name);
        t
    }

    /// Interns a variable name.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&x) = self.vars.get(name) {
            return x;
        }
        let x = VarId::new(self.vars.len() as u32);
        self.vars.insert(name.to_owned(), x);
        self.trace.names_mut().name_var(x, name);
        x
    }

    /// Interns a lock name.
    pub fn lock(&mut self, name: &str) -> LockId {
        if let Some(&m) = self.locks.get(name) {
            return m;
        }
        let m = LockId::new(self.locks.len() as u32);
        self.locks.insert(name.to_owned(), m);
        self.trace.names_mut().name_lock(m, name);
        m
    }

    /// Interns an atomic-block label.
    pub fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = Label::new(self.labels.len() as u32);
        self.labels.insert(name.to_owned(), l);
        self.trace.names_mut().name_label(l, name);
        l
    }

    /// Appends an already-built operation.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.trace.push(op);
        self
    }

    /// Appends `rd(t, x)`.
    pub fn read(&mut self, t: &str, x: &str) -> &mut Self {
        let op = Op::Read {
            t: self.thread(t),
            x: self.var(x),
        };
        self.push(op)
    }

    /// Appends `wr(t, x)`.
    pub fn write(&mut self, t: &str, x: &str) -> &mut Self {
        let op = Op::Write {
            t: self.thread(t),
            x: self.var(x),
        };
        self.push(op)
    }

    /// Appends `acq(t, m)`.
    pub fn acquire(&mut self, t: &str, m: &str) -> &mut Self {
        let op = Op::Acquire {
            t: self.thread(t),
            m: self.lock(m),
        };
        self.push(op)
    }

    /// Appends `rel(t, m)`.
    pub fn release(&mut self, t: &str, m: &str) -> &mut Self {
        let op = Op::Release {
            t: self.thread(t),
            m: self.lock(m),
        };
        self.push(op)
    }

    /// Appends `begin_l(t)`.
    pub fn begin(&mut self, t: &str, l: &str) -> &mut Self {
        let op = Op::Begin {
            t: self.thread(t),
            l: self.label(l),
        };
        self.push(op)
    }

    /// Appends `end(t)`.
    pub fn end(&mut self, t: &str) -> &mut Self {
        let op = Op::End { t: self.thread(t) };
        self.push(op)
    }

    /// Appends `fork(t, child)`.
    pub fn fork(&mut self, t: &str, child: &str) -> &mut Self {
        let op = Op::Fork {
            t: self.thread(t),
            child: self.thread(child),
        };
        self.push(op)
    }

    /// Appends `join(t, child)`.
    pub fn join(&mut self, t: &str, child: &str) -> &mut Self {
        let op = Op::Join {
            t: self.thread(t),
            child: self.thread(child),
        };
        self.push(op)
    }

    /// Consumes the builder and returns the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }

    /// Returns the trace built so far without consuming the builder.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_names_once() {
        let mut b = TraceBuilder::new();
        b.read("T1", "x").write("T2", "x").read("T1", "y");
        let trace = b.finish();
        assert_eq!(trace.len(), 3);
        match (trace.get(0).unwrap(), trace.get(1).unwrap()) {
            (Op::Read { x: x0, .. }, Op::Write { x: x1, .. }) => assert_eq!(x0, x1),
            other => panic!("unexpected ops {other:?}"),
        }
        assert_eq!(trace.threads().len(), 2);
        assert_eq!(trace.names().var(VarId::new(0)), "x");
        assert_eq!(trace.names().var(VarId::new(1)), "y");
    }

    #[test]
    fn threads_includes_forked_children_before_first_op() {
        let mut b = TraceBuilder::new();
        b.fork("main", "worker");
        let trace = b.finish();
        assert_eq!(trace.threads().len(), 2);
    }

    #[test]
    fn trace_json_roundtrip() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "add").acquire("T1", "m").read("T1", "v");
        b.release("T1", "m").end("T1");
        let trace = b.finish();
        let back = Trace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.ops(), trace.ops());
        assert_eq!(back.names().lock(LockId::new(0)), "m");
    }

    #[test]
    fn display_lists_all_ops() {
        let mut b = TraceBuilder::new();
        b.read("T1", "x").write("T2", "x");
        let shown = b.finish().to_string();
        assert!(shown.contains("rd(T0, x0)"));
        assert!(shown.contains("wr(T1, x0)"));
    }

    #[test]
    fn from_iter_collects() {
        let t = ThreadId::new(0);
        let trace: Trace = vec![
            Op::Begin {
                t,
                l: Label::new(0),
            },
            Op::End { t },
        ]
        .into_iter()
        .collect();
        assert_eq!(trace.len(), 2);
    }
}
