//! Resource budgets and the fail-safe degradation ladder.
//!
//! Velodrome is an *online* analysis: the paper's back-end runs inside the
//! monitored program, so unbounded growth of analysis state — the
//! happens-before graph, the per-variable instrumentation store, the
//! recorded replay trace — is unbounded memory growth of the *host*. A
//! production deployment needs two guarantees the original prototype never
//! had to give:
//!
//! 1. the analysis never crashes, deadlocks, or OOMs the host; and
//! 2. any loss of soundness is explicit, never silent.
//!
//! [`ResourceBudget`] caps the three unbounded resources; when a cap trips,
//! the runtime steps down the [`DegradationLevel`] ladder instead of
//! growing further. Every transition is counted in telemetry and surfaced
//! as a [`WarningCategory::Degraded`](crate::tool::WarningCategory::Degraded)
//! warning carrying the event index at which fidelity was lost, so a capped
//! run is always distinguishable from a clean one.

use serde::Serialize;
use std::fmt;

/// Hard caps on the analysis' unbounded resources. A field of `0` means
/// *unlimited* — the default budget caps nothing, so enabling the budget
/// machinery is always opt-in and the default configuration is
/// byte-identical to an unbudgeted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceBudget {
    /// Cap on simultaneously-alive transaction nodes in the happens-before
    /// graph. First trip quarantines the hottest variables; a trip while
    /// already quarantined degrades to recorder-only.
    pub max_alive_nodes: usize,
    /// Cap on events retained in the replay trace. Tripping stops trace
    /// retention (analysis continues).
    pub max_trace_events: usize,
    /// Cap on distinct shared variables tracked by the instrumentation
    /// store. Tripping quarantines the hottest variables from
    /// happens-before edge creation.
    pub max_tracked_vars: usize,
}

impl ResourceBudget {
    /// The default budget: nothing is capped.
    pub const UNLIMITED: Self = Self {
        max_alive_nodes: 0,
        max_trace_events: 0,
        max_tracked_vars: 0,
    };

    /// Returns `true` when no cap is set (the default).
    pub fn is_unlimited(&self) -> bool {
        *self == Self::UNLIMITED
    }
}

/// The explicit degradation ladder, ordered from full fidelity down to
/// recorder-only operation. Transitions are monotonic: a runtime or engine
/// only ever steps *down* (to a larger variant), and each step is counted
/// and surfaced as a `Degraded` warning.
///
/// What each state still guarantees:
///
/// * [`Full`](Self::Full) — sound and complete; the replay trace is
///   retained.
/// * [`TraceDropped`](Self::TraceDropped) — sound and complete analysis,
///   but events past the budget are no longer retained for replay.
/// * [`VarQuarantine`](Self::VarQuarantine) — the hottest variables are
///   excluded from happens-before edge creation: still sound and complete
///   *for the remaining variables*; violations involving only quarantined
///   variables may be missed (completeness loss), and no false alarms are
///   introduced (edges are only removed, never invented).
/// * [`RecorderOnly`](Self::RecorderOnly) — no online analysis at all;
///   events are still observed/recorded. Entered on analysis panic or when
///   quarantining failed to relieve memory pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum DegradationLevel {
    /// Full analysis; everything retained.
    #[default]
    Full,
    /// The replay trace is no longer retained past the budget.
    TraceDropped,
    /// The hottest variables are quarantined from HB-edge creation.
    VarQuarantine,
    /// Analysis disabled; events are only observed/recorded.
    RecorderOnly,
}

impl DegradationLevel {
    /// All ladder states, in degradation order.
    pub const ALL: [Self; 4] = [
        Self::Full,
        Self::TraceDropped,
        Self::VarQuarantine,
        Self::RecorderOnly,
    ];

    /// The rung number on the ladder: 0 at full fidelity, rising as
    /// fidelity is shed. This is what the `*.ladder` telemetry gauges
    /// carry, so exported snapshots can check monotonicity numerically.
    pub fn rung(self) -> u64 {
        match self {
            Self::Full => 0,
            Self::TraceDropped => 1,
            Self::VarQuarantine => 2,
            Self::RecorderOnly => 3,
        }
    }

    /// A short, stable name for telemetry and reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::TraceDropped => "trace-dropped",
            Self::VarQuarantine => "var-quarantine",
            Self::RecorderOnly => "recorder-only",
        }
    }
}

impl fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        assert!(ResourceBudget::default().is_unlimited());
        assert!(!ResourceBudget {
            max_alive_nodes: 1,
            ..ResourceBudget::default()
        }
        .is_unlimited());
    }

    #[test]
    fn ladder_orders_from_full_to_recorder_only() {
        let mut prev = None;
        for level in DegradationLevel::ALL {
            if let Some(p) = prev {
                assert!(p < level, "{p} should precede {level}");
            }
            prev = Some(level);
        }
        assert_eq!(DegradationLevel::default(), DegradationLevel::Full);
    }

    #[test]
    fn rungs_match_ladder_order() {
        let rungs: Vec<u64> = DegradationLevel::ALL.iter().map(|l| l.rung()).collect();
        assert_eq!(rungs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DegradationLevel::RecorderOnly.to_string(), "recorder-only");
        assert_eq!(DegradationLevel::Full.name(), "full");
    }
}
