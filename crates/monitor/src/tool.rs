//! The back-end analysis interface.
//!
//! RoadRunner instruments a target program and feeds the resulting event
//! stream to one or more *back-end tools*. [`Tool`] is that interface: a
//! tool observes each operation in order and accumulates [`Warning`]s.
//! Tools can be chained ([`ToolChain`]) so several analyses observe the same
//! stream in one pass, exactly as the paper runs Velodrome alongside the
//! Atomizer or a race detector.

use crate::spec::AtomicitySpec;
use serde::Serialize;
use std::fmt;
use velodrome_events::{Label, Op, ThreadId, Trace};

/// The kind of defect a warning reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum WarningCategory {
    /// A data race on a shared variable.
    Race,
    /// An atomicity (serializability) violation.
    Atomicity,
    /// The analysis lost fidelity: a tool panicked and was quarantined, or
    /// a [`ResourceBudget`](crate::budget::ResourceBudget) tripped and the
    /// runtime stepped down the
    /// [`DegradationLevel`](crate::budget::DegradationLevel) ladder. The
    /// warning's `op_index` is the event at which fidelity was lost.
    Degraded,
    /// Any other analysis-specific diagnostic.
    Other,
}

impl fmt::Display for WarningCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarningCategory::Race => write!(f, "race"),
            WarningCategory::Atomicity => write!(f, "atomicity"),
            WarningCategory::Degraded => write!(f, "degraded"),
            WarningCategory::Other => write!(f, "other"),
        }
    }
}

/// A diagnostic produced by a back-end tool.
#[derive(Debug, Clone, Serialize)]
pub struct Warning {
    /// Name of the tool that produced the warning.
    pub tool: &'static str,
    /// What kind of defect is reported.
    pub category: WarningCategory,
    /// The atomic block (method) being blamed, when known.
    pub label: Option<Label>,
    /// The thread performing the offending operation.
    pub thread: ThreadId,
    /// Index in the trace of the operation that triggered the warning.
    pub op_index: usize,
    /// Human-readable description.
    pub message: String,
    /// Optional long-form details (e.g. a rendered error graph).
    pub details: Option<String>,
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} warning at op {}: {}",
            self.tool, self.category, self.op_index, self.message
        )
    }
}

/// A back-end dynamic analysis consuming the instrumentation event stream.
pub trait Tool {
    /// A short, stable name for reports (e.g. `"velodrome"`).
    fn name(&self) -> &'static str;

    /// Observes the operation at position `index` of the trace.
    fn op(&mut self, index: usize, op: Op);

    /// Signals that the observed execution has ended.
    ///
    /// Tools that need to flush state (e.g. close open transactions) do so
    /// here. The default does nothing.
    fn end_of_trace(&mut self) {}

    /// Removes and returns the warnings accumulated so far.
    fn take_warnings(&mut self) -> Vec<Warning> {
        Vec::new()
    }
}

impl<T: Tool + ?Sized> Tool for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn op(&mut self, index: usize, op: Op) {
        (**self).op(index, op)
    }
    fn end_of_trace(&mut self) {
        (**self).end_of_trace()
    }
    fn take_warnings(&mut self) -> Vec<Warning> {
        (**self).take_warnings()
    }
}

/// Feeds an entire recorded trace through `tool` and returns its warnings.
pub fn run_tool<T: Tool + ?Sized>(tool: &mut T, trace: &Trace) -> Vec<Warning> {
    for (i, op) in trace.iter() {
        tool.op(i, op);
    }
    tool.end_of_trace();
    tool.take_warnings()
}

/// Replays buffered `(index, op)` pairs into a tool, preserving the
/// original trace indices.
///
/// This is the dispatch primitive for *deferred* analysis: a recorder (or
/// a two-tier checker like `velodrome`'s hybrid backend) buffers the
/// stream and only engages an expensive tool later — warnings produced
/// from the replay then carry the same `op_index` values an online run
/// would have reported, so downstream consumers cannot tell the
/// difference. Does **not** call [`Tool::end_of_trace`]; the caller
/// decides when the stream actually ends.
pub fn replay_ops<T: Tool + ?Sized>(tool: &mut T, ops: &[(usize, Op)]) {
    for &(i, op) in ops {
        tool.op(i, op);
    }
}

/// Runs several tools over the same event stream in a single pass.
#[derive(Default)]
pub struct ToolChain {
    tools: Vec<Box<dyn Tool>>,
}

impl ToolChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a tool to the chain; tools observe events in insertion order.
    pub fn push(&mut self, tool: impl Tool + 'static) -> &mut Self {
        self.tools.push(Box::new(tool));
        self
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, tool: impl Tool + 'static) -> Self {
        self.tools.push(Box::new(tool));
        self
    }

    /// Number of tools in the chain.
    pub fn len(&self) -> usize {
        self.tools.len()
    }

    /// Returns `true` if the chain has no tools.
    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }
}

impl fmt::Debug for ToolChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ToolChain")
            .field(
                "tools",
                &self.tools.iter().map(|t| t.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Tool for ToolChain {
    fn name(&self) -> &'static str {
        "chain"
    }

    fn op(&mut self, index: usize, op: Op) {
        for tool in &mut self.tools {
            tool.op(index, op);
        }
    }

    fn end_of_trace(&mut self) {
        for tool in &mut self.tools {
            tool.end_of_trace();
        }
    }

    fn take_warnings(&mut self) -> Vec<Warning> {
        let mut all = Vec::new();
        for tool in &mut self.tools {
            all.extend(tool.take_warnings());
        }
        all.sort_by_key(|w| w.op_index);
        all
    }
}

/// The paper's "Empty" back-end: observes every event, does no analysis.
///
/// Used by the benchmark harness to isolate instrumentation overhead from
/// analysis overhead (Table 1's `Empty` column).
#[derive(Debug, Default, Clone)]
pub struct EmptyTool {
    ops_seen: u64,
    finished: bool,
}

impl EmptyTool {
    /// Creates an empty tool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of operations observed.
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }

    /// Whether `end_of_trace` has been called.
    pub fn finished(&self) -> bool {
        self.finished
    }
}

impl Tool for EmptyTool {
    fn name(&self) -> &'static str {
        "empty"
    }

    fn op(&mut self, _index: usize, op: Op) {
        // Touch the operation so the call cannot be optimized away entirely.
        self.ops_seen = self.ops_seen.wrapping_add(1 + op.tid().raw() as u64 % 2);
    }

    fn end_of_trace(&mut self) {
        self.finished = true;
    }
}

/// Helper for tools that blame atomic blocks: deduplicates warnings per
/// label so each non-atomic method is reported once, mirroring how the
/// paper counts "non-atomic methods" rather than raw dynamic occurrences.
#[derive(Debug, Default)]
pub struct PerLabelDedup {
    reported: std::collections::HashSet<Option<Label>>,
}

impl PerLabelDedup {
    /// Creates an empty deduplicator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` the first time each label is seen.
    pub fn first_report(&mut self, label: Option<Label>) -> bool {
        self.reported.insert(label)
    }

    /// Number of distinct labels reported.
    pub fn len(&self) -> usize {
        self.reported.len()
    }

    /// Returns `true` when nothing has been reported.
    pub fn is_empty(&self) -> bool {
        self.reported.is_empty()
    }
}

/// Configuration shared by atomicity back-ends.
#[derive(Debug, Clone, Default)]
pub struct BackendConfig {
    /// Which atomic blocks to check.
    pub spec: AtomicitySpec,
    /// Report at most one warning per atomic-block label.
    pub dedup_per_label: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome_events::TraceBuilder;

    struct Recorder {
        seen: Vec<usize>,
        warn_on: usize,
    }

    impl Tool for Recorder {
        fn name(&self) -> &'static str {
            "recorder"
        }
        fn op(&mut self, index: usize, _op: Op) {
            self.seen.push(index);
        }
        fn take_warnings(&mut self) -> Vec<Warning> {
            vec![Warning {
                tool: "recorder",
                category: WarningCategory::Other,
                label: None,
                thread: ThreadId::new(0),
                op_index: self.warn_on,
                message: "test".into(),
                details: None,
            }]
        }
    }

    fn small_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.read("T1", "x").write("T2", "x").read("T1", "y");
        b.finish()
    }

    #[test]
    fn run_tool_feeds_all_ops_in_order() {
        let mut rec = Recorder {
            seen: vec![],
            warn_on: 0,
        };
        run_tool(&mut rec, &small_trace());
        assert_eq!(rec.seen, vec![0, 1, 2]);
    }

    #[test]
    fn empty_tool_counts_and_finishes() {
        let mut empty = EmptyTool::new();
        run_tool(&mut empty, &small_trace());
        assert!(empty.ops_seen() >= 3);
        assert!(empty.finished());
    }

    #[test]
    fn chain_broadcasts_and_merges_warnings() {
        let chain = ToolChain::new()
            .with(Recorder {
                seen: vec![],
                warn_on: 5,
            })
            .with(Recorder {
                seen: vec![],
                warn_on: 1,
            });
        let mut chain = chain;
        assert_eq!(chain.len(), 2);
        let warnings = run_tool(&mut chain, &small_trace());
        assert_eq!(warnings.len(), 2);
        // Sorted by op index.
        assert_eq!(warnings[0].op_index, 1);
        assert_eq!(warnings[1].op_index, 5);
    }

    #[test]
    fn dedup_reports_each_label_once() {
        let mut dedup = PerLabelDedup::new();
        let l = Some(Label::new(0));
        assert!(dedup.first_report(l));
        assert!(!dedup.first_report(l));
        assert!(dedup.first_report(Some(Label::new(1))));
        assert!(dedup.first_report(None));
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn warning_display_mentions_tool_and_category() {
        let w = Warning {
            tool: "velodrome",
            category: WarningCategory::Atomicity,
            label: None,
            thread: ThreadId::new(1),
            op_index: 42,
            message: "cycle".into(),
            details: None,
        };
        let shown = w.to_string();
        assert!(shown.contains("velodrome"));
        assert!(shown.contains("atomicity"));
        assert!(shown.contains("42"));
    }

    #[test]
    fn boxed_tool_delegates() {
        let mut boxed: Box<dyn Tool> = Box::new(EmptyTool::new());
        boxed.op(
            0,
            Op::Read {
                t: ThreadId::new(0),
                x: velodrome_events::VarId::new(0),
            },
        );
        assert_eq!(boxed.name(), "empty");
        assert!(boxed.take_warnings().is_empty());
    }
}
