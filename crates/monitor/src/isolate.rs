//! Panic isolation helpers shared by the live runtime, the chaos replay
//! driver, and the batch checker.
//!
//! A monitoring runtime attached to a live service — or a batch runner
//! fanning a fleet of traces over a worker pool — must treat a panicking
//! analysis as a degraded *unit of work*, never as a crashed process. This
//! module centralizes the two pieces every caller needs: running a closure
//! under a panic guard, and rendering the opaque panic payload as text.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Renders a panic payload (the `Box<dyn Any>` from
/// [`std::panic::catch_unwind`]) as a human-readable message.
///
/// Panics carry `&str` (literal messages) or `String` (formatted messages);
/// anything else — a custom payload thrown via `panic_any` — renders as a
/// placeholder rather than being dropped.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Runs `f` under a panic guard, converting a panic into `Err` with the
/// rendered panic message.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: callers are expected to
/// treat the captured state as poisoned on `Err` (quarantine the work unit
/// and move on), which is exactly the contract that makes the assertion
/// sound.
pub fn run_isolated<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| panic_message(payload.as_ref()).to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_passes_through() {
        assert_eq!(run_isolated(|| 40 + 2), Ok(42));
    }

    #[test]
    fn str_panic_is_captured() {
        let e = run_isolated(|| -> u32 { panic!("boom") }).unwrap_err();
        assert_eq!(e, "boom");
    }

    #[test]
    fn string_panic_is_captured() {
        let n = 7;
        let e = run_isolated(|| -> u32 { panic!("bad op {n}") }).unwrap_err();
        assert_eq!(e, "bad op 7");
    }

    #[test]
    fn non_string_payloads_render_placeholder() {
        let e = run_isolated(|| std::panic::panic_any(1234i64)).unwrap_err();
        assert_eq!(e, "non-string panic payload");
    }
}
