//! Event-stream filters applied between the instrumented program and the
//! back-end analyses, mirroring RoadRunner's front-end filtering (Section 5):
//!
//! * re-entrant (and hence redundant) lock acquires and releases are
//!   filtered out, so back-ends never see nested acquires of a held lock;
//! * operations on thread-local data can be filtered, which dramatically
//!   improves performance although it is *slightly unsound*: when a variable
//!   is first touched by a second thread, its earlier (suppressed) history
//!   is lost.
//!
//! Each filter is a [`Tool`] combinator wrapping an inner tool; offline
//! trace-rewriting equivalents are provided for recorded traces.

use crate::spec::AtomicitySpec;
use crate::tool::{Tool, Warning};
use std::collections::HashMap;
use velodrome_events::{LockId, Op, ThreadId, Trace, VarId};

/// Suppresses re-entrant lock acquires and releases.
///
/// Only the first acquire and the matching last release of a lock held
/// re-entrantly by the same thread reach the inner tool.
#[derive(Debug)]
pub struct ReentrantLockFilter<T> {
    inner: T,
    /// Hold count per lock; the holder is implied by well-formedness.
    holds: HashMap<LockId, (ThreadId, u32)>,
    suppressed: u64,
}

impl<T: Tool> ReentrantLockFilter<T> {
    /// Wraps `inner` with re-entrancy filtering.
    pub fn new(inner: T) -> Self {
        Self {
            inner,
            holds: HashMap::new(),
            suppressed: 0,
        }
    }

    /// Number of suppressed redundant operations.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Consumes the filter, returning the inner tool.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Borrows the inner tool.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Tool> Tool for ReentrantLockFilter<T> {
    fn name(&self) -> &'static str {
        "reentrant-filter"
    }

    fn op(&mut self, index: usize, op: Op) {
        match op {
            Op::Acquire { t, m } => {
                let entry = self.holds.entry(m).or_insert((t, 0));
                entry.1 += 1;
                if entry.1 > 1 {
                    self.suppressed += 1;
                    return;
                }
            }
            Op::Release { m, .. } => {
                if let Some(entry) = self.holds.get_mut(&m) {
                    entry.1 = entry.1.saturating_sub(1);
                    if entry.1 > 0 {
                        self.suppressed += 1;
                        return;
                    }
                    self.holds.remove(&m);
                }
            }
            _ => {}
        }
        self.inner.op(index, op);
    }

    fn end_of_trace(&mut self) {
        self.inner.end_of_trace();
    }

    fn take_warnings(&mut self) -> Vec<Warning> {
        self.inner.take_warnings()
    }
}

/// Per-variable sharing state used by [`ThreadLocalFilter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sharing {
    Local(ThreadId),
    Shared,
}

/// Suppresses accesses to variables that have (so far) been touched by a
/// single thread.
///
/// This reproduces RoadRunner's thread-local filtering, including its
/// documented unsoundness: once a second thread touches a variable, the
/// suppressed prefix of that variable's history is not replayed.
#[derive(Debug)]
pub struct ThreadLocalFilter<T> {
    inner: T,
    vars: HashMap<VarId, Sharing>,
    suppressed: u64,
}

impl<T: Tool> ThreadLocalFilter<T> {
    /// Wraps `inner` with thread-local filtering.
    pub fn new(inner: T) -> Self {
        Self {
            inner,
            vars: HashMap::new(),
            suppressed: 0,
        }
    }

    /// Number of suppressed thread-local accesses.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Consumes the filter, returning the inner tool.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Borrows the inner tool.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Tool> Tool for ThreadLocalFilter<T> {
    fn name(&self) -> &'static str {
        "thread-local-filter"
    }

    fn op(&mut self, index: usize, op: Op) {
        if let (Some(x), t) = (op.var(), op.tid()) {
            match self.vars.get(&x) {
                None => {
                    self.vars.insert(x, Sharing::Local(t));
                    self.suppressed += 1;
                    return;
                }
                Some(Sharing::Local(owner)) if *owner == t => {
                    self.suppressed += 1;
                    return;
                }
                Some(Sharing::Local(_)) => {
                    self.vars.insert(x, Sharing::Shared);
                }
                Some(Sharing::Shared) => {}
            }
        }
        self.inner.op(index, op);
    }

    fn end_of_trace(&mut self) {
        self.inner.end_of_trace();
    }

    fn take_warnings(&mut self) -> Vec<Warning> {
        self.inner.take_warnings()
    }
}

/// Applies an [`AtomicitySpec`] by dropping the `begin`/`end` markers of
/// atomic blocks that should not be checked: their bodies then run as
/// non-transactional code (or as part of an enclosing checked block).
///
/// This is how the paper's Table 1 performance runs are configured: methods
/// already known to be non-atomic are excluded, so "program traces contain
/// many small transactions rather than a few monolithic ones".
#[derive(Debug)]
pub struct SpecFilter<T> {
    inner: T,
    spec: AtomicitySpec,
    /// Per-thread stack: `true` for begins forwarded to the inner tool.
    stacks: HashMap<ThreadId, Vec<bool>>,
    suppressed: u64,
}

impl<T: Tool> SpecFilter<T> {
    /// Wraps `inner`, checking only the blocks selected by `spec`.
    pub fn new(spec: AtomicitySpec, inner: T) -> Self {
        Self {
            inner,
            spec,
            stacks: HashMap::new(),
            suppressed: 0,
        }
    }

    /// Number of suppressed `begin`/`end` markers.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Consumes the filter, returning the inner tool.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Borrows the inner tool.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Tool> Tool for SpecFilter<T> {
    fn name(&self) -> &'static str {
        "spec-filter"
    }

    fn op(&mut self, index: usize, op: Op) {
        match op {
            Op::Begin { t, l } => {
                let keep = self.spec.should_check(l);
                self.stacks.entry(t).or_default().push(keep);
                if !keep {
                    self.suppressed += 1;
                    return;
                }
            }
            Op::End { t } => {
                let keep = self.stacks.entry(t).or_default().pop().unwrap_or(true);
                if !keep {
                    self.suppressed += 1;
                    return;
                }
            }
            _ => {}
        }
        self.inner.op(index, op);
    }

    fn end_of_trace(&mut self) {
        self.inner.end_of_trace();
    }

    fn take_warnings(&mut self) -> Vec<Warning> {
        self.inner.take_warnings()
    }
}

/// Offline, *sound* variant of thread-local filtering: removes accesses to
/// variables that only one thread ever touches across the whole trace.
pub fn strip_thread_local(trace: &Trace) -> Trace {
    let mut owner: HashMap<VarId, Option<ThreadId>> = HashMap::new();
    for (_, op) in trace.iter() {
        if let Some(x) = op.var() {
            let t = op.tid();
            owner
                .entry(x)
                .and_modify(|o| {
                    if *o != Some(t) {
                        *o = None;
                    }
                })
                .or_insert(Some(t));
        }
    }
    let mut out = Trace::new();
    *out.names_mut() = trace.names().clone();
    for (_, op) in trace.iter() {
        match op.var() {
            Some(x) if owner.get(&x).copied().flatten().is_some() => {}
            _ => out.push(op),
        }
    }
    out
}

/// Offline re-entrancy stripping: keeps only the outermost acquire/release
/// of each re-entrantly held lock.
pub fn strip_reentrant(trace: &Trace) -> Trace {
    let mut holds: HashMap<LockId, u32> = HashMap::new();
    let mut out = Trace::new();
    *out.names_mut() = trace.names().clone();
    for (_, op) in trace.iter() {
        match op {
            Op::Acquire { m, .. } => {
                let c = holds.entry(m).or_insert(0);
                *c += 1;
                if *c > 1 {
                    continue;
                }
            }
            Op::Release { m, .. } => {
                let c = holds.entry(m).or_insert(0);
                *c = c.saturating_sub(1);
                if *c > 0 {
                    continue;
                }
                holds.remove(&m);
            }
            _ => {}
        }
        out.push(op);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::run_tool;
    use velodrome_events::TraceBuilder;

    #[derive(Default)]
    struct Sink {
        ops: Vec<Op>,
    }

    impl Tool for Sink {
        fn name(&self) -> &'static str {
            "sink"
        }
        fn op(&mut self, _index: usize, op: Op) {
            self.ops.push(op);
        }
    }

    #[test]
    fn reentrant_acquires_suppressed() {
        let mut b = TraceBuilder::new();
        // T1 acquires m twice (re-entrant), releases twice.
        b.acquire("T1", "m").acquire("T1", "m").read("T1", "x");
        b.release("T1", "m").release("T1", "m");
        let mut filter = ReentrantLockFilter::new(Sink::default());
        run_tool(&mut filter, &b.finish());
        assert_eq!(filter.suppressed(), 2);
        let ops = &filter.inner().ops;
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], Op::Acquire { .. }));
        assert!(matches!(ops[1], Op::Read { .. }));
        assert!(matches!(ops[2], Op::Release { .. }));
    }

    #[test]
    fn non_reentrant_locking_passes_through() {
        let mut b = TraceBuilder::new();
        b.acquire("T1", "m")
            .release("T1", "m")
            .acquire("T2", "m")
            .release("T2", "m");
        let mut filter = ReentrantLockFilter::new(Sink::default());
        run_tool(&mut filter, &b.finish());
        assert_eq!(filter.suppressed(), 0);
        assert_eq!(filter.inner().ops.len(), 4);
    }

    #[test]
    fn thread_local_accesses_suppressed_until_shared() {
        let mut b = TraceBuilder::new();
        b.read("T1", "x").write("T1", "x"); // local: suppressed
        b.read("T2", "x"); // second thread: shared from here on
        b.write("T1", "x");
        let mut filter = ThreadLocalFilter::new(Sink::default());
        run_tool(&mut filter, &b.finish());
        assert_eq!(filter.suppressed(), 2);
        assert_eq!(filter.inner().ops.len(), 2);
    }

    #[test]
    fn thread_local_filter_passes_locks_and_markers() {
        let mut b = TraceBuilder::new();
        b.begin("T1", "p")
            .acquire("T1", "m")
            .release("T1", "m")
            .end("T1");
        let mut filter = ThreadLocalFilter::new(Sink::default());
        run_tool(&mut filter, &b.finish());
        assert_eq!(filter.inner().ops.len(), 4);
    }

    #[test]
    fn strip_thread_local_is_sound_offline() {
        let mut b = TraceBuilder::new();
        b.read("T1", "private").write("T1", "private");
        b.read("T1", "shared").write("T2", "shared");
        let stripped = strip_thread_local(&b.finish());
        assert_eq!(stripped.len(), 2);
        assert!(stripped.ops().iter().all(|op| op.var().is_some()));
    }

    #[test]
    fn strip_reentrant_keeps_outermost_pair() {
        let mut b = TraceBuilder::new();
        b.acquire("T1", "m")
            .acquire("T1", "m")
            .release("T1", "m")
            .release("T1", "m");
        let stripped = strip_reentrant(&b.finish());
        assert_eq!(stripped.len(), 2);
    }

    #[test]
    fn spec_filter_drops_excluded_blocks() {
        use velodrome_events::Label;
        let mut b = TraceBuilder::new();
        b.begin("T1", "keep").read("T1", "x").end("T1");
        b.begin("T1", "drop").read("T1", "x").end("T1");
        b.begin("T1", "drop")
            .begin("T1", "keep")
            .read("T1", "x")
            .end("T1")
            .end("T1");
        let spec = AtomicitySpec::excluding([Label::new(1)]); // "drop"
        let mut filter = SpecFilter::new(spec, Sink::default());
        run_tool(&mut filter, &b.finish());
        assert_eq!(filter.suppressed(), 4);
        let markers: Vec<String> = filter
            .inner()
            .ops
            .iter()
            .filter(|o| o.is_marker())
            .map(|o| o.to_string())
            .collect();
        // Only the two "keep" blocks' markers survive.
        assert_eq!(
            markers,
            vec!["begin_L0(T0)", "end(T0)", "begin_L0(T0)", "end(T0)"]
        );
        assert_eq!(filter.inner().ops.len(), 3 + 4);
    }

    #[test]
    fn filters_preserve_names() {
        let mut b = TraceBuilder::new();
        b.read("T1", "shared").write("T2", "shared");
        let trace = b.finish();
        let stripped = strip_thread_local(&trace);
        assert_eq!(stripped.names().var(VarId::new(0)), "shared");
    }
}
