//! Atomicity specifications: which atomic blocks a back-end should check.
//!
//! Velodrome "takes as input a compiled Java program and a specification of
//! which methods in that program should be atomic" (Section 5). Our traces
//! already carry `begin`/`end` markers for every *candidate* atomic block;
//! the [`AtomicitySpec`] selects the subset whose serializability the
//! back-end must verify. The paper uses two configurations:
//!
//! * *all methods atomic* — the Table 2 experiments; and
//! * *only not-yet-refuted methods atomic* — the Table 1 performance runs,
//!   which check only the methods that satisfied their specification.

use std::collections::HashSet;
use velodrome_events::Label;

/// Selects which atomic-block labels to check.
#[derive(Debug, Clone, Default)]
pub enum AtomicitySpec {
    /// Check every atomic block (Table 2 configuration).
    #[default]
    All,
    /// Check only the listed labels.
    Only(HashSet<Label>),
    /// Check everything except the listed labels (Table 1 configuration:
    /// exclude methods already known to be non-atomic).
    Excluding(HashSet<Label>),
}

impl AtomicitySpec {
    /// Checks every atomic block.
    pub fn all() -> Self {
        AtomicitySpec::All
    }

    /// Checks only the given labels.
    pub fn only(labels: impl IntoIterator<Item = Label>) -> Self {
        AtomicitySpec::Only(labels.into_iter().collect())
    }

    /// Checks everything except the given labels.
    pub fn excluding(labels: impl IntoIterator<Item = Label>) -> Self {
        AtomicitySpec::Excluding(labels.into_iter().collect())
    }

    /// Should a block with this label be treated as atomic and checked?
    pub fn should_check(&self, label: Label) -> bool {
        match self {
            AtomicitySpec::All => true,
            AtomicitySpec::Only(set) => set.contains(&label),
            AtomicitySpec::Excluding(set) => !set.contains(&label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_checks_everything() {
        let spec = AtomicitySpec::all();
        assert!(spec.should_check(Label::new(0)));
        assert!(spec.should_check(Label::new(99)));
    }

    #[test]
    fn only_checks_listed() {
        let spec = AtomicitySpec::only([Label::new(1), Label::new(3)]);
        assert!(!spec.should_check(Label::new(0)));
        assert!(spec.should_check(Label::new(1)));
        assert!(spec.should_check(Label::new(3)));
    }

    #[test]
    fn excluding_skips_listed() {
        let spec = AtomicitySpec::excluding([Label::new(2)]);
        assert!(spec.should_check(Label::new(0)));
        assert!(!spec.should_check(Label::new(2)));
    }

    #[test]
    fn default_is_all() {
        assert!(matches!(AtomicitySpec::default(), AtomicitySpec::All));
    }
}
