//! Instrumentation shims for live multithreaded Rust code.
//!
//! RoadRunner rewrites Java bytecode so every lock operation, field access,
//! and atomic-method entry/exit emits an event. Rust has no load-time
//! rewriting, so this module provides the *shim* equivalent (the
//! "custom shims" route): programs use [`Shared`] variables, [`TLock`]
//! locks, and [`Runtime::atomic`] sections, and every use emits the
//! corresponding event into a globally ordered stream that is recorded
//! and/or fed online to a back-end [`Tool`].
//!
//! Events are emitted while holding a single runtime mutex, so the recorded
//! order is a real interleaving of the execution (a total observation
//! order), exactly what a dynamic analysis observes.
//!
//! # Example
//!
//! ```
//! use velodrome_monitor::shim::Runtime;
//!
//! let rt = Runtime::recorder();
//! let x = rt.shared("x", 0i64);
//! rt.atomic("increment", || {
//!     let v = x.get();
//!     x.set(v + 1);
//! });
//! let (trace, _warnings) = rt.finish();
//! assert_eq!(trace.len(), 4); // begin, rd, wr, end
//! ```

use crate::budget::{DegradationLevel, ResourceBudget};
use crate::tool::{Tool, Warning, WarningCategory};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use velodrome_events::{Label, LockId, Op, ThreadId, Trace, VarId};

/// Fault-tolerance telemetry of a [`Runtime`]: the ladder state, what
/// tripped, and when. Reading it is the supported way to tell whether the
/// analysis behind a run was degraded (and from which event onward).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeTelemetry {
    /// Current degradation-ladder state of the runtime.
    pub ladder: DegradationLevel,
    /// Events observed (emitted by shims or synthesized by `finish`).
    pub events_seen: u64,
    /// Tool callbacks that panicked (the tool is quarantined on the first).
    pub tool_panics: u64,
    /// Events not retained in the replay trace because the trace budget
    /// tripped.
    pub trace_events_dropped: u64,
    /// Ladder transitions taken.
    pub degradations: u64,
    /// `End`/`Release` events synthesized by [`Runtime::finish`] for
    /// threads that died inside transactions or while holding locks.
    pub synthesized_events: u64,
    /// Event index of the first ladder transition, if any.
    pub degraded_at: Option<usize>,
}

impl RuntimeTelemetry {
    /// Mirrors the runtime's fault-tolerance counters into a telemetry
    /// registry as gauges under the stable `runtime.*` names (see
    /// [`velodrome_telemetry::names`]). A no-op on the disabled handle.
    /// The ladder gauge carries [`DegradationLevel::rung`], which is
    /// monotone non-decreasing over a run.
    pub fn publish(&self, telemetry: &velodrome_telemetry::Telemetry) {
        use velodrome_telemetry::names;
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.set_gauge(names::RUNTIME_EVENTS_SEEN, self.events_seen);
        telemetry.set_gauge(names::RUNTIME_TOOL_PANICS, self.tool_panics);
        telemetry.set_gauge(
            names::RUNTIME_TRACE_EVENTS_DROPPED,
            self.trace_events_dropped,
        );
        telemetry.set_gauge(names::RUNTIME_DEGRADATIONS, self.degradations);
        telemetry.set_gauge(names::RUNTIME_SYNTHESIZED_EVENTS, self.synthesized_events);
        telemetry.set_gauge(names::RUNTIME_LADDER, self.ladder.rung());
    }
}

struct RuntimeState {
    trace: Trace,
    tool: Option<Box<dyn Tool + Send>>,
    warnings: Vec<Warning>,
    threads: HashMap<std::thread::ThreadId, ThreadId>,
    next_thread: u32,
    next_var: u32,
    next_lock: u32,
    labels: HashMap<String, Label>,
    finished: bool,
    budget: ResourceBudget,
    telemetry: RuntimeTelemetry,
    /// `false` once the replay-trace budget has tripped.
    retain_trace: bool,
    /// Per-thread count of currently open atomic blocks.
    open_txns: HashMap<ThreadId, u32>,
    /// Per-thread locks currently held, in acquisition order.
    held_locks: HashMap<ThreadId, Vec<LockId>>,
}

impl RuntimeState {
    fn emit(&mut self, op: Op) {
        assert!(!self.finished, "event emitted after Runtime::finish");
        let index = self.telemetry.events_seen as usize;
        self.telemetry.events_seen += 1;

        // Track open transactions and held locks so `finish` can synthesize
        // the implied closing events for threads that never got there.
        match op {
            Op::Begin { t, .. } => *self.open_txns.entry(t).or_insert(0) += 1,
            Op::End { t } => {
                if let Some(depth) = self.open_txns.get_mut(&t) {
                    *depth = depth.saturating_sub(1);
                }
            }
            Op::Acquire { t, m } => self.held_locks.entry(t).or_default().push(m),
            Op::Release { t, m } => {
                if let Some(held) = self.held_locks.get_mut(&t) {
                    if let Some(pos) = held.iter().rposition(|&h| h == m) {
                        held.remove(pos);
                    }
                }
            }
            _ => {}
        }

        if self.retain_trace
            && self.budget.max_trace_events > 0
            && self.trace.len() >= self.budget.max_trace_events
        {
            self.retain_trace = false;
            self.degrade(
                DegradationLevel::TraceDropped,
                op.tid(),
                index,
                format!(
                    "replay-trace budget exhausted at event {index}: {} events retained, \
                     further events are analyzed but not recorded",
                    self.trace.len()
                ),
            );
        }
        if self.retain_trace {
            self.trace.push(op);
        } else {
            self.telemetry.trace_events_dropped += 1;
        }

        // Panic isolation: a crashing back-end must never take the host
        // down. The runtime's own state is consistent at this point (the
        // closure touches only the tool), so `AssertUnwindSafe` is sound,
        // and parking_lot mutexes do not poison.
        let panicked = match self.tool.as_mut() {
            Some(tool) => catch_unwind(AssertUnwindSafe(|| tool.op(index, op))).err(),
            None => None,
        };
        if let Some(payload) = panicked {
            self.quarantine_tool(op.tid(), index, &payload);
        }
    }

    /// Steps down the degradation ladder (transitions are monotonic),
    /// counting the transition and surfacing it as a `Degraded` warning.
    fn degrade(&mut self, to: DegradationLevel, t: ThreadId, index: usize, reason: String) {
        if to <= self.telemetry.ladder {
            return;
        }
        self.telemetry.ladder = to;
        self.telemetry.degradations += 1;
        if self.telemetry.degraded_at.is_none() {
            self.telemetry.degraded_at = Some(index);
        }
        self.warnings.push(Warning {
            tool: "runtime",
            category: WarningCategory::Degraded,
            label: None,
            thread: t,
            op_index: index,
            message: format!("degraded to {to}: {reason}"),
            details: None,
        });
    }

    /// Quarantines a panicked tool: warnings it accumulated before the
    /// panic are salvaged, the tool is removed (and dropped under its own
    /// panic guard), the runtime degrades to recorder-only mode, and the
    /// panic payload is preserved in the `Degraded` warning.
    fn quarantine_tool(&mut self, t: ThreadId, index: usize, payload: &(dyn std::any::Any + Send)) {
        self.telemetry.tool_panics += 1;
        let mut tool = self.tool.take();
        let name = tool.as_ref().map(|tl| tl.name()).unwrap_or("tool");
        let reason = format!(
            "tool `{name}` panicked at event {index}: {}",
            panic_message(payload)
        );
        // Salvage the verdicts the tool reached before panicking — the
        // byte-identical-prefix guarantee depends on not losing them.
        if let Some(tl) = tool.as_mut() {
            if let Ok(salvaged) = catch_unwind(AssertUnwindSafe(|| tl.take_warnings())) {
                self.warnings.extend(salvaged);
            }
        }
        // Dropping the tool may itself panic; isolate that too.
        let _ = catch_unwind(AssertUnwindSafe(move || drop(tool)));
        self.degrade(DegradationLevel::RecorderOnly, t, index, reason);
    }

    /// Synthesizes the events implied by threads that are still inside
    /// open transactions or holding locks: per thread (in identifier
    /// order), releases in reverse acquisition order, then one `End` per
    /// open block. Synthesized events flow through the normal `emit` path
    /// (so an online tool observes them) and are flagged in the trace.
    fn synthesize_closing_events(&mut self) {
        let mut threads: Vec<ThreadId> = self
            .held_locks
            .iter()
            .filter(|(_, held)| !held.is_empty())
            .map(|(&t, _)| t)
            .chain(
                self.open_txns
                    .iter()
                    .filter(|(_, &depth)| depth > 0)
                    .map(|(&t, _)| t),
            )
            .collect();
        threads.sort_by_key(|t| t.raw());
        threads.dedup();
        for t in threads {
            let held = self.held_locks.get(&t).cloned().unwrap_or_default();
            for &m in held.iter().rev() {
                self.emit_synthesized(Op::Release { t, m });
            }
            let depth = self.open_txns.get(&t).copied().unwrap_or(0);
            for _ in 0..depth {
                self.emit_synthesized(Op::End { t });
            }
        }
    }

    fn emit_synthesized(&mut self, op: Op) {
        let before = self.trace.len();
        self.emit(op);
        if self.trace.len() > before {
            self.trace.mark_synthesized(before);
        }
        self.telemetry.synthesized_events += 1;
    }

    fn current_thread(&mut self) -> ThreadId {
        let os = std::thread::current().id();
        if let Some(&t) = self.threads.get(&os) {
            return t;
        }
        let t = ThreadId::new(self.next_thread);
        self.next_thread += 1;
        self.threads.insert(os, t);
        let name = std::thread::current().name().map(str::to_owned);
        if let Some(name) = name {
            self.trace.names_mut().name_thread(t, name);
        }
        t
    }
}

/// A handle to the monitoring runtime. Cheap to clone; all clones share the
/// same event stream.
#[derive(Clone)]
pub struct Runtime {
    state: Arc<Mutex<RuntimeState>>,
}

use crate::isolate::panic_message;

impl Runtime {
    fn with_tool(tool: Option<Box<dyn Tool + Send>>, budget: ResourceBudget) -> Self {
        Self {
            state: Arc::new(Mutex::new(RuntimeState {
                trace: Trace::new(),
                tool,
                warnings: Vec::new(),
                threads: HashMap::new(),
                next_thread: 0,
                next_var: 0,
                next_lock: 0,
                labels: HashMap::new(),
                finished: false,
                budget,
                telemetry: RuntimeTelemetry::default(),
                retain_trace: true,
                open_txns: HashMap::new(),
                held_locks: HashMap::new(),
            })),
        }
    }

    /// Creates a runtime that records the trace for offline analysis.
    pub fn recorder() -> Self {
        Self::with_tool(None, ResourceBudget::UNLIMITED)
    }

    /// Creates a runtime that records the trace *and* feeds each event to
    /// `tool` online, under the event lock.
    pub fn online(tool: impl Tool + Send + 'static) -> Self {
        Self::with_tool(Some(Box::new(tool)), ResourceBudget::UNLIMITED)
    }

    /// Like [`Runtime::online`], with an explicit [`ResourceBudget`]. The
    /// runtime enforces `max_trace_events` (trace retention); analysis-side
    /// budgets are enforced by the tool itself.
    pub fn online_with_budget(tool: impl Tool + Send + 'static, budget: ResourceBudget) -> Self {
        Self::with_tool(Some(Box::new(tool)), budget)
    }

    /// Like [`Runtime::recorder`], with an explicit [`ResourceBudget`].
    pub fn recorder_with_budget(budget: ResourceBudget) -> Self {
        Self::with_tool(None, budget)
    }

    /// Current fault-tolerance telemetry (ladder state, panics, drops).
    pub fn telemetry(&self) -> RuntimeTelemetry {
        self.state.lock().telemetry
    }

    /// Current degradation-ladder state of the runtime.
    pub fn ladder(&self) -> DegradationLevel {
        self.state.lock().telemetry.ladder
    }

    /// Allocates a new instrumented shared variable initialized to `value`.
    pub fn shared<T>(&self, name: &str, value: T) -> Shared<T> {
        let mut st = self.state.lock();
        let id = VarId::new(st.next_var);
        st.next_var += 1;
        st.trace.names_mut().name_var(id, name);
        Shared {
            rt: self.clone(),
            id,
            value: Arc::new(Mutex::new(value)),
        }
    }

    /// Allocates a new instrumented lock protecting `value`.
    pub fn lock<T>(&self, name: &str, value: T) -> TLock<T> {
        let mut st = self.state.lock();
        let id = LockId::new(st.next_lock);
        st.next_lock += 1;
        st.trace.names_mut().name_lock(id, name);
        TLock {
            rt: self.clone(),
            id,
            inner: Arc::new(Mutex::new(value)),
        }
    }

    fn intern_label(&self, name: &str) -> Label {
        let mut st = self.state.lock();
        if let Some(&l) = st.labels.get(name) {
            return l;
        }
        let l = Label::new(st.labels.len() as u32);
        st.labels.insert(name.to_owned(), l);
        st.trace.names_mut().name_label(l, name);
        l
    }

    /// Runs `body` inside an atomic block labeled `label`, emitting
    /// `begin`/`end` events around it. Nested calls produce nested blocks.
    pub fn atomic<R>(&self, label: &str, body: impl FnOnce() -> R) -> R {
        let l = self.intern_label(label);
        {
            let mut st = self.state.lock();
            let t = st.current_thread();
            st.emit(Op::Begin { t, l });
        }
        let result = body();
        {
            let mut st = self.state.lock();
            let t = st.current_thread();
            st.emit(Op::End { t });
        }
        result
    }

    /// Reserves a thread identifier for a child the current thread is about
    /// to spawn, emitting the `fork` event. The returned token must be
    /// passed to [`Runtime::adopt`] inside the child.
    pub fn fork(&self) -> ForkToken {
        let mut st = self.state.lock();
        let parent = st.current_thread();
        let child = ThreadId::new(st.next_thread);
        st.next_thread += 1;
        st.emit(Op::Fork { t: parent, child });
        ForkToken { child }
    }

    /// Binds the calling OS thread to the identifier reserved by
    /// [`Runtime::fork`].
    ///
    /// # Panics
    ///
    /// Panics if the calling thread already has an identifier.
    pub fn adopt(&self, token: ForkToken) {
        let mut st = self.state.lock();
        let os = std::thread::current().id();
        assert!(
            !st.threads.contains_key(&os),
            "adopt called on a thread that already has an identifier"
        );
        st.threads.insert(os, token.child);
        let name = std::thread::current().name().map(str::to_owned);
        if let Some(name) = name {
            st.trace.names_mut().name_thread(token.child, name);
        }
    }

    /// Emits the `join` event for a child thread that has terminated (call
    /// after `JoinHandle::join` returns).
    pub fn join(&self, token: ForkToken) {
        let mut st = self.state.lock();
        let t = st.current_thread();
        st.emit(Op::Join {
            t,
            child: token.child,
        });
    }

    /// Registers a display name for the calling thread.
    pub fn name_current_thread(&self, name: &str) {
        let mut st = self.state.lock();
        let t = st.current_thread();
        st.trace.names_mut().name_thread(t, name);
    }

    /// Number of events recorded so far.
    pub fn events_recorded(&self) -> usize {
        self.state.lock().trace.len()
    }

    /// Finishes monitoring: flushes the online tool (if any) and returns the
    /// recorded trace together with all warnings produced.
    ///
    /// # Semantics
    ///
    /// * **Idempotent.** The first call returns the trace and warnings;
    ///   subsequent calls are no-ops returning an empty trace and no
    ///   warnings (they never panic, so racing shutdown paths are safe).
    /// * **Open transactions and held locks.** Threads that died (or were
    ///   abandoned) inside an atomic block or while holding a [`TLock`]
    ///   leave the event stream dangling. `finish` synthesizes the implied
    ///   closing events — per thread in identifier order, `rel` for each
    ///   held lock in reverse acquisition order, then one `end` per open
    ///   block — feeds them through the online tool like real events, and
    ///   flags them in the trace ([`Trace::synthesized`]). This keeps the
    ///   trace well-formed for replay and lets the analysis close its
    ///   transactions, at the cost of treating the truncated block as if it
    ///   had completed (the sound direction: no violation is invented).
    /// * **Panic isolation.** Tool flush callbacks run under the same
    ///   panic guard as event callbacks; a panicking tool is quarantined
    ///   and reported as a `Degraded` warning instead of unwinding into
    ///   the host.
    ///
    /// Further event *emission* after `finish` panics (emitting into a
    /// finished runtime is a host bug, not a tool fault).
    pub fn finish(&self) -> (Trace, Vec<Warning>) {
        let mut st = self.state.lock();
        if st.finished {
            return (Trace::new(), Vec::new());
        }
        st.synthesize_closing_events();
        st.finished = true;
        if let Some(mut tool) = st.tool.take() {
            let index = st.telemetry.events_seen as usize;
            let flushed = catch_unwind(AssertUnwindSafe(|| {
                tool.end_of_trace();
                tool.take_warnings()
            }));
            match flushed {
                Ok(w) => st.warnings.extend(w),
                Err(payload) => {
                    st.tool = Some(tool);
                    st.quarantine_tool(ThreadId::new(0), index, &payload);
                }
            }
        }
        (
            std::mem::take(&mut st.trace),
            std::mem::take(&mut st.warnings),
        )
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Runtime")
            .field("events", &st.trace.len())
            .field("online", &st.tool.is_some())
            .finish()
    }
}

/// Token linking a spawned thread to the `fork` event emitted by its parent.
#[derive(Debug, Clone, Copy)]
pub struct ForkToken {
    child: ThreadId,
}

impl ForkToken {
    /// The child's thread identifier.
    pub fn thread_id(self) -> ThreadId {
        self.child
    }
}

/// An instrumented shared variable.
///
/// Every [`get`](Shared::get) emits a read event and every
/// [`set`](Shared::set) a write event, in the global observation order.
/// Individual accesses are atomic; sequences of accesses are not — which is
/// precisely what an atomicity checker is for.
#[derive(Clone)]
pub struct Shared<T> {
    rt: Runtime,
    id: VarId,
    value: Arc<Mutex<T>>,
}

impl<T: Clone> Shared<T> {
    /// Reads the current value, emitting a read event.
    pub fn get(&self) -> T {
        let mut st = self.rt.state.lock();
        let t = st.current_thread();
        st.emit(Op::Read { t, x: self.id });
        self.value.lock().clone()
    }

    /// Reads the value *without* emitting an event — for assertions in
    /// tests and examples, never for monitored program logic.
    pub fn get_unmonitored(&self) -> T {
        self.value.lock().clone()
    }
}

impl<T> Shared<T> {
    /// Writes a new value, emitting a write event.
    pub fn set(&self, value: T) {
        let mut st = self.rt.state.lock();
        let t = st.current_thread();
        st.emit(Op::Write { t, x: self.id });
        *self.value.lock() = value;
    }

    /// The variable's identifier in the event stream.
    pub fn id(&self) -> VarId {
        self.id
    }
}

impl<T> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

/// An instrumented mutex.
///
/// Acquisition blocks like a real lock and emits `acq`/`rel` events at the
/// points where the lock is actually taken and handed back.
pub struct TLock<T> {
    rt: Runtime,
    id: LockId,
    inner: Arc<Mutex<T>>,
}

impl<T> Clone for TLock<T> {
    fn clone(&self) -> Self {
        Self {
            rt: self.rt.clone(),
            id: self.id,
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for TLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TLock")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl<T> TLock<T> {
    /// Acquires the lock, emitting an acquire event, and returns a guard
    /// that emits the release event when dropped.
    pub fn lock(&self) -> TLockGuard<'_, T> {
        let guard = self.inner.lock();
        {
            let mut st = self.rt.state.lock();
            let t = st.current_thread();
            st.emit(Op::Acquire { t, m: self.id });
        }
        TLockGuard {
            lock: self,
            guard: Some(guard),
        }
    }

    /// The lock's identifier in the event stream.
    pub fn id(&self) -> LockId {
        self.id
    }
}

/// Guard returned by [`TLock::lock`]; releases (and emits `rel`) on drop.
pub struct TLockGuard<'a, T> {
    lock: &'a TLock<T>,
    guard: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for TLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for TLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

impl<T> Drop for TLockGuard<'_, T> {
    fn drop(&mut self) {
        // Emit the release before actually unlocking, so no other thread's
        // acquire can be observed between the two.
        let mut st = self.lock.rt.state.lock();
        let t = st.current_thread();
        st.emit(Op::Release { t, m: self.lock.id });
        drop(st);
        self.guard.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome_events::semantics;

    #[test]
    fn single_thread_events_in_program_order() {
        let rt = Runtime::recorder();
        let x = rt.shared("x", 0);
        let m = rt.lock("m", ());
        rt.atomic("update", || {
            let _g = m.lock();
            let v = x.get();
            x.set(v + 1);
        });
        let (trace, warnings) = rt.finish();
        assert!(warnings.is_empty());
        let kinds: Vec<_> = trace.ops().iter().map(|o| format!("{o}")).collect();
        assert_eq!(
            kinds,
            vec![
                "begin_L0(T0)",
                "acq(T0, m0)",
                "rd(T0, x0)",
                "wr(T0, x0)",
                "rel(T0, m0)",
                "end(T0)"
            ]
        );
        assert_eq!(semantics::validate(&trace), Ok(()));
    }

    #[test]
    fn names_are_recorded() {
        let rt = Runtime::recorder();
        let x = rt.shared("balance", 100);
        x.set(50);
        rt.name_current_thread("main");
        let (trace, _) = rt.finish();
        assert_eq!(trace.names().var(x.id()), "balance");
        assert_eq!(trace.names().thread(ThreadId::new(0)), "main");
    }

    #[test]
    fn two_real_threads_produce_well_formed_trace() {
        let rt = Runtime::recorder();
        let x = rt.shared("x", 0i64);
        let m = rt.lock("m", ());
        let tok = rt.fork();
        let handle = {
            let rt2 = rt.clone();
            let x2 = x.clone();
            let m2 = m.clone();
            std::thread::spawn(move || {
                rt2.adopt(tok);
                for _ in 0..10 {
                    let _g = m2.lock();
                    let v = x2.get();
                    x2.set(v + 1);
                }
            })
        };
        for _ in 0..10 {
            let _g = m.lock();
            let v = x.get();
            x.set(v + 1);
        }
        handle.join().unwrap();
        rt.join(tok);
        let (trace, _) = rt.finish();
        assert_eq!(semantics::validate(&trace), Ok(()));
        // 2 threads * 10 iterations * 4 ops + fork + join.
        assert_eq!(trace.len(), 82);
        // The final value is 20: the lock makes increments atomic.
        assert_eq!(x.value.lock().clone(), 20);
    }

    #[test]
    fn online_tool_sees_every_event() {
        #[derive(Default)]
        struct Counter(u64);
        impl Tool for Counter {
            fn name(&self) -> &'static str {
                "counter"
            }
            fn op(&mut self, _i: usize, _op: Op) {
                self.0 += 1;
            }
            fn take_warnings(&mut self) -> Vec<Warning> {
                vec![Warning {
                    tool: "counter",
                    category: crate::tool::WarningCategory::Other,
                    label: None,
                    thread: ThreadId::new(0),
                    op_index: self.0 as usize,
                    message: format!("saw {} events", self.0),
                    details: None,
                }]
            }
        }
        let rt = Runtime::online(Counter::default());
        let x = rt.shared("x", 0);
        x.set(1);
        let _ = x.get();
        let (trace, warnings) = rt.finish();
        assert_eq!(trace.len(), 2);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].message.contains("saw 2 events"));
    }

    #[test]
    fn guard_gives_access_to_protected_data() {
        let rt = Runtime::recorder();
        let m = rt.lock("m", vec![1, 2, 3]);
        {
            let mut g = m.lock();
            g.push(4);
            assert_eq!(g.len(), 4);
        }
        let (trace, _) = rt.finish();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    #[should_panic(expected = "after Runtime::finish")]
    fn emitting_after_finish_panics() {
        let rt = Runtime::recorder();
        let x = rt.shared("x", 0);
        let _ = rt.finish();
        x.set(1);
    }

    #[test]
    fn fork_token_exposes_child_id() {
        let rt = Runtime::recorder();
        let _ = rt.shared("x", 0); // force main registration later
        let tok = rt.fork();
        assert_eq!(tok.thread_id(), ThreadId::new(1));
    }
}
