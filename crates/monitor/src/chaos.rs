//! Chaos harness: declarative fault injection for the monitoring runtime.
//!
//! A production atomicity monitor must survive its own failures: a
//! panicking back-end, an exhausted resource budget, an event stream cut
//! off mid-transaction, a host thread dying inside an atomic block. A
//! [`FaultPlan`] names one such failure declaratively; [`run_plan`] applies
//! it while replaying a recorded trace through a tool with the same
//! isolation guarantees as the live [`Runtime`](crate::shim::Runtime), and
//! reports where (if anywhere) fidelity was lost.
//!
//! The harness's contract — asserted by `crates/monitor/tests/chaos.rs`
//! and the `chaos` benchmark binary — is threefold: the host always
//! completes, every warning emitted *before* the degradation point is
//! byte-identical to a clean run, and telemetry pinpoints the exact event
//! at which the run degraded.

use crate::budget::{DegradationLevel, ResourceBudget};
use crate::tool::{Tool, Warning, WarningCategory};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use velodrome_events::{Op, ThreadId, Trace};

/// A declarative fault to inject into a monitored run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No fault: the control plan.
    #[default]
    None,
    /// The back-end tool panics while processing the event at this index.
    ToolPanic {
        /// Index of the event whose callback panics.
        at: usize,
    },
    /// The event stream ends abruptly after this many events (a crashed
    /// front end / truncated recording); `end_of_trace` still fires.
    TruncateStream {
        /// Number of events delivered before the cut.
        at: usize,
    },
    /// A resource budget is exhausted mid-run, forcing the analysis down
    /// the degradation ladder.
    Budget(ResourceBudget),
    /// A host thread dies mid-transaction: delivery stops at the cut
    /// index and the implied `end`/`rel` events are synthesized, exactly
    /// as [`Runtime::finish`](crate::shim::Runtime::finish) does for a
    /// thread that panicked inside an atomic block.
    HostDeath {
        /// Number of events delivered before the thread dies.
        at: usize,
    },
}

/// A named fault plan: one [`Fault`] applied to a monitored run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Stable name for reports.
    pub name: &'static str,
    /// The fault to inject.
    pub fault: Fault,
}

impl FaultPlan {
    /// The control plan: no fault.
    pub fn clean() -> Self {
        Self {
            name: "clean",
            fault: Fault::None,
        }
    }

    /// A tool panic at event `at`.
    pub fn tool_panic(at: usize) -> Self {
        Self {
            name: "tool-panic",
            fault: Fault::ToolPanic { at },
        }
    }

    /// A stream truncated after `at` events.
    pub fn truncate(at: usize) -> Self {
        Self {
            name: "truncated-stream",
            fault: Fault::TruncateStream { at },
        }
    }

    /// A budget-exhaustion fault.
    pub fn budget(budget: ResourceBudget) -> Self {
        Self {
            name: "budget-exhaustion",
            fault: Fault::Budget(budget),
        }
    }

    /// A host thread dying mid-transaction after `at` events.
    pub fn host_death(at: usize) -> Self {
        Self {
            name: "host-death",
            fault: Fault::HostDeath { at },
        }
    }

    /// The resource budget this plan imposes (unlimited unless the fault
    /// is [`Fault::Budget`]).
    pub fn budget_of(&self) -> ResourceBudget {
        match self.fault {
            Fault::Budget(b) => b,
            _ => ResourceBudget::UNLIMITED,
        }
    }

    /// The built-in plan set covering every fault point, scaled to a trace
    /// of `len` events. Used by the chaos test suite and benchmark binary.
    pub fn builtin(len: usize) -> Vec<FaultPlan> {
        let mid = len / 2;
        vec![
            Self::clean(),
            Self::tool_panic(mid),
            Self::tool_panic(0),
            Self::truncate(mid),
            Self::truncate(len.saturating_sub(1)),
            Self::budget(ResourceBudget {
                max_alive_nodes: 4,
                ..ResourceBudget::UNLIMITED
            }),
            Self::budget(ResourceBudget {
                max_tracked_vars: 1,
                ..ResourceBudget::UNLIMITED
            }),
            Self::budget(ResourceBudget {
                max_trace_events: mid,
                ..ResourceBudget::UNLIMITED
            }),
            Self::host_death(mid),
        ]
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.fault {
            Fault::None => write!(f, "{}", self.name),
            Fault::ToolPanic { at } => write!(f, "{}@{at}", self.name),
            Fault::TruncateStream { at } => write!(f, "{}@{at}", self.name),
            Fault::Budget(b) => write!(
                f,
                "{}(alive={},trace={},vars={})",
                self.name, b.max_alive_nodes, b.max_trace_events, b.max_tracked_vars
            ),
            Fault::HostDeath { at } => write!(f, "{}@{at}", self.name),
        }
    }
}

/// A tool combinator that panics while processing the event at a fixed
/// index — the canonical "buggy back-end" for chaos runs.
#[derive(Debug)]
pub struct PanicAt<T> {
    inner: T,
    at: usize,
}

impl<T: Tool> PanicAt<T> {
    /// Wraps `inner`; its `op` callback panics at event index `at`.
    pub fn new(inner: T, at: usize) -> Self {
        Self { inner, at }
    }
}

impl<T: Tool> Tool for PanicAt<T> {
    fn name(&self) -> &'static str {
        "panic-at"
    }
    fn op(&mut self, index: usize, op: Op) {
        assert!(
            index != self.at,
            "chaos: injected tool panic at event {index}"
        );
        self.inner.op(index, op);
    }
    fn end_of_trace(&mut self) {
        self.inner.end_of_trace();
    }
    fn take_warnings(&mut self) -> Vec<Warning> {
        self.inner.take_warnings()
    }
}

/// Outcome of a chaos run.
#[derive(Debug)]
pub struct ChaosRun {
    /// All warnings produced, including `Degraded` transitions.
    pub warnings: Vec<Warning>,
    /// Ladder state the run landed in (driver-side; a budgeted tool may
    /// additionally report its own ladder through its stats).
    pub ladder: DegradationLevel,
    /// Event index at which the driver degraded, if it did.
    pub degraded_at: Option<usize>,
    /// Events actually delivered to the tool.
    pub events_delivered: usize,
    /// `end`/`rel` events synthesized for a host-death cut.
    pub synthesized: usize,
}

impl ChaosRun {
    /// The warnings that are *verdicts* (everything except `Degraded`
    /// bookkeeping).
    pub fn verdicts(&self) -> impl Iterator<Item = &Warning> {
        self.warnings
            .iter()
            .filter(|w| w.category != WarningCategory::Degraded)
    }
}

/// Replays `trace` through `tool` under `plan`, with the same panic
/// isolation as the live runtime: a panicking tool is quarantined (the run
/// degrades to recorder-only and continues observing events), never
/// propagated to the caller.
///
/// For [`Fault::HostDeath`] cuts, the implied closing events of open
/// transactions and held locks are synthesized after the cut, mirroring
/// [`Runtime::finish`](crate::shim::Runtime::finish).
pub fn run_plan<T: Tool>(trace: &Trace, mut tool: T, plan: &FaultPlan) -> ChaosRun {
    let cut = match plan.fault {
        Fault::TruncateStream { at } | Fault::HostDeath { at } => at.min(trace.len()),
        _ => trace.len(),
    };
    let mut warnings = Vec::new();
    let mut ladder = DegradationLevel::Full;
    let mut degraded_at = None;
    let mut delivered = 0usize;
    let mut alive = true;

    // Bookkeeping for host-death synthesis.
    let mut open_txns: std::collections::HashMap<ThreadId, u32> = Default::default();
    let mut held: std::collections::HashMap<ThreadId, Vec<velodrome_events::LockId>> =
        Default::default();

    let feed = |tool: &mut T,
                alive: &mut bool,
                warnings: &mut Vec<Warning>,
                ladder: &mut DegradationLevel,
                degraded_at: &mut Option<usize>,
                i: usize,
                op: Op| {
        if !*alive {
            return;
        }
        let panicked = catch_unwind(AssertUnwindSafe(|| tool.op(i, op))).err();
        if let Some(payload) = panicked {
            *alive = false;
            *ladder = DegradationLevel::RecorderOnly;
            *degraded_at = Some(i);
            // Salvage the verdicts the tool reached before panicking, as
            // the live runtime's quarantine does.
            if let Ok(salvaged) = catch_unwind(AssertUnwindSafe(|| tool.take_warnings())) {
                warnings.extend(salvaged);
            }
            let message = crate::isolate::panic_message(payload.as_ref()).to_owned();
            warnings.push(Warning {
                tool: "chaos",
                category: WarningCategory::Degraded,
                label: None,
                thread: op.tid(),
                op_index: i,
                message: format!(
                    "degraded to recorder-only: tool panicked at event {i}: {message}"
                ),
                details: None,
            });
        }
    };

    for (i, op) in trace.iter().take(cut) {
        match op {
            Op::Begin { t, .. } => *open_txns.entry(t).or_insert(0) += 1,
            Op::End { t } => {
                if let Some(d) = open_txns.get_mut(&t) {
                    *d = d.saturating_sub(1);
                }
            }
            Op::Acquire { t, m } => held.entry(t).or_default().push(m),
            Op::Release { t, m } => {
                if let Some(v) = held.get_mut(&t) {
                    if let Some(pos) = v.iter().rposition(|&h| h == m) {
                        v.remove(pos);
                    }
                }
            }
            _ => {}
        }
        feed(
            &mut tool,
            &mut alive,
            &mut warnings,
            &mut ladder,
            &mut degraded_at,
            i,
            op,
        );
        delivered += 1;
    }

    // Host death: synthesize the implied closing events past the cut.
    let mut synthesized = 0usize;
    if matches!(plan.fault, Fault::HostDeath { .. }) {
        let mut threads: Vec<ThreadId> = held
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&t, _)| t)
            .chain(open_txns.iter().filter(|(_, &d)| d > 0).map(|(&t, _)| t))
            .collect();
        threads.sort_by_key(|t| t.raw());
        threads.dedup();
        for t in threads {
            for &m in held.get(&t).cloned().unwrap_or_default().iter().rev() {
                feed(
                    &mut tool,
                    &mut alive,
                    &mut warnings,
                    &mut ladder,
                    &mut degraded_at,
                    delivered + synthesized,
                    Op::Release { t, m },
                );
                synthesized += 1;
            }
            for _ in 0..open_txns.get(&t).copied().unwrap_or(0) {
                feed(
                    &mut tool,
                    &mut alive,
                    &mut warnings,
                    &mut ladder,
                    &mut degraded_at,
                    delivered + synthesized,
                    Op::End { t },
                );
                synthesized += 1;
            }
        }
    }

    if alive {
        let flushed = catch_unwind(AssertUnwindSafe(|| {
            tool.end_of_trace();
            tool.take_warnings()
        }));
        match flushed {
            Ok(w) => warnings.extend(w),
            Err(_) => {
                ladder = DegradationLevel::RecorderOnly;
                if degraded_at.is_none() {
                    degraded_at = Some(delivered + synthesized);
                }
                warnings.push(Warning {
                    tool: "chaos",
                    category: WarningCategory::Degraded,
                    label: None,
                    thread: ThreadId::new(0),
                    op_index: delivered + synthesized,
                    message: "degraded to recorder-only: tool panicked in end-of-trace flush"
                        .to_owned(),
                    details: None,
                });
            }
        }
    }
    warnings.sort_by_key(|w| w.op_index);

    ChaosRun {
        warnings,
        ladder,
        degraded_at,
        events_delivered: delivered + synthesized,
        synthesized,
    }
}

/// Renders a warning into a canonical byte string for exact comparison.
fn warning_bytes(w: &Warning) -> String {
    format!(
        "{}|{}|{:?}|{}|{}|{}|{}",
        w.tool,
        w.category,
        w.label,
        w.thread.raw(),
        w.op_index,
        w.message,
        w.details.as_deref().unwrap_or("")
    )
}

/// Checks the chaos harness's core guarantee: every *verdict* warning with
/// `op_index < before` is byte-identical between the clean and faulted
/// runs (`Degraded` bookkeeping warnings in the faulted run are exempt).
/// Returns the first divergence, if any.
pub fn prefix_divergence(
    clean: &[Warning],
    faulted: &[Warning],
    before: usize,
) -> Option<(Option<String>, Option<String>)> {
    let keep = |ws: &[Warning]| -> Vec<String> {
        ws.iter()
            .filter(|w| w.category != WarningCategory::Degraded && w.op_index < before)
            .map(warning_bytes)
            .collect()
    };
    let c = keep(clean);
    let f = keep(faulted);
    for i in 0..c.len().max(f.len()) {
        if c.get(i) != f.get(i) {
            return Some((c.get(i).cloned(), f.get(i).cloned()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::EmptyTool;
    use velodrome_events::TraceBuilder;

    fn trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.begin("T1", "add").acquire("T1", "m").read("T1", "x");
        b.write("T1", "x").release("T1", "m").end("T1");
        b.read("T2", "x");
        b.finish()
    }

    #[test]
    fn clean_plan_delivers_everything() {
        let run = run_plan(&trace(), EmptyTool::new(), &FaultPlan::clean());
        assert_eq!(run.events_delivered, 7);
        assert_eq!(run.ladder, DegradationLevel::Full);
        assert_eq!(run.degraded_at, None);
        assert_eq!(run.synthesized, 0);
    }

    #[test]
    fn tool_panic_is_isolated_and_pinpointed() {
        let run = run_plan(
            &trace(),
            PanicAt::new(EmptyTool::new(), 3),
            &FaultPlan::tool_panic(3),
        );
        assert_eq!(run.ladder, DegradationLevel::RecorderOnly);
        assert_eq!(run.degraded_at, Some(3));
        let degraded: Vec<_> = run
            .warnings
            .iter()
            .filter(|w| w.category == WarningCategory::Degraded)
            .collect();
        assert_eq!(degraded.len(), 1);
        assert!(degraded[0].message.contains("event 3"), "{degraded:?}");
    }

    #[test]
    fn truncation_cuts_delivery_but_still_flushes() {
        let run = run_plan(&trace(), EmptyTool::new(), &FaultPlan::truncate(2));
        assert_eq!(run.events_delivered, 2);
        assert_eq!(run.ladder, DegradationLevel::Full);
    }

    #[test]
    fn host_death_synthesizes_closing_events() {
        // Cut after acquire+begin+read: one open txn, one held lock.
        let run = run_plan(&trace(), EmptyTool::new(), &FaultPlan::host_death(3));
        assert_eq!(run.synthesized, 2, "rel(m) and end(T1)");
        assert_eq!(run.events_delivered, 5);
    }

    #[test]
    fn builtin_plans_cover_every_fault_kind() {
        let plans = FaultPlan::builtin(100);
        assert!(plans.iter().any(|p| matches!(p.fault, Fault::None)));
        assert!(plans
            .iter()
            .any(|p| matches!(p.fault, Fault::ToolPanic { .. })));
        assert!(plans
            .iter()
            .any(|p| matches!(p.fault, Fault::TruncateStream { .. })));
        assert!(plans.iter().any(|p| matches!(p.fault, Fault::Budget(_))));
        assert!(plans
            .iter()
            .any(|p| matches!(p.fault, Fault::HostDeath { .. })));
    }

    #[test]
    fn prefix_divergence_ignores_degraded_and_post_cut_warnings() {
        let mk = |op_index: usize, category: WarningCategory, msg: &str| Warning {
            tool: "t",
            category,
            label: None,
            thread: ThreadId::new(0),
            op_index,
            message: msg.into(),
            details: None,
        };
        let clean = vec![
            mk(1, WarningCategory::Atomicity, "a"),
            mk(9, WarningCategory::Atomicity, "late"),
        ];
        let faulted = vec![
            mk(1, WarningCategory::Atomicity, "a"),
            mk(2, WarningCategory::Degraded, "degraded"),
        ];
        assert_eq!(prefix_divergence(&clean, &faulted, 5), None);
        let diverged = vec![mk(1, WarningCategory::Atomicity, "b")];
        assert!(prefix_divergence(&clean, &diverged, 5).is_some());
    }
}
