//! RoadRunner-style event-stream monitoring framework.
//!
//! The paper's Velodrome prototype is a back-end of RoadRunner, which
//! instruments Java bytecode at load time and forwards an event stream
//! (lock acquires/releases, memory reads/writes, atomic-block entry/exit)
//! to pluggable analyses. This crate reproduces that architecture for Rust:
//!
//! * [`tool`] — the [`Tool`] back-end trait, [`Warning`] diagnostics,
//!   [`ToolChain`] for running several analyses over one stream, and the
//!   paper's `Empty` baseline back-end;
//! * [`spec`] — [`AtomicitySpec`], selecting which atomic blocks to check;
//! * [`filter`] — RoadRunner's front-end filters (re-entrant lock
//!   filtering, thread-local filtering) as tool combinators plus sound
//!   offline variants;
//! * [`shim`] — instrumentation shims ([`shim::Shared`], [`shim::TLock`],
//!   [`shim::Runtime::atomic`]) so real multithreaded Rust code can be
//!   monitored live, the substitution this reproduction uses in place of
//!   bytecode rewriting.

//!
//! Fault tolerance — the runtime is designed to be attached to a live
//! service, so it must never crash, deadlock, or OOM the host:
//!
//! * [`budget`] — [`ResourceBudget`] caps and the [`DegradationLevel`]
//!   ladder the runtime steps down when a cap trips;
//! * [`chaos`] — declarative [`chaos::FaultPlan`] fault injection plus a
//!   panic-isolating offline replay driver, used by the chaos test suite
//!   and the `chaos` benchmark binary;
//! * [`isolate`] — the shared panic-isolation primitives
//!   ([`isolate::run_isolated`], [`isolate::panic_message`]) behind both of
//!   the above and the CLI's batch runner.

pub mod budget;
pub mod chaos;
pub mod filter;
pub mod isolate;
pub mod shim;
pub mod spec;
pub mod tool;

pub use budget::{DegradationLevel, ResourceBudget};
pub use chaos::{Fault, FaultPlan};
pub use filter::{ReentrantLockFilter, SpecFilter, ThreadLocalFilter};
pub use shim::RuntimeTelemetry;
pub use spec::AtomicitySpec;
pub use tool::{replay_ops, run_tool, EmptyTool, Tool, ToolChain, Warning, WarningCategory};
