//! Chaos suite: fault injection against the live runtime and the offline
//! chaos driver, with the real Velodrome engine as the monitored tool.
//!
//! The contract under test (see `crates/monitor/src/chaos.rs`):
//! 1. the host workload always completes — no injected fault may propagate
//!    a panic to the caller or hang the run;
//! 2. every verdict reached before the degradation point is byte-identical
//!    to a clean run's;
//! 3. telemetry pinpoints the exact event at which the run degraded.

use proptest::prelude::*;
use velodrome::{Velodrome, VelodromeConfig};
use velodrome_events::Trace;
use velodrome_monitor::chaos::{prefix_divergence, run_plan, PanicAt};
use velodrome_monitor::shim::Runtime;
use velodrome_monitor::{DegradationLevel, Fault, FaultPlan, ResourceBudget, WarningCategory};
use velodrome_sim::{random_program, run_program, GenConfig, RandomScheduler};

fn engine_for(trace: &Trace, budget: ResourceBudget) -> Velodrome {
    Velodrome::with_config(VelodromeConfig {
        names: trace.names().clone(),
        dedup_per_label: false,
        budget,
        ..VelodromeConfig::default()
    })
}

fn gen_trace(seed: u64, threads: usize, stmts: usize) -> Trace {
    let cfg = GenConfig {
        threads,
        vars: 3,
        locks: 2,
        stmts_per_thread: stmts,
        ..GenConfig::default()
    };
    let program = random_program(&cfg, seed);
    run_program(&program, RandomScheduler::new(seed)).trace
}

/// The ladder rung a run's warnings declare: the highest level named by a
/// `Degraded` warning, or `Full` if there is none.
fn declared_ladder(warnings: &[velodrome_monitor::Warning]) -> DegradationLevel {
    let mut ladder = DegradationLevel::Full;
    for w in warnings {
        if w.category != WarningCategory::Degraded {
            continue;
        }
        for level in DegradationLevel::ALL {
            if w.message.contains(&format!("degraded to {level}")) && level > ladder {
                ladder = level;
            }
        }
    }
    ladder
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    prop_oneof![
        Just(FaultPlan::clean()),
        (0usize..200).prop_map(FaultPlan::tool_panic),
        (0usize..200).prop_map(FaultPlan::truncate),
        (0usize..200).prop_map(FaultPlan::host_death),
        (0usize..6, 0usize..6, 0usize..4).prop_map(|(alive, trace, vars)| {
            FaultPlan::budget(ResourceBudget {
                max_alive_nodes: alive,
                max_trace_events: trace,
                max_tracked_vars: vars,
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any fault plan on any generated program: the host never panics, the
    /// run lands in the ladder state its warnings declare, and verdicts
    /// before the degradation point match the clean run byte-for-byte.
    #[test]
    fn arbitrary_faults_never_escape_and_keep_prefix_fidelity(
        seed in 0u64..500,
        threads in 2usize..4,
        plan in arb_plan(),
    ) {
        let trace = gen_trace(seed, threads, 6);
        let clean = run_plan(&trace, engine_for(&trace, ResourceBudget::UNLIMITED), &FaultPlan::clean());
        // Completing run_plan at all is guarantee 1 (no escaped panic).
        let run = match plan.fault {
            Fault::ToolPanic { at } => run_plan(
                &trace,
                PanicAt::new(engine_for(&trace, plan.budget_of()), at),
                &plan,
            ),
            _ => run_plan(&trace, engine_for(&trace, plan.budget_of()), &plan),
        };

        // Guarantee 3: if anything degraded, telemetry names the event.
        let first_degraded = run
            .warnings
            .iter()
            .filter(|w| w.category == WarningCategory::Degraded)
            .map(|w| w.op_index)
            .min();
        let degraded_at = run.degraded_at.or(first_degraded);
        let declared = declared_ladder(&run.warnings);
        match plan.fault {
            Fault::ToolPanic { at } if at < trace.len() => {
                prop_assert_eq!(run.ladder, DegradationLevel::RecorderOnly);
                prop_assert_eq!(run.degraded_at, Some(at));
            }
            Fault::ToolPanic { .. } | Fault::None | Fault::TruncateStream { .. } => {
                prop_assert_eq!(run.ladder, DegradationLevel::Full);
            }
            Fault::HostDeath { .. } => {
                // Synthesized closers can themselves hit nothing that
                // degrades an unbudgeted engine.
                prop_assert_eq!(run.ladder, DegradationLevel::Full);
            }
            Fault::Budget(_) => {
                // The engine's own transitions are declared in warnings;
                // the driver stays at Full unless the tool panicked.
                prop_assert!(declared == DegradationLevel::Full || degraded_at.is_some());
            }
        }
        if declared != DegradationLevel::Full {
            prop_assert!(degraded_at.is_some(), "degradation must be pinpointed");
        }

        // Guarantee 2: byte-identical verdict prefix.
        let before = match (plan.fault, degraded_at) {
            (Fault::TruncateStream { at }, d) | (Fault::HostDeath { at }, d) => {
                at.min(d.unwrap_or(usize::MAX))
            }
            (_, Some(d)) => d,
            (_, None) => usize::MAX,
        };
        let divergence = prefix_divergence(&clean.warnings, &run.warnings, before);
        prop_assert!(divergence.is_none(), "{}: {:?}", plan, divergence);
    }
}

#[test]
fn double_finish_is_idempotent() {
    let rt = Runtime::online(Velodrome::new());
    rt.atomic("work", || {
        let x = rt.shared("x", 0i32);
        x.set(x.get() + 1);
    });
    let (trace, warnings) = rt.finish();
    assert!(trace.len() >= 4, "begin/read/write/end recorded");
    let (trace2, warnings2) = rt.finish();
    assert_eq!(trace2.len(), 0, "second finish returns an empty trace");
    assert!(warnings2.is_empty(), "second finish returns no warnings");
    // The first finish's results are unaffected.
    assert!(warnings
        .iter()
        .all(|w| w.category != WarningCategory::Degraded));
}

#[test]
fn host_death_mid_transaction_synthesizes_closers() {
    let rt = Runtime::recorder();
    let lock = rt.lock("m", ());
    let guard = lock.lock();
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.atomic("doomed", || panic!("host thread dies mid-transaction"))
    }));
    assert!(boom.is_err(), "the host panic itself propagates");
    // The open transaction (and the still-held lock) are closed by finish.
    std::mem::forget(guard); // simulate a guard lost to the dead thread
    let (trace, warnings) = rt.finish();
    let synthesized: Vec<usize> = trace.synthesized().to_vec();
    assert!(
        synthesized.len() >= 2,
        "implied end and release are synthesized and flagged: {synthesized:?}"
    );
    let last = trace.len() - 1;
    assert!(trace.is_synthesized(last));
    assert!(warnings.is_empty(), "recorder mode has no tool to warn");
}

#[test]
fn live_tool_panic_is_quarantined_and_salvaged() {
    // The wrapped engine panics at event index 2; the host must finish the
    // workload untouched, and telemetry must pinpoint event 2.
    let rt = Runtime::online(PanicAt::new(Velodrome::new(), 2));
    for _ in 0..3 {
        rt.atomic("work", || {
            let x = rt.shared("x", 0i32);
            x.set(x.get() + 1);
        });
    }
    let telemetry = rt.telemetry();
    assert_eq!(telemetry.tool_panics, 1);
    assert_eq!(telemetry.degraded_at, Some(2));
    assert_eq!(rt.ladder(), DegradationLevel::RecorderOnly);
    let (trace, warnings) = rt.finish();
    assert!(
        trace.len() >= 12,
        "recording continues after quarantine: {}",
        trace.len()
    );
    let degraded: Vec<_> = warnings
        .iter()
        .filter(|w| w.category == WarningCategory::Degraded)
        .collect();
    assert_eq!(degraded.len(), 1);
    assert!(degraded[0].message.contains("event 2"), "{degraded:?}");
}

#[test]
fn trace_budget_degrades_to_trace_dropped() {
    let rt = Runtime::recorder_with_budget(ResourceBudget {
        max_trace_events: 3,
        ..ResourceBudget::UNLIMITED
    });
    for _ in 0..4 {
        rt.atomic("work", || {
            let x = rt.shared("x", 0i32);
            x.set(x.get() + 1);
        });
    }
    assert_eq!(rt.ladder(), DegradationLevel::TraceDropped);
    let telemetry = rt.telemetry();
    assert!(telemetry.trace_events_dropped > 0);
    assert!(telemetry.degraded_at.is_some());
    let (trace, warnings) = rt.finish();
    assert_eq!(trace.len(), 3, "retained trace stays within budget");
    assert!(warnings
        .iter()
        .any(|w| w.category == WarningCategory::Degraded));
}
