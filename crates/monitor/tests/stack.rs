//! Integration tests of the monitor front end: filter composition orders,
//! tool chains behind filters, and the online shims feeding a filter stack.

use velodrome_events::{semantics, Op, TraceBuilder};
use velodrome_monitor::shim::Runtime;
use velodrome_monitor::tool::{Tool, Warning};
use velodrome_monitor::{
    run_tool, AtomicitySpec, EmptyTool, ReentrantLockFilter, SpecFilter, ThreadLocalFilter,
    ToolChain,
};

#[derive(Default)]
struct Sink {
    ops: Vec<Op>,
}

impl Tool for Sink {
    fn name(&self) -> &'static str {
        "sink"
    }
    fn op(&mut self, _i: usize, op: Op) {
        self.ops.push(op);
    }
    fn take_warnings(&mut self) -> Vec<Warning> {
        Vec::new()
    }
}

fn messy_trace() -> velodrome_events::Trace {
    let mut b = TraceBuilder::new();
    // Re-entrant locking, thread-local churn, and an excluded block.
    b.acquire("T1", "m").acquire("T1", "m");
    b.read("T1", "private").write("T1", "private");
    b.begin("T1", "checked").read("T1", "shared").end("T1");
    b.begin("T1", "excluded").write("T1", "shared").end("T1");
    b.release("T1", "m").release("T1", "m");
    b.read("T2", "shared");
    b.finish()
}

#[test]
fn filters_compose_in_either_order() {
    let trace = messy_trace();
    let count_ops = |reentrant_outer: bool| -> usize {
        if reentrant_outer {
            let mut f = ReentrantLockFilter::new(ThreadLocalFilter::new(Sink::default()));
            run_tool(&mut f, &trace);
            f.into_inner().into_inner().ops.len()
        } else {
            let mut f = ThreadLocalFilter::new(ReentrantLockFilter::new(Sink::default()));
            run_tool(&mut f, &trace);
            f.into_inner().into_inner().ops.len()
        }
    };
    // Both orders suppress the same operations on this trace: 2 re-entrant
    // lock ops and 3 thread-local accesses (private x2, first shared).
    assert_eq!(count_ops(true), count_ops(false));
}

#[test]
fn spec_filter_inside_a_chain() {
    let trace = messy_trace();
    let excluded = velodrome_events::Label::new(1); // "excluded"
    let chain = ToolChain::new()
        .with(SpecFilter::new(
            AtomicitySpec::excluding([excluded]),
            Sink::default(),
        ))
        .with(EmptyTool::new());
    let mut chain = chain;
    let warnings = run_tool(&mut chain, &trace);
    assert!(warnings.is_empty());
}

#[test]
fn full_stack_over_live_threads() {
    // Shims → re-entrant filter → thread-local filter → sink: the surviving
    // stream is well-formed and contains only shared traffic.
    let rt = Runtime::recorder();
    let shared = rt.shared("shared", 0i64);
    let private = rt.shared("private", 0i64);
    let lock = rt.lock("m", ());
    let tok = rt.fork();
    let handle = {
        let rt2 = rt.clone();
        let shared2 = shared.clone();
        let lock2 = lock.clone();
        std::thread::spawn(move || {
            rt2.adopt(tok);
            for _ in 0..5 {
                let _g = lock2.lock();
                let v = shared2.get();
                shared2.set(v + 1);
            }
        })
    };
    for _ in 0..5 {
        let v = private.get();
        private.set(v + 1);
        let _g = lock.lock();
        let v = shared.get();
        shared.set(v + 1);
    }
    handle.join().unwrap();
    rt.join(tok);
    let (trace, _) = rt.finish();
    assert_eq!(semantics::validate(&trace), Ok(()));

    let mut stack = ReentrantLockFilter::new(ThreadLocalFilter::new(Sink::default()));
    run_tool(&mut stack, &trace);
    let surviving = &stack.inner().inner().ops;
    // All private accesses suppressed; shared accesses survive once shared.
    assert!(surviving.iter().all(|op| match op.var() {
        Some(x) => trace.names().var(x) == "shared",
        None => true,
    }));
    assert!(surviving.iter().any(|op| op.is_access()));
}

#[test]
fn reentrant_filter_keeps_trace_well_formed_for_validators() {
    // A trace with re-entrancy fails validation raw, passes after filtering.
    let mut b = TraceBuilder::new();
    b.acquire("T1", "m")
        .acquire("T1", "m")
        .release("T1", "m")
        .release("T1", "m");
    let trace = b.finish();
    assert!(semantics::validate(&trace).is_err());

    let mut filter = ReentrantLockFilter::new(Sink::default());
    run_tool(&mut filter, &trace);
    let filtered = velodrome_events::Trace::from_ops(filter.into_inner().ops.iter().copied());
    assert_eq!(semantics::validate(&filtered), Ok(()));
}
