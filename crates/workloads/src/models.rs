//! Synthetic models of the paper's fifteen benchmark programs.
//!
//! Each model reproduces the *synchronization structure* of the original
//! Java benchmark — the mix of correctly locked methods, check-then-act
//! defects, unprotected read-modify-writes, fork/join-initialized data that
//! confuses lockset analyses, and non-transactional traffic — sized so that
//! the Table 1 and Table 2 phenomena (zero Velodrome false alarms, Atomizer
//! false-alarm counts, merge/GC node statistics) reproduce in shape.
//!
//! Ground truth is known by construction: every method assembled from
//! [`crate::patterns`] carries its atomicity status.

use crate::patterns::*;
use crate::{PaperCounts, Workload};
use velodrome_sim::{ProgramBuilder, Stmt};

/// Builds `n` distinct check-then-act defect methods (`prefix_i` on its own
/// variable), returning the method statements. All are genuinely
/// non-atomic when two workers run them.
fn easy_defects(
    b: &mut ProgramBuilder,
    truth: &mut Vec<String>,
    prefix: &str,
    n: usize,
    lock: &str,
) -> Vec<Stmt> {
    (0..n)
        .map(|i| {
            let label = format!("{prefix}_{i}");
            truth.push(label.clone());
            double_cs_method(b, &label, lock, &format!("{prefix}_var_{i}"))
        })
        .collect()
}

/// Builds `n` narrow-window defect methods plus the rare conflicting
/// partner statements that make them only occasionally observable.
fn narrow_defects(
    b: &mut ProgramBuilder,
    truth: &mut Vec<String>,
    prefix: &str,
    n: usize,
    lock: &str,
) -> (Vec<Stmt>, Vec<Stmt>) {
    let mut methods = Vec::new();
    let mut partners = Vec::new();
    for i in 0..n {
        let label = format!("{prefix}_narrow_{i}");
        truth.push(label.clone());
        let var = format!("{prefix}_nvar_{i}");
        let l = b.label(&label);
        let m = b.lock(lock);
        let x = b.var(&var);
        methods.push(Stmt::Atomic(
            l,
            vec![
                Stmt::Sync(m, vec![Stmt::Read(x)]),
                Stmt::Sync(m, vec![Stmt::Read(x), Stmt::Write(x)]),
            ],
        ));
        // The partner performs a single locked write after a seed-dependent
        // amount of compute: whether it lands inside the check-then-act
        // window depends on the schedule.
        partners.push(Stmt::Compute(7 + 13 * i as u32));
        partners.push(Stmt::Sync(m, vec![Stmt::Write(x)]));
    }
    (methods, partners)
}

/// Builds `n` Atomizer-false-alarm reader methods over phase-initialized
/// configuration data. Call *after* [`shared_modified_setup`] created the
/// init phase for `cfg_prefix_var_i`.
fn false_alarm_readers(b: &mut ProgramBuilder, prefix: &str, n: usize) -> Vec<Stmt> {
    (0..n)
        .map(|i| {
            ordered_racy_reader(
                b,
                &format!("{prefix}_get_{i}"),
                &format!("{prefix}_cfg_{i}"),
                &format!("{prefix}_statslock"),
                &format!("{prefix}_stats_{i}"),
            )
        })
        .collect()
}

fn config_names(prefix: &str, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}_cfg_{i}")).collect()
}

/// Statements common to realistic benchmark workers: a correctly
/// synchronized method with *nested* lock regions in a fixed order (always
/// reducible), a method holding one lock across several protected
/// variables, and read-only getters over constants initialized by main —
/// ballast that every tool must process without warnings, exercising the
/// engines the way well-behaved library code does.
fn routine_methods(b: &mut ProgramBuilder, prefix: &str, worker: usize) -> Vec<Stmt> {
    let outer = b.lock(&format!("{prefix}_outerLock"));
    let inner = b.lock(&format!("{prefix}_innerLock"));
    let a = b.var(&format!("{prefix}_acct"));
    let idx = b.var(&format!("{prefix}_index"));
    let nested = b.label(&format!("{prefix}.nestedUpdate"));
    let multi = b.label(&format!("{prefix}.bulkUpdate"));
    let scratch = b.var(&format!("{prefix}_scratch_{worker}"));
    vec![
        // synchronized(outer) { ... synchronized(inner) { ... } }: nested
        // regions in one global order — reducible, deadlock-free.
        Stmt::Atomic(
            nested,
            vec![Stmt::Sync(
                outer,
                vec![
                    Stmt::Read(a),
                    Stmt::Sync(inner, vec![Stmt::Read(idx), Stmt::Write(idx)]),
                    Stmt::Write(a),
                ],
            )],
        ),
        // One lock protecting several variables for the whole method.
        Stmt::Atomic(
            multi,
            vec![Stmt::Sync(
                outer,
                vec![
                    Stmt::Read(a),
                    Stmt::Write(a),
                    Stmt::Read(idx),
                    Stmt::Write(idx),
                ],
            )],
        ),
        read_only_method(
            b,
            &format!("{prefix}.constants"),
            &[&format!("{prefix}_const_a"), &format!("{prefix}_const_b")],
        ),
        // Thread-local working set.
        Stmt::Loop(
            2,
            vec![Stmt::Read(scratch), Stmt::Write(scratch), Stmt::Compute(1)],
        ),
    ]
}

/// `elevator` — discrete-event elevator simulator (von Praun & Gross).
pub fn elevator(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();
    let cfgs = config_names("elev", 1);
    let cfg_refs: Vec<&str> = cfgs.iter().map(String::as_str).collect();
    shared_modified_setup(&mut b, &cfg_refs);

    // Two elevator threads run the same methods; the controller polls.
    for w in 0..2 {
        let body = vec![
            double_cs_method(&mut b, "Elevator.claimUp", "controlLock", "upCalls"),
            double_cs_method(&mut b, "Elevator.claimDown", "controlLock", "downCalls"),
            double_cs_method(&mut b, "Floor.arrive", "controlLock", "floorState"),
            bare_rmw_method(&mut b, "Elevator.move", "sharedPos", 2),
            locked_method(&mut b, "Elevator.openDoor", "doorLock", "doorState"),
            locked_method(&mut b, "Elevator.updateDisplay", "displayLock", "display"),
            read_only_method(&mut b, "Elevator.readButtons", &["buttons"]),
            ordered_racy_reader(
                &mut b,
                "Elevator.getConfig",
                "elev_cfg_0",
                "elev_statslock",
                "elev_stats_0",
            ),
        ];
        let mut body = body;
        body.extend(routine_methods(&mut b, "elev", w));
        b.worker(vec![Stmt::Loop(2 * scale, body)]);
    }
    let poll1 = bare_rmw_method(&mut b, "Controller.poll", "pollCount", 2);
    let poll2 = bare_rmw_method(&mut b, "Controller.poll", "sharedPos", 2);
    let display = locked_method(&mut b, "Controller.updateDisplay", "displayLock", "display");
    b.worker(vec![Stmt::Loop(2 * scale, vec![poll1, poll2, display])]);
    truth.extend([
        "Elevator.claimUp".into(),
        "Elevator.claimDown".into(),
        "Floor.arrive".into(),
        "Elevator.move".into(),
        "Controller.poll".into(),
    ]);

    Workload {
        name: "elevator",
        description: "discrete-event elevator simulator",
        paper_lines: 520,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 5,
            atomizer_false: 1,
            velodrome_found: 5,
            missed: 0,
        },
    }
}

/// `hedc` — web-sourced astrophysics data access tool (task pool).
pub fn hedc(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();
    let cfgs = config_names("hedc", 2);
    let cfg_refs: Vec<&str> = cfgs.iter().map(String::as_str).collect();
    shared_modified_setup(&mut b, &cfg_refs);

    let defect_specs: [(&str, &str); 6] = [
        ("Task.dequeue", "poolLock"),
        ("Task.enqueue", "poolLock"),
        ("Cache.lookup", "cacheLock"),
        ("Cache.update", "cacheLock"),
        ("MetaSearch.merge", "metaLock"),
        ("Stats.bump", "statsLock"),
    ];
    for w in 0..3 {
        let mut body = Vec::new();
        for (name, lock) in defect_specs {
            body.push(double_cs_method(
                &mut b,
                name,
                lock,
                &format!("{name}.state"),
            ));
        }
        body.push(locked_method(&mut b, "Log.append", "logLock", "log"));
        for fa in false_alarm_readers(&mut b, "hedc", 2) {
            body.push(fa);
        }
        body.extend(routine_methods(&mut b, "hedc", w));
        b.worker(vec![Stmt::Loop(2 * scale, body)]);
    }
    truth.extend(defect_specs.iter().map(|(n, _)| n.to_string()));

    Workload {
        name: "hedc",
        description: "astrophysics web-data task pool",
        paper_lines: 6_400,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 6,
            atomizer_false: 2,
            velodrome_found: 6,
            missed: 0,
        },
    }
}

/// `tsp` — branch-and-bound traveling-salesman solver: heavy
/// non-transactional matrix traffic plus racy global-bound updates.
pub fn tsp(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();

    for w in 0..3 {
        let mut body = Vec::new();
        // Scanning the distance matrix: unary churn on worker-private rows.
        body.push(unary_churn(&mut b, &format!("tsp_row_{w}"), 60 * scale));
        for i in 0..4 {
            let label = format!("Tsp.updateMinTour_{i}");
            body.push(bare_rmw_method(&mut b, &label, &format!("minTour_{i}"), 2));
            let label2 = format!("Tsp.updateBound_{i}");
            body.push(double_cs_method(
                &mut b,
                &label2,
                "tourLock",
                &format!("bound_{i}"),
            ));
        }
        body.push(locked_method(
            &mut b,
            "Tsp.recordTour",
            "tourLock",
            "bestTour",
        ));
        b.worker(vec![Stmt::Loop(2 * scale, body)]);
    }
    for i in 0..4 {
        truth.push(format!("Tsp.updateMinTour_{i}"));
        truth.push(format!("Tsp.updateBound_{i}"));
    }

    Workload {
        name: "tsp",
        description: "branch-and-bound TSP solver",
        paper_lines: 700,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 8,
            atomizer_false: 0,
            velodrome_found: 8,
            missed: 0,
        },
    }
}

/// `sor` — successive over-relaxation: barrier-phased stencil with mostly
/// thread-disjoint writes.
pub fn sor(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();

    // Phase 1: red sweep; phase 2: black sweep (fork/join barriers).
    for phase in 0..2 {
        for w in 0..2 {
            let mut body = Vec::new();
            body.push(unary_churn(
                &mut b,
                &format!("sor_p{phase}_rows_{w}"),
                40 * scale,
            ));
            if phase == 1 {
                for i in 0..3 {
                    let label = format!("Sor.boundary_{i}");
                    body.push(double_cs_method(
                        &mut b,
                        &label,
                        "gridLock",
                        &format!("edge_{i}"),
                    ));
                }
                body.push(locked_method(
                    &mut b,
                    "Sor.reduceResidual",
                    "gridLock",
                    "residual",
                ));
            }
            b.worker(vec![Stmt::Loop(scale, body)]);
        }
        if phase == 0 {
            b.new_phase();
        }
    }
    for i in 0..3 {
        truth.push(format!("Sor.boundary_{i}"));
    }

    Workload {
        name: "sor",
        description: "successive over-relaxation stencil",
        paper_lines: 690,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 3,
            atomizer_false: 0,
            velodrome_found: 3,
            missed: 0,
        },
    }
}

/// `jbb` — SPEC JBB2000 business-object server: many correctly synchronized
/// methods over fork/join-initialized catalogs (the paper's largest
/// Atomizer false-alarm source).
pub fn jbb(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();
    let cfgs = config_names("jbb", 42);
    let cfg_refs: Vec<&str> = cfgs.iter().map(String::as_str).collect();
    shared_modified_setup(&mut b, &cfg_refs);

    for w in 0..3 {
        let mut body = Vec::new();
        for i in 0..3 {
            let label = format!("Warehouse.restock_{i}");
            body.push(double_cs_method(
                &mut b,
                &label,
                "stockLock",
                &format!("stock_{i}"),
            ));
        }
        for i in 0..2 {
            let label = format!("Order.bumpCount_{i}");
            body.push(bare_rmw_method(
                &mut b,
                &label,
                &format!("orderCount_{i}"),
                2,
            ));
        }
        body.push(locked_method(&mut b, "District.pay", "districtLock", "ytd"));
        body.push(locked_method(
            &mut b,
            "Customer.balance",
            "custLock",
            "balance",
        ));
        for fa in false_alarm_readers(&mut b, "jbb", 42) {
            body.push(fa);
        }
        body.extend(routine_methods(&mut b, "jbb", w));
        b.worker(vec![Stmt::Loop(scale, body)]);
    }
    for i in 0..3 {
        truth.push(format!("Warehouse.restock_{i}"));
    }
    for i in 0..2 {
        truth.push(format!("Order.bumpCount_{i}"));
    }

    Workload {
        name: "jbb",
        description: "SPEC JBB2000 business-object server model",
        paper_lines: 36_000,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 5,
            atomizer_false: 42,
            velodrome_found: 5,
            missed: 0,
        },
    }
}

/// `mtrt` — SPEC JVM98 multithreaded ray tracer: scene data initialized in
/// a fork/join warm-up phase, then read "racily" per Eraser.
pub fn mtrt(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();
    let cfgs = config_names("mtrt", 27);
    let cfg_refs: Vec<&str> = cfgs.iter().map(String::as_str).collect();
    shared_modified_setup(&mut b, &cfg_refs);

    for w in 0..2 {
        let mut body = Vec::new();
        body.push(unary_churn(
            &mut b,
            &format!("mtrt_framebuf_{w}"),
            40 * scale,
        ));
        let pixel = bare_rmw_method(&mut b, "Scene.bumpPixelCount", "pixelCount", 2);
        let ray = double_cs_method(&mut b, "Scene.bumpRayCount", "rayLock", "rayCount");
        body.push(Stmt::Loop(4, vec![pixel, ray]));
        for fa in false_alarm_readers(&mut b, "mtrt", 27) {
            body.push(fa);
        }
        b.worker(vec![Stmt::Loop(scale, body)]);
    }
    truth.push("Scene.bumpPixelCount".into());
    truth.push("Scene.bumpRayCount".into());

    Workload {
        name: "mtrt",
        description: "SPEC JVM98 multithreaded ray tracer model",
        paper_lines: 11_000,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 2,
            atomizer_false: 27,
            velodrome_found: 2,
            missed: 0,
        },
    }
}

/// `moldyn` — Java Grande molecular dynamics: barrier-phased force
/// accumulation.
pub fn moldyn(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();

    for w in 0..2 {
        let mut body = Vec::new();
        body.push(unary_churn(
            &mut b,
            &format!("moldyn_local_{w}"),
            20 * scale,
        ));
        for i in 0..4 {
            let label = format!("Particle.accumulateForce_{i}");
            body.push(double_cs_method(
                &mut b,
                &label,
                "forceLock",
                &format!("force_{i}"),
            ));
        }
        body.push(locked_method(
            &mut b,
            "Particle.energy",
            "energyLock",
            "energy",
        ));
        b.worker(vec![Stmt::Loop(2 * scale, body)]);
    }
    for i in 0..4 {
        truth.push(format!("Particle.accumulateForce_{i}"));
    }

    Workload {
        name: "moldyn",
        description: "Java Grande molecular dynamics model",
        paper_lines: 1_400,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 4,
            atomizer_false: 0,
            velodrome_found: 4,
            missed: 0,
        },
    }
}

/// `montecarlo` — Java Grande Monte Carlo simulation.
pub fn montecarlo(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();

    for w in 0..2 {
        let mut body = Vec::new();
        body.push(unary_churn(&mut b, &format!("mc_paths_{w}"), 80 * scale));
        for i in 0..6 {
            let label = format!("MonteCarlo.pushResult_{i}");
            body.push(double_cs_method(
                &mut b,
                &label,
                "resultLock",
                &format!("results_{i}"),
            ));
        }
        body.push(locked_method(
            &mut b,
            "MonteCarlo.nextSeed",
            "seedLock",
            "seed",
        ));
        b.worker(vec![Stmt::Loop(2 * scale, body)]);
    }
    // Reduce phase: one worker folds per-path results into the summary
    // after every simulation worker has been joined (fork/join-ordered, so
    // the unlocked reads are safe and must produce no warnings).
    b.new_phase();
    let result_lock = b.lock("resultLock");
    let mut reduce = Vec::new();
    for i in 0..6 {
        let x = b.var(&format!("results_{i}"));
        reduce.push(Stmt::Read(x));
    }
    let summary = b.var("mc_summary");
    reduce.push(Stmt::Write(summary));
    let l_reduce = b.label("MonteCarlo.reduce");
    // The reduce holds the result lock like the simulation workers did, so
    // the lockset-based baselines also see it as consistent.
    b.worker(vec![Stmt::Atomic(
        l_reduce,
        vec![Stmt::Sync(result_lock, reduce)],
    )]);
    for i in 0..6 {
        truth.push(format!("MonteCarlo.pushResult_{i}"));
    }

    Workload {
        name: "montecarlo",
        description: "Java Grande Monte Carlo model",
        paper_lines: 3_600,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 6,
            atomizer_false: 0,
            velodrome_found: 6,
            missed: 0,
        },
    }
}

/// `raytracer` — Java Grande ray tracer: one easily observed defect plus
/// one narrow-window defect that Velodrome misses without adversarial
/// scheduling.
pub fn raytracer(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();
    let cfgs = config_names("rt", 3);
    let cfg_refs: Vec<&str> = cfgs.iter().map(String::as_str).collect();
    shared_modified_setup(&mut b, &cfg_refs);

    truth.push("Scene.checksum".into());
    let (narrow_methods, partners) = narrow_defects(&mut b, &mut truth, "rt", 1, "rowLock");

    let mut body1 = vec![
        unary_churn(&mut b, "rt_rows_1", 30 * scale),
        bare_rmw_method(&mut b, "Scene.checksum", "checksum", 2),
    ];
    body1.extend(narrow_methods.clone());
    for fa in false_alarm_readers(&mut b, "rt", 3) {
        body1.push(fa);
    }
    b.worker(vec![Stmt::Loop(2 * scale, body1)]);

    let mut body2 = vec![
        unary_churn(&mut b, "rt_rows_2", 30 * scale),
        bare_rmw_method(&mut b, "Scene.checksum", "checksum", 2),
    ];
    body2.extend(partners);
    b.worker(vec![Stmt::Loop(2 * scale, body2)]);

    Workload {
        name: "raytracer",
        description: "Java Grande ray tracer model",
        paper_lines: 18_000,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 2,
            atomizer_false: 3,
            velodrome_found: 1,
            missed: 1,
        },
    }
}

/// `colt` — CERN scientific computing library: many small defects, some
/// with narrow windows.
pub fn colt(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();
    let cfgs = config_names("colt", 2);
    let cfg_refs: Vec<&str> = cfgs.iter().map(String::as_str).collect();
    shared_modified_setup(&mut b, &cfg_refs);

    let easy = easy_defects(&mut b, &mut truth, "Matrix.update", 20, "matrixLock");
    let (narrow, partners) = narrow_defects(&mut b, &mut truth, "colt", 7, "histLock");

    let mut body1 = easy.clone();
    body1.extend(narrow.clone());
    body1.push(locked_method(&mut b, "Matrix.norm", "matrixLock", "norm"));
    body1.push(locked_method(
        &mut b,
        "Matrix.scale",
        "matrixLock",
        "scaleFactor",
    ));
    body1.push(locked_method(&mut b, "Histogram.merge", "histLock", "bins"));
    for fa in false_alarm_readers(&mut b, "colt", 2) {
        body1.push(fa);
    }
    b.worker(vec![Stmt::Loop(scale, body1)]);

    let mut body2 = easy;
    body2.extend(partners);
    body2.push(locked_method(&mut b, "Matrix.norm", "matrixLock", "norm"));
    body2.push(locked_method(
        &mut b,
        "Matrix.scale",
        "matrixLock",
        "scaleFactor",
    ));
    body2.push(locked_method(&mut b, "Histogram.merge", "histLock", "bins"));
    b.worker(vec![Stmt::Loop(scale, body2)]);

    Workload {
        name: "colt",
        description: "scientific computing library model",
        paper_lines: 29_000,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 27,
            atomizer_false: 2,
            velodrome_found: 20,
            missed: 7,
        },
    }
}

/// `philo` — dining philosophers: five philosophers contending on a single
/// table lock, with per-pair fork state and a shared meal counter.
pub fn philo(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();

    for p in 0..5 {
        let left = format!("fork_{p}");
        let right = format!("fork_{}", (p + 1) % 5);
        let l_eat = b.label("Philosopher.eat");
        let m_table = b.lock("tableLock");
        let vl = b.var(&left);
        let vr = b.var(&right);
        // eat: check both forks in one critical section, grab them in a
        // second — the classic check-then-act defect.
        let eat = Stmt::Atomic(
            l_eat,
            vec![
                Stmt::Sync(m_table, vec![Stmt::Read(vl), Stmt::Read(vr)]),
                Stmt::Sync(m_table, vec![Stmt::Write(vl), Stmt::Write(vr)]),
            ],
        );
        let body = vec![
            eat,
            bare_rmw_method(&mut b, "Philosopher.think", "mealsServed", 2),
            locked_method(&mut b, "Philosopher.sit", "tableLock", "seats"),
        ];
        b.worker(vec![Stmt::Loop(3 * scale, body)]);
    }
    truth.push("Philosopher.eat".into());
    truth.push("Philosopher.think".into());

    Workload {
        name: "philo",
        description: "dining philosophers simulation",
        paper_lines: 84,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 2,
            atomizer_false: 0,
            velodrome_found: 2,
            missed: 0,
        },
    }
}

/// `raja` — ray tracer with fully correct synchronization: zero warnings
/// from everyone.
pub fn raja(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();

    for w in 0..2 {
        let mut body = vec![
            unary_churn(&mut b, &format!("raja_pixels_{w}"), 20 * scale),
            locked_method(&mut b, "Raja.accumulate", "frameLock", "frame"),
            locked_method(&mut b, "Raja.nextRay", "rayLock", "rayIdx"),
            read_only_method(&mut b, "Raja.sceneInfo", &["raja_scene_a", "raja_scene_b"]),
        ];
        body.extend(routine_methods(&mut b, "raja", w));
        b.worker(vec![Stmt::Loop(3 * scale, body)]);
    }

    Workload {
        name: "raja",
        description: "correctly synchronized ray tracer model",
        paper_lines: 10_000,
        program: b.finish(),
        non_atomic: Vec::new(),
        paper: PaperCounts {
            atomizer_real: 0,
            atomizer_false: 0,
            velodrome_found: 0,
            missed: 0,
        },
    }
}

/// `multiset` — the basic multiset whose `Set.add`-style methods motivate
/// the paper; heavy unary traffic exercises merging.
pub fn multiset(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();

    let methods = [
        "Multiset.add",
        "Multiset.remove",
        "Multiset.addIfAbsent",
        "Multiset.grow",
        "Multiset.clearAndCount",
    ];
    for _ in 0..2 {
        let mut body = vec![unary_churn(&mut b, "ms_scratch", 100 * scale)];
        for name in methods {
            body.push(double_cs_method(&mut b, name, "elemsLock", "elems"));
        }
        b.worker(vec![Stmt::Loop(2 * scale, body)]);
    }
    truth.extend(methods.iter().map(|s| s.to_string()));

    Workload {
        name: "multiset",
        description: "basic multiset implementation",
        paper_lines: 300,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 5,
            atomizer_false: 0,
            velodrome_found: 5,
            missed: 0,
        },
    }
}

/// `webl` — web scripting language interpreter running a crawler.
pub fn webl(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();
    let cfgs = config_names("webl", 2);
    let cfg_refs: Vec<&str> = cfgs.iter().map(String::as_str).collect();
    shared_modified_setup(&mut b, &cfg_refs);

    let easy = easy_defects(&mut b, &mut truth, "Interp.global", 22, "globalLock");
    let (narrow, partners) = narrow_defects(&mut b, &mut truth, "webl", 2, "pageLock");

    for w in 0..3 {
        let mut body = vec![unary_churn(&mut b, &format!("webl_pages_{w}"), 50 * scale)];
        body.extend(easy.clone());
        if w == 0 {
            body.extend(narrow.clone());
            for fa in false_alarm_readers(&mut b, "webl", 2) {
                body.push(fa);
            }
        }
        if w == 1 {
            body.extend(partners.clone());
        }
        body.push(locked_method(
            &mut b,
            "Crawler.frontier",
            "frontierLock",
            "frontier",
        ));
        b.worker(vec![Stmt::Loop(scale, body)]);
    }

    Workload {
        name: "webl",
        description: "web scripting interpreter running a crawler",
        paper_lines: 22_300,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 24,
            atomizer_false: 2,
            velodrome_found: 22,
            missed: 2,
        },
    }
}

/// `jigsaw` — the W3C web server serving a fixed set of pages.
pub fn jigsaw(scale: u32) -> Workload {
    let mut b = ProgramBuilder::new();
    let mut truth = Vec::new();
    let cfgs = config_names("jig", 5);
    let cfg_refs: Vec<&str> = cfgs.iter().map(String::as_str).collect();
    shared_modified_setup(&mut b, &cfg_refs);

    let easy = easy_defects(&mut b, &mut truth, "Resource.touch", 44, "resourceLock");
    let (narrow, partners) = narrow_defects(&mut b, &mut truth, "jig", 11, "storeLock");

    for w in 0..4 {
        let mut body = vec![unary_churn(&mut b, &format!("jig_conn_{w}"), 30 * scale)];
        body.extend(easy.clone());
        if w == 0 {
            body.extend(narrow.clone());
            for fa in false_alarm_readers(&mut b, "jig", 5) {
                body.push(fa);
            }
        }
        if w == 1 {
            body.extend(partners.clone());
        }
        body.push(locked_method(
            &mut b,
            "Logger.append",
            "logLock",
            "accessLog",
        ));
        b.worker(vec![Stmt::Loop(scale, body)]);
    }
    // Acceptor thread: hands requests to the handlers through a correctly
    // locked queue, plus its own connection bookkeeping.
    let acceptor = vec![
        locked_method(&mut b, "Acceptor.enqueue", "queueLock", "requestQueue"),
        locked_method(&mut b, "Logger.append", "logLock", "accessLog"),
        unary_churn(&mut b, "jig_acceptor_buf", 10 * scale),
    ];
    b.worker(vec![Stmt::Loop(2 * scale, acceptor)]);

    Workload {
        name: "jigsaw",
        description: "W3C Jigsaw web server model",
        paper_lines: 91_100,
        program: b.finish(),
        non_atomic: truth,
        paper: PaperCounts {
            atomizer_real: 55,
            atomizer_false: 5,
            velodrome_found: 44,
            missed: 11,
        },
    }
}
