//! Reusable synchronization-idiom building blocks for benchmark models.
//!
//! Each pattern is a statement shape whose atomicity status is known by
//! construction, so workloads assembled from them carry exact ground truth:
//!
//! | pattern | truly atomic? | Atomizer verdict | typical use |
//! |---|---|---|---|
//! | [`locked_method`] | yes | silent | correctly synchronized methods |
//! | [`read_only_method`] | yes | silent | getters on immutable state |
//! | [`double_cs_method`] | **no** (check-then-act) | warns | real defects |
//! | [`bare_rmw_method`] | **no** (unprotected RMW) | warns | real defects |
//! | [`ordered_racy_reader`] | yes (fork/join ordered) | **false alarm** | jbb/mtrt-style alarms |

use velodrome_sim::{ProgramBuilder, Stmt};

/// A correctly synchronized method: one critical section covering every
/// shared access. Always atomic.
pub fn locked_method(b: &mut ProgramBuilder, label: &str, lock: &str, var: &str) -> Stmt {
    let l = b.label(label);
    let m = b.lock(lock);
    let x = b.var(var);
    Stmt::Atomic(l, vec![Stmt::Sync(m, vec![Stmt::Read(x), Stmt::Write(x)])])
}

/// A method reading variables that are never written concurrently.
/// Always atomic.
pub fn read_only_method(b: &mut ProgramBuilder, label: &str, vars: &[&str]) -> Stmt {
    let l = b.label(label);
    let body = vars.iter().map(|v| Stmt::Read(b.var(v))).collect();
    Stmt::Atomic(l, body)
}

/// The `Set.add` shape: a check in one critical section, an update in a
/// second one. Race-free but **not atomic** — another thread can intervene
/// between the sections.
pub fn double_cs_method(b: &mut ProgramBuilder, label: &str, lock: &str, var: &str) -> Stmt {
    let l = b.label(label);
    let m = b.lock(lock);
    let x = b.var(var);
    Stmt::Atomic(
        l,
        vec![
            Stmt::Sync(m, vec![Stmt::Read(x)]),                 // contains
            Stmt::Sync(m, vec![Stmt::Read(x), Stmt::Write(x)]), // add
        ],
    )
}

/// An unprotected read-modify-write inside an atomic block, with optional
/// compute padding between the read and the write (a wider window is easier
/// to hit). **Not atomic** and also racy.
pub fn bare_rmw_method(b: &mut ProgramBuilder, label: &str, var: &str, pad: u32) -> Stmt {
    let l = b.label(label);
    let x = b.var(var);
    let mut body = vec![Stmt::Read(x)];
    if pad > 0 {
        body.push(Stmt::Compute(pad));
    }
    body.push(Stmt::Write(x));
    Stmt::Atomic(l, body)
}

/// A method whose shared reads target data initialized in *earlier
/// fork/join phases* and never written concurrently: genuinely atomic
/// under every schedule, but the Eraser lockset sees the variable as
/// shared-modified with an empty lockset, so the Atomizer reports a false
/// alarm (a racy non-mover after the critical section's release).
///
/// Use [`shared_modified_setup`] to put `config_var` into the
/// shared-modified state via ordered phases.
pub fn ordered_racy_reader(
    b: &mut ProgramBuilder,
    label: &str,
    config_var: &str,
    stats_lock: &str,
    stats_var: &str,
) -> Stmt {
    let l = b.label(label);
    let c = b.var(config_var);
    let m = b.lock(stats_lock);
    let s = b.var(stats_var);
    Stmt::Atomic(
        l,
        vec![
            Stmt::Sync(m, vec![Stmt::Read(s), Stmt::Write(s)]),
            // Racy per Eraser, ordered in reality: non-mover after the
            // release → Atomizer false alarm; no cycle for Velodrome.
            Stmt::Read(c),
        ],
    )
}

/// Emits the initialization choreography that drives `config_vars` into
/// Eraser's `SharedModified(∅)` state *without any real race*: the main
/// thread writes each variable during setup, then a dedicated
/// initialization phase (one worker, fully fork/join-ordered before the
/// main phase) rewrites them. Call **before** adding main-phase workers,
/// then call `b.new_phase()`.
pub fn shared_modified_setup(b: &mut ProgramBuilder, config_vars: &[&str]) {
    let mut setup = Vec::new();
    let mut init = Vec::new();
    for v in config_vars {
        let x = b.var(v);
        setup.push(Stmt::Write(x));
        init.push(Stmt::Write(x));
    }
    b.setup(setup);
    b.worker(init); // initialization phase worker
    b.new_phase();
}

/// A burst of non-transactional traffic on a thread-private variable:
/// exercises the merge optimization (huge allocation counts without merge,
/// almost none with it).
pub fn unary_churn(b: &mut ProgramBuilder, var: &str, iters: u32) -> Stmt {
    let x = b.var(var);
    Stmt::Loop(iters, vec![Stmt::Read(x), Stmt::Write(x)])
}

/// A single, compute-delayed unary write: a low-frequency conflict partner
/// that makes a defect's detection window narrow (schedule-dependent).
pub fn rare_conflict(b: &mut ProgramBuilder, var: &str, delay: u32) -> Vec<Stmt> {
    let x = b.var(var);
    vec![Stmt::Compute(delay), Stmt::Write(x)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome::check_trace;
    use velodrome_atomizer::Atomizer;
    use velodrome_monitor::run_tool;
    use velodrome_sim::{run_program, RandomScheduler, RoundRobin};

    fn contended(
        stmt_for: impl Fn(&mut ProgramBuilder) -> Stmt,
        iters: u32,
    ) -> velodrome_sim::Program {
        let mut b = ProgramBuilder::new();
        let s1 = stmt_for(&mut b);
        let s2 = stmt_for(&mut b);
        b.worker(vec![Stmt::Loop(iters, vec![s1])]);
        b.worker(vec![Stmt::Loop(iters, vec![s2])]);
        b.finish()
    }

    #[test]
    fn locked_method_is_atomic_under_all_seeds() {
        let p = contended(|b| locked_method(b, "inc", "m", "x"), 5);
        for seed in 0..10 {
            let trace = run_program(&p, RandomScheduler::new(seed)).trace;
            assert!(check_trace(&trace).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn double_cs_violates_under_round_robin() {
        let p = contended(|b| double_cs_method(b, "Set.add", "m", "elems"), 5);
        let trace = run_program(&p, RoundRobin::new()).trace;
        let warnings = check_trace(&trace);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].message.contains("Set.add"));
    }

    #[test]
    fn bare_rmw_violates_under_round_robin() {
        // A little compute padding inside the window breaks the lockstep
        // stagger that would otherwise serialize the two loops.
        let p = contended(|b| bare_rmw_method(b, "inc", "x", 2), 5);
        let trace = run_program(&p, RoundRobin::new()).trace;
        assert_eq!(check_trace(&trace).len(), 1);
    }

    #[test]
    fn ordered_racy_reader_is_velodrome_silent_but_atomizer_alarms() {
        let mut b = ProgramBuilder::new();
        shared_modified_setup(&mut b, &["config"]);
        let r1 = ordered_racy_reader(&mut b, "getConfig", "config", "mstats", "stats");
        let r2 = ordered_racy_reader(&mut b, "getConfig", "config", "mstats", "stats");
        b.worker(vec![Stmt::Loop(3, vec![r1])]);
        b.worker(vec![Stmt::Loop(3, vec![r2])]);
        let p = b.finish();
        for seed in 0..10 {
            let trace = run_program(&p, RandomScheduler::new(seed)).trace;
            assert!(
                check_trace(&trace).is_empty(),
                "Velodrome must stay silent (seed {seed})"
            );
            let mut a = Atomizer::new();
            let atomizer = run_tool(&mut a, &trace);
            assert!(
                !atomizer.is_empty(),
                "Atomizer false alarm expected (seed {seed})"
            );
        }
    }

    #[test]
    fn read_only_method_is_atomic() {
        let mut b = ProgramBuilder::new();
        let m1 = read_only_method(&mut b, "get", &["a", "b"]);
        let m2 = read_only_method(&mut b, "get", &["a", "b"]);
        b.worker(vec![Stmt::Loop(5, vec![m1])]);
        b.worker(vec![Stmt::Loop(5, vec![m2])]);
        let trace = run_program(&b.finish(), RoundRobin::new()).trace;
        assert!(check_trace(&trace).is_empty());
    }
}
