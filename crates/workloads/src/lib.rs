//! Synthetic models of the fifteen benchmarks from the Velodrome paper.
//!
//! The paper evaluates on Java programs (elevator, hedc, tsp, sor, SPEC
//! jbb/mtrt, Java Grande moldyn/montecarlo/raytracer, colt, philo, raja,
//! multiset, webl, jigsaw). This crate models each benchmark's
//! *synchronization structure* as a [`velodrome_sim::Program`] whose ground
//! truth — which atomic methods are genuinely non-atomic — is known by
//! construction, so the Table 1 and Table 2 experiments can measure real
//! detections, false alarms, and misses exactly.
//!
//! See [`patterns`] for the idiom building blocks and [`models`] for the
//! per-benchmark constructions; [`adversarial`] wires the Atomizer's
//! commit-point heuristic into the simulator's adversarial scheduler.

pub mod adversarial;
pub mod models;
pub mod patterns;

use velodrome_events::Trace;
use velodrome_sim::{run_program, Program, RandomScheduler, RoundRobin};

/// The counts the paper reports for a benchmark in Table 2, kept for
/// side-by-side comparison in the experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperCounts {
    /// Atomizer warnings corresponding to really non-atomic methods.
    pub atomizer_real: u32,
    /// Atomizer false alarms.
    pub atomizer_false: u32,
    /// Non-atomic methods Velodrome reported.
    pub velodrome_found: u32,
    /// Atomizer-found non-atomic methods Velodrome missed.
    pub missed: u32,
}

/// One benchmark model plus its ground truth.
#[derive(Debug)]
pub struct Workload {
    /// Benchmark name, matching the paper's tables.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Source size of the original benchmark (Table 1 "Size (lines)").
    pub paper_lines: u32,
    /// The synthetic program.
    pub program: Program,
    /// Names of the genuinely non-atomic methods (ground truth).
    pub non_atomic: Vec<String>,
    /// The paper's reported Table 2 counts for comparison.
    pub paper: PaperCounts,
}

impl Workload {
    /// Is the named method genuinely non-atomic?
    pub fn is_non_atomic(&self, label_name: &str) -> bool {
        self.non_atomic.iter().any(|n| n == label_name)
    }

    /// Runs the workload under a seeded random scheduler.
    pub fn run(&self, seed: u64) -> Trace {
        let result = run_program(&self.program, RandomScheduler::new(seed));
        assert!(!result.deadlocked, "workload {} deadlocked", self.name);
        result.trace
    }

    /// Runs the workload under deterministic round-robin.
    pub fn run_round_robin(&self) -> Trace {
        let result = run_program(&self.program, RoundRobin::new());
        assert!(!result.deadlocked, "workload {} deadlocked", self.name);
        result.trace
    }

    /// Runs the workload under the Atomizer-guided adversarial scheduler
    /// (Section 5): a seeded random scheduler that pauses threads inside
    /// suspected-atomic windows for `pause_steps` scheduler steps, inviting
    /// conflicting accesses and raising defect-detection coverage.
    pub fn run_adversarial(&self, seed: u64, pause_steps: u64) -> Trace {
        let sched = adversarial::adversarial_scheduler(seed, pause_steps);
        let result = run_program(&self.program, sched);
        assert!(!result.deadlocked, "workload {} deadlocked", self.name);
        result.trace
    }
}

/// Benchmark names in the paper's table order.
pub const NAMES: [&str; 15] = [
    "elevator",
    "hedc",
    "tsp",
    "sor",
    "jbb",
    "mtrt",
    "moldyn",
    "montecarlo",
    "raytracer",
    "colt",
    "philo",
    "raja",
    "multiset",
    "webl",
    "jigsaw",
];

/// Builds one benchmark model by name. `scale` multiplies loop iteration
/// counts (1 for tests, larger for benchmarks).
///
/// # Examples
///
/// ```
/// let multiset = velodrome_workloads::build("multiset", 1).unwrap();
/// assert_eq!(multiset.non_atomic.len(), 5);
/// assert!(velodrome_workloads::build("nonesuch", 1).is_none());
/// ```
pub fn build(name: &str, scale: u32) -> Option<Workload> {
    let w = match name {
        "elevator" => models::elevator(scale),
        "hedc" => models::hedc(scale),
        "tsp" => models::tsp(scale),
        "sor" => models::sor(scale),
        "jbb" => models::jbb(scale),
        "mtrt" => models::mtrt(scale),
        "moldyn" => models::moldyn(scale),
        "montecarlo" => models::montecarlo(scale),
        "raytracer" => models::raytracer(scale),
        "colt" => models::colt(scale),
        "philo" => models::philo(scale),
        "raja" => models::raja(scale),
        "multiset" => models::multiset(scale),
        "webl" => models::webl(scale),
        "jigsaw" => models::jigsaw(scale),
        _ => return None,
    };
    Some(w)
}

/// Builds all fifteen benchmark models.
pub fn all(scale: u32) -> Vec<Workload> {
    NAMES
        .iter()
        .map(|n| build(n, scale).expect("known name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use velodrome::check_trace;
    use velodrome_events::semantics;

    #[test]
    fn all_fifteen_build_and_run() {
        let workloads = all(1);
        assert_eq!(workloads.len(), 15);
        for w in &workloads {
            let trace = w.run(1);
            assert!(!trace.is_empty(), "{} produced an empty trace", w.name);
            assert_eq!(
                semantics::validate(&trace),
                Ok(()),
                "{} produced an ill-formed trace",
                w.name
            );
        }
    }

    #[test]
    fn velodrome_never_false_alarms_on_any_workload() {
        for w in all(1) {
            for seed in 0..3 {
                let trace = w.run(seed);
                for warning in check_trace(&trace) {
                    let label = warning.label.expect("atomicity warnings carry labels");
                    let name = trace.names().label(label);
                    assert!(
                        w.is_non_atomic(&name),
                        "Velodrome false alarm on {}::{name} (seed {seed})",
                        w.name
                    );
                }
            }
        }
    }

    #[test]
    fn raja_is_completely_clean() {
        let w = build("raja", 1).unwrap();
        for seed in 0..5 {
            assert!(check_trace(&w.run(seed)).is_empty());
        }
    }

    #[test]
    fn easy_defects_are_found_under_adversarial_schedules() {
        // Benchmarks without narrow-window defects should have every
        // non-atomic method detected across a handful of seeds. Plain random
        // schedules only catch each defect instance probabilistically (which
        // of them land in five seeds depends on the RNG stream), so this
        // uses the paper's own coverage amplifier: Atomizer-guided
        // adversarial pausing (Section 5), which holds suspected-atomic
        // windows open until a conflicting access arrives.
        for name in ["multiset", "philo", "tsp"] {
            let w = build(name, 1).unwrap();
            let mut found: HashSet<String> = HashSet::new();
            for seed in 0..5 {
                let trace = w.run_adversarial(seed, 40);
                for warning in check_trace(&trace) {
                    found.insert(trace.names().label(warning.label.unwrap()));
                }
            }
            for method in &w.non_atomic {
                assert!(found.contains(method), "{name}::{method} not detected");
            }
        }
    }

    #[test]
    fn ground_truth_labels_exist_in_programs() {
        for w in all(1) {
            let trace = w.run_round_robin();
            // Every truth label should appear as a begin in the trace.
            let seen: HashSet<String> = trace
                .ops()
                .iter()
                .filter_map(|op| match op {
                    velodrome_events::Op::Begin { l, .. } => Some(trace.names().label(*l)),
                    _ => None,
                })
                .collect();
            for method in &w.non_atomic {
                assert!(
                    seen.contains(method),
                    "{}: label {method} never executes",
                    w.name
                );
            }
        }
    }

    #[test]
    fn build_unknown_name_returns_none() {
        assert!(build("nonesuch", 1).is_none());
    }

    #[test]
    fn scale_grows_traces() {
        let small = build("tsp", 1).unwrap().run_round_robin().len();
        let large = build("tsp", 3).unwrap().run_round_robin().len();
        assert!(large > 2 * small, "{small} -> {large}");
    }
}
