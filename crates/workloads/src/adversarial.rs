//! Glue between the Atomizer's commit-point heuristic and the simulator's
//! adversarial scheduler (Section 5's "Adversarial Scheduling").

use velodrome_atomizer::{AdvisorConfig, RmwAdvisor};
use velodrome_events::{Op, ThreadId};
pub use velodrome_sim::WatchdogStats;
use velodrome_sim::{AdversarialScheduler, ExemptThreads, PauseAdvisor, RandomScheduler};

/// Adapts [`RmwAdvisor`] to the simulator's [`PauseAdvisor`] interface.
#[derive(Debug, Default)]
pub struct AtomizerAdvisor(RmwAdvisor);

impl AtomizerAdvisor {
    /// Creates a fresh advisor with the default writes-only policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an advisor with an explicit pausing policy.
    pub fn with_config(cfg: AdvisorConfig) -> Self {
        Self(RmwAdvisor::with_config(cfg))
    }
}

impl PauseAdvisor for AtomizerAdvisor {
    fn observe(&mut self, index: usize, op: Op) {
        self.0.observe(index, op);
    }

    fn should_delay(&mut self, t: ThreadId, op: Op) -> bool {
        self.0.should_delay(t, op)
    }
}

/// A seeded random scheduler augmented with Atomizer-guided pauses — the
/// configuration the paper uses to raise defect-detection coverage.
/// `pause_steps` is the analogue of the paper's 100 ms suspension.
///
/// The returned scheduler carries a pause watchdog (see
/// [`velodrome_sim::AdversarialScheduler`]): paused threads are
/// force-resumed — with exponential backoff — when they are the sole
/// runnable thread or when the global pause-step deadline expires, so no
/// `pause_steps` value can hang the workload. Inspect
/// [`WatchdogStats`] via `watchdog_stats()` (pass the scheduler by `&mut`
/// to `run_program` to keep ownership).
pub fn adversarial_scheduler(
    seed: u64,
    pause_steps: u64,
) -> AdversarialScheduler<AtomizerAdvisor, RandomScheduler> {
    AdversarialScheduler::new(
        AtomizerAdvisor::new(),
        RandomScheduler::new(seed),
        pause_steps,
    )
}

/// Like [`adversarial_scheduler`], with an explicit pausing policy.
pub fn adversarial_scheduler_with(
    seed: u64,
    pause_steps: u64,
    cfg: AdvisorConfig,
) -> AdversarialScheduler<AtomizerAdvisor, RandomScheduler> {
    AdversarialScheduler::new(
        AtomizerAdvisor::with_config(cfg),
        RandomScheduler::new(seed),
        pause_steps,
    )
}

/// A policy where the listed threads are never paused.
pub fn adversarial_scheduler_exempting(
    seed: u64,
    pause_steps: u64,
    exempt: impl IntoIterator<Item = ThreadId>,
) -> AdversarialScheduler<ExemptThreads<AtomizerAdvisor>, RandomScheduler> {
    AdversarialScheduler::new(
        ExemptThreads::new(AtomizerAdvisor::new(), exempt),
        RandomScheduler::new(seed),
        pause_steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome::check_trace;
    use velodrome_sim::{run_program, ProgramBuilder, Stmt};

    /// An unprotected RMW whose conflict partner writes at scattered,
    /// seed-dependent times: adversarial pausing holds the RMW open so a
    /// conflicting write lands inside it far more often.
    #[test]
    fn pausing_invites_conflicting_writes() {
        let mut hits_plain = 0;
        let mut hits_adversarial = 0;
        let seeds = 0..20u64;
        for seed in seeds.clone() {
            let program = {
                let mut b = ProgramBuilder::new();
                let x = b.var("x");
                let inc = b.label("increment");
                b.worker(vec![
                    Stmt::Compute(2),
                    Stmt::Atomic(inc, vec![Stmt::Read(x), Stmt::Write(x)]),
                    Stmt::Compute(30),
                ]);
                b.worker(vec![Stmt::Loop(4, vec![Stmt::Compute(6), Stmt::Write(x)])]);
                b.finish()
            };
            let plain = run_program(&program, RandomScheduler::new(seed)).trace;
            if !check_trace(&plain).is_empty() {
                hits_plain += 1;
            }
            let adv = run_program(&program, adversarial_scheduler(seed, 40)).trace;
            if !check_trace(&adv).is_empty() {
                hits_adversarial += 1;
            }
        }
        assert!(
            hits_adversarial > hits_plain,
            "adversarial {hits_adversarial} should beat plain {hits_plain}"
        );
        assert!(
            hits_adversarial >= 14,
            "pausing should catch most seeds: {hits_adversarial}"
        );
    }

    /// A pathological pause length must not hang the workload: once the
    /// short-lived partner thread exits, the flagged RMW thread is the sole
    /// runnable one, and the watchdog force-resumes it.
    #[test]
    fn watchdog_survives_pathological_pause_length() {
        let program = {
            let mut b = ProgramBuilder::new();
            let x = b.var("x");
            let inc = b.label("increment");
            b.worker(vec![Stmt::Loop(
                8,
                vec![Stmt::Atomic(inc, vec![Stmt::Read(x), Stmt::Write(x)])],
            )]);
            b.worker(vec![Stmt::Write(x)]);
            b.finish()
        };
        let mut sched = adversarial_scheduler(1, u64::MAX);
        let result = run_program(&program, &mut sched);
        assert!(
            !result.trace.is_empty(),
            "workload must complete despite unbounded pauses"
        );
        let st = sched.watchdog_stats();
        assert!(st.pauses_issued >= 1, "the RMW thread was flagged");
        assert!(
            st.forced_total() >= 1,
            "watchdog forced at least one resume: {st:?}"
        );
    }
}
