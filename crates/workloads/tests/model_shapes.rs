//! Structural regression tests for the benchmark models: each model must
//! keep the trace composition that makes its paper row reproduce.

use std::collections::HashSet;
use velodrome_events::{Op, TraceStats};

#[test]
fn jbb_and_mtrt_carry_their_false_alarm_reader_populations() {
    for (name, expected) in [("jbb", 42), ("mtrt", 27)] {
        let w = velodrome_workloads::build(name, 1).unwrap();
        let trace = w.run_round_robin();
        let labels: HashSet<String> = trace
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Begin { l, .. } => Some(trace.names().label(*l)),
                _ => None,
            })
            .collect();
        let readers = labels.iter().filter(|l| l.contains("_get_")).count();
        assert_eq!(readers, expected, "{name} reader population");
    }
}

#[test]
fn unary_heavy_benchmarks_are_mostly_non_transactional() {
    // tsp and multiset drive the merge-optimization columns of Table 1:
    // the bulk of their events must sit outside atomic blocks.
    for name in ["tsp", "multiset"] {
        let w = velodrome_workloads::build(name, 2).unwrap();
        let trace = w.run_round_robin();
        let stats = TraceStats::compute(&trace);
        let unary_fraction = stats.unary_transactions as f64 / stats.transactions as f64;
        assert!(
            unary_fraction > 0.5,
            "{name}: unary fraction {unary_fraction:.2} too low for a merge showcase"
        );
    }
}

#[test]
fn phased_benchmarks_have_initialization_phases() {
    for name in [
        "jbb",
        "mtrt",
        "sor",
        "elevator",
        "hedc",
        "colt",
        "webl",
        "jigsaw",
        "raytracer",
    ] {
        let w = velodrome_workloads::build(name, 1).unwrap();
        assert!(
            w.program.phases.len() >= 2,
            "{name} should have a fork/join-ordered initialization phase"
        );
    }
}

#[test]
fn every_model_has_clean_methods_too() {
    // A benchmark consisting solely of defects would trivialize the
    // false-alarm measurement: every model (except the tiny multiset and
    // philo) must also execute methods that are *not* in the truth set.
    for w in velodrome_workloads::all(1) {
        if matches!(w.name, "multiset") {
            continue;
        }
        let trace = w.run_round_robin();
        let clean: HashSet<String> = trace
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Begin { l, .. } => {
                    let name = trace.names().label(*l);
                    (!w.is_non_atomic(&name)).then_some(name)
                }
                _ => None,
            })
            .collect();
        assert!(
            !clean.is_empty(),
            "{} has no correct atomic methods",
            w.name
        );
    }
}

#[test]
fn paper_counts_are_internally_consistent() {
    for w in velodrome_workloads::all(1) {
        let p = w.paper;
        assert!(p.velodrome_found + p.missed >= p.atomizer_real.min(p.velodrome_found + p.missed));
        assert_eq!(
            p.atomizer_real as usize,
            w.non_atomic.len().min(p.atomizer_real as usize),
            "{}: paper count exceeds ground truth",
            w.name
        );
        assert!(
            w.non_atomic.len() >= p.atomizer_real as usize,
            "{}: ground truth smaller than paper's real warnings",
            w.name
        );
    }
}

#[test]
fn trace_sizes_scale_roughly_linearly() {
    for name in ["jigsaw", "montecarlo"] {
        let t1 = velodrome_workloads::build(name, 1)
            .unwrap()
            .run_round_robin()
            .len() as f64;
        let t4 = velodrome_workloads::build(name, 4)
            .unwrap()
            .run_round_robin()
            .len() as f64;
        let ratio = t4 / t1;
        // Loop counts and per-iteration churn both scale, so growth is
        // between linear and quadratic in the scale factor.
        assert!(
            (3.0..=16.0).contains(&ratio),
            "{name}: scale ratio {ratio:.1}"
        );
    }
}
